#!/usr/bin/env python3
"""Surrogate-guided EDP optimization over the Table-2 design space.

Instead of enumerating all 192 configurations, the ``surrogate``
strategy fits a cheap k-NN model on the points evaluated so far and
spends a budget of one third of the space — then the script checks the
pick against the exhaustive optimum.  The same request, sent as JSON to
``POST /v1/optimize`` or ``repro optimize --format json``, answers the
same bytes.

Run with:  python examples/optimize_edp.py [workload ...]
"""

import sys

from repro.dse import default_design_space
from repro.runtime.session import Session
from repro.search import OptimizeRequest, optimize

DEFAULT_WORKLOADS = ("dijkstra", "sha", "qsort")


def main(names: list[str]) -> None:
    space = default_design_space().to_search_space()
    session = Session()  # one session: traces/profiles shared across searches
    print(f"Searching {space.cardinality()} design points "
          f"(budget {space.cardinality() // 3} per workload)\n")

    for name in names:
        surrogate = optimize(OptimizeRequest.from_dict({
            "space": space.to_dict(),
            "workload": name,
            "objectives": ["edp"],
            "constraints": ["area_proxy<=700"],
            "strategy": "surrogate",
            "budget": space.cardinality() // 3,
            "batch": 8,
            "seed": 2012,
        }), session=session)
        exhaustive = optimize(OptimizeRequest.from_dict({
            "space": space.to_dict(),
            "workload": name,
            "objectives": ["edp"],
            "constraints": ["area_proxy<=700"],
            "strategy": "exhaustive",
            "budget": space.cardinality(),
        }), session=session)

        matched = surrogate.best["machine"] == exhaustive.best["machine"]
        print(f"=== {name} ===")
        print(f"  surrogate pick : {surrogate.best['machine']}")
        print(f"      EDP {surrogate.best['objectives']['edp']:.3e} J*s, "
              f"found after {surrogate.best_found_at_evaluation} of "
              f"{surrogate.evaluations} evaluations "
              f"({surrogate.infeasible_skipped} pruned by the area constraint)")
        print(f"  exhaustive best: {exhaustive.best['machine']} "
              f"({exhaustive.evaluations} evaluations)")
        print(f"  match: {'yes' if matched else 'NO'}; "
              f"front size {len(surrogate.front)}\n")


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_WORKLOADS))
