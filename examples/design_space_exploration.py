#!/usr/bin/env python3
"""Design-space exploration with the analytical model (the paper's use case).

Profiling is done once per workload; after that, evaluating a new processor
configuration costs microseconds, so sweeping the full 192-point design space
of Table 2 is interactive.  The script finds, per workload, the configuration
with the best performance and the one with the best energy-delay product.

Run with:  python examples/design_space_exploration.py [workload ...]
"""

import sys

from repro.dse import DesignSpaceExplorer, default_design_space
from repro.workloads import get_workload

DEFAULT_WORKLOADS = ("sha", "dijkstra", "gsm_c")


def main(names: list[str]) -> None:
    space = default_design_space()
    explorer = DesignSpaceExplorer(space.configurations())
    print(f"Exploring {len(space)} design points analytically "
          f"(no detailed simulation involved)\n")

    for name in names:
        workload = get_workload(name)
        points = explorer.evaluate(workload, with_power=True)

        fastest = min(points, key=lambda point: point.model.execution_time_seconds)
        best_edp = min(points, key=lambda point: point.model_edp)

        print(f"=== {name} ({workload.dynamic_instruction_count:,} instructions) ===")
        print(f"  fastest configuration : {fastest.machine.name}")
        print(f"      CPI {fastest.model_cpi:.3f}, "
              f"{fastest.model.execution_time_seconds * 1e6:.1f} us")
        print(f"  best EDP configuration: {best_edp.machine.name}")
        print(f"      CPI {best_edp.model_cpi:.3f}, "
              f"EDP {best_edp.model_edp:.3e} J*s")
        slowest = max(points, key=lambda point: point.model.execution_time_seconds)
        speedup = (slowest.model.execution_time_seconds
                   / fastest.model.execution_time_seconds)
        print(f"  performance spread across the space: {speedup:.2f}x")
        print()


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_WORKLOADS))
