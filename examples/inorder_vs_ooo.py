#!/usr/bin/env python3
"""In-order versus out-of-order CPI stacks (the paper's first case study).

Builds, for each requested workload, the in-order CPI stack from the paper's
mechanistic model and the out-of-order stack from the interval model of
Eyerman et al., and prints them side by side so the differences (hidden
dependencies, hidden multiply/divide latencies, more expensive branch
mispredictions, memory-level parallelism) are directly visible.

Run with:  python examples/inorder_vs_ooo.py [workload ...]
"""

import sys

from repro import DEFAULT_MACHINE
from repro.core import InOrderMechanisticModel, OutOfOrderIntervalModel
from repro.profiler import profile_machine, profile_program
from repro.workloads import get_workload

DEFAULT_WORKLOADS = ("dijkstra", "tiff2bw", "tiff2rgba", "patricia")


def main(names: list[str]) -> None:
    machine = DEFAULT_MACHINE
    print(f"Machine: {machine.describe()}\n")
    for name in names:
        workload = get_workload(name)
        trace = workload.trace()
        program = profile_program(trace)
        misses = profile_machine(trace, machine)

        in_order = InOrderMechanisticModel(machine).predict(program, misses)
        out_of_order = OutOfOrderIntervalModel(machine).predict(program, misses)

        print(f"=== {name} ===")
        labels = sorted(
            set(in_order.stack.grouped()) | set(out_of_order.stack.grouped())
        )
        print(f"  {'component':20s} {'in-order':>10s} {'out-of-order':>13s}")
        for label in labels:
            io_value = in_order.stack.grouped().get(label, 0.0)
            ooo_value = out_of_order.stack.grouped().get(label, 0.0)
            print(f"  {label:20s} {io_value:10.3f} {ooo_value:13.3f}")
        print(f"  {'total CPI':20s} {in_order.cpi:10.3f} {out_of_order.cpi:13.3f}")
        print(f"  out-of-order speedup: {in_order.cpi / out_of_order.cpi:.2f}x\n")


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_WORKLOADS))
