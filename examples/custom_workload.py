#!/usr/bin/env python3
"""Bring your own workload: write a kernel, profile it, predict performance.

The library's kernels are ordinary programs built with
:class:`repro.isa.ProgramBuilder`; nothing stops a user from modelling their
own loop nest.  This example writes a small dot-product kernel, runs it
through the functional simulator, and asks the model how it would perform on
a 2-wide versus a 4-wide in-order core — including where the cycles go.

Run with:  python examples/custom_workload.py
"""

from repro import DEFAULT_MACHINE, InOrderPipeline, predict_workload
from repro.isa import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload


def build_dot_product(elements: int = 600) -> Workload:
    """dot = sum(a[i] * b[i]) over two integer vectors."""
    memory = MemoryImage()
    a_base, b_base = 0x1000, 0x8000
    memory.write_array(a_base, [(3 * i + 1) % 251 for i in range(elements)])
    memory.write_array(b_base, [(7 * i + 5) % 241 for i in range(elements)])

    b = ProgramBuilder("dot_product")
    b.li(1, a_base)          # r1: cursor into a[]
    b.li(2, b_base)          # r2: cursor into b[]
    b.li(3, elements)        # r3: loop counter
    b.li(4, 0)               # r4: accumulator
    b.label("loop")
    b.lw(5, 1, 0)
    b.lw(6, 2, 0)
    b.mul(7, 5, 6)
    b.add(4, 4, 7)
    b.addi(1, 1, 4)
    b.addi(2, 2, 4)
    b.addi(3, 3, -1)
    b.bne(3, 0, "loop")
    b.halt()

    return Workload(
        name="dot_product",
        program=b.build(),
        memory=memory,
        category="custom",
        description="integer dot product (multiply-accumulate loop)",
    )


def main() -> None:
    workload = build_dot_product()
    print(f"Custom workload: {workload.name} "
          f"({workload.dynamic_instruction_count:,} dynamic instructions)\n")

    for width in (2, 4):
        machine = DEFAULT_MACHINE.with_(width=width, name=f"{width}-wide")
        model = predict_workload(workload, machine)
        detailed = InOrderPipeline(machine).run(workload.trace())
        error = (model.cpi - detailed.cpi) / detailed.cpi
        print(f"--- {width}-wide in-order core ---")
        print(f"  model CPI {model.cpi:.3f} | detailed CPI {detailed.cpi:.3f} "
              f"| error {error:+.1%}")
        for component, cpi in model.stack.as_rows():
            print(f"    {component:18s} {cpi:.3f}")
        print()


if __name__ == "__main__":
    main()
