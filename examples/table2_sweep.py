#!/usr/bin/env python3
"""A large design-space sweep through the geometry-grouped planner.

``evaluate_many`` plans every batch before any work starts: requests are
grouped per workload and ordered by pass signature, so each profiling
pass is computed exactly once per trace across the whole batch — also
under ``jobs > 1``, where each group goes to one worker and traces the
parent session already holds ship as raw column bytes.  With the
``repro.accel`` NumPy kernels installed (``pip install '.[accel]'``) the
profiling passes themselves are vectorized, bit-identically to the
stdlib backend.

This script sweeps the paper's full 192-point Table-2 space over a few
workloads (576+ evaluations), prints the per-workload best performer, and
shows the knobs that matter for big sweeps:

* ``REPRO_ACCEL`` / ``repro.accel.set_backend`` — kernel backend;
* ``jobs=N`` — shard groups across worker processes;
* ``cache_dir`` — persist traces/passes so the next sweep starts warm.

Run with:  python examples/table2_sweep.py [workload ...]
"""

import sys
import time

from repro.accel import active_backend
from repro.api import evaluate_many
from repro.dse.space import default_design_space
from repro.workloads.registry import suite_names

DEFAULT_WORKLOADS = ("sha", "dijkstra", "gsm_c")


def main(names: list[str]) -> None:
    unknown = set(names) - set(suite_names("mibench"))
    if unknown:
        raise SystemExit(f"unknown workloads: {sorted(unknown)}")
    sweep = default_design_space().to_sweep(names)
    requests = sweep.expand()
    print(f"{len(requests)} evaluations "
          f"({len(names)} workloads x {len(requests) // len(names)} "
          f"configurations), kernel backend: {active_backend()}\n")

    start = time.perf_counter()
    results = evaluate_many(requests)  # planned + grouped automatically
    elapsed = time.perf_counter() - start

    for name in names:
        mine = [result for result in results if result.workload == name]
        fastest = min(mine, key=lambda result: result.seconds)
        print(f"{name:12s} best machine: {fastest.machine:42s} "
              f"cpi={fastest.cpi:.3f}")
    print(f"\nswept {len(requests)} points in {elapsed:.2f} s "
          f"({elapsed / len(requests) * 1e3:.2f} ms per evaluation)")


if __name__ == "__main__":
    main(list(sys.argv[1:]) or list(DEFAULT_WORKLOADS))
