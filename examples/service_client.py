#!/usr/bin/env python3
"""Walkthrough of the evaluation service and its client SDK.

The service is the long-lived counterpart of ``repro.api``: a server
keeps the expensive state (compiled workloads, traces, single-pass engine
histograms) warm across requests and caches whole response bodies, so a
repeated design-space question answers in about a millisecond.

This example starts a server in-process on an ephemeral port (exactly
what ``repro-experiments serve`` runs), then:

1. waits for ``GET /v1/health``,
2. answers one evaluation cold and times the identical warm repeat,
3. runs a small L2-size sweep through ``POST /v1/sweep``,
4. prints the ``GET /v1/metrics`` report the server kept about all this.

Run with:  PYTHONPATH=src python examples/service_client.py

Against an already-running server (``repro-experiments serve --port
8765``), drop the ``ServerThread`` block and point ``ServiceClient`` at
its port.
"""

import tempfile
import time

from repro.service import ServerThread, ServiceClient, ServiceConfig


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as cache_dir:
        config = ServiceConfig(port=0, jobs=2, cache_dir=cache_dir)
        with ServerThread(config) as running:
            client = ServiceClient(port=running.port)
            health = client.wait_ready()
            print(f"server on 127.0.0.1:{running.port} "
                  f"(status={health['status']}, jobs={health['jobs']})")
            print()

            request = {"workload": "sha",
                       "machine": {"preset": "paper_default",
                                   "l2_size": "1MB"}}

            start = time.perf_counter()
            result = client.evaluate(request)
            cold_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            client.evaluate(request)  # identical: served from the result cache
            warm_ms = (time.perf_counter() - start) * 1000
            print(f"{result.workload} on {result.machine}: "
                  f"CPI {result.cpi:.3f} ({result.instructions:,} instructions)")
            print(f"cold request : {cold_ms:8.2f} ms  "
                  "(compile + trace + profile + model)")
            print(f"warm repeat  : {warm_ms:8.2f} ms  (result-cache hit)")
            print()

            print("L2 sweep through POST /v1/sweep:")
            results = client.sweep({
                "workloads": ["sha"],
                "axes": {"l2_size": ["128KB", "256KB", "512KB", "1MB"]},
            })
            for entry in results:
                print(f"  {entry.machine:16s} CPI {entry.cpi:.3f}")
            print()

            metrics = client.metrics()
            cache = metrics["cache"]
            eval_stats = metrics["endpoints"]["POST /v1/eval"]
            print(f"metrics: {metrics['requests_total']} requests, "
                  f"{metrics['evaluations_total']} evaluations, "
                  f"cache hit rate {cache['hit_rate']:.0%}, "
                  f"eval p50 {eval_stats['latency_ms']['p50']} ms")
        print("server drained and stopped cleanly")


if __name__ == "__main__":
    main()
