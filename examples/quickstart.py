#!/usr/bin/env python3
"""Quickstart: predict in-order processor performance analytically.

This example walks through the full flow of the paper's framework (Figure 2):

1. pick a workload (a MiBench-like kernel shipped with the library),
2. profile it once (instruction mix, dependency distances, miss events),
3. evaluate the mechanistic model for a processor configuration,
4. compare against the cycle-accurate in-order simulator,
5. print the CPI stack that explains where the cycles go.

Run with:  python examples/quickstart.py
"""

from repro import DEFAULT_MACHINE, InOrderPipeline, predict_workload
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("sha")
    machine = DEFAULT_MACHINE
    print(f"Workload : {workload.name} — {workload.description}")
    print(f"Machine  : {machine.describe()}")
    print(f"Dynamic instructions: {workload.dynamic_instruction_count:,}")
    print()

    # Analytical prediction (instantaneous once the profile exists).
    model = predict_workload(workload, machine)

    # Reference: detailed cycle-accurate simulation of the same configuration.
    detailed = InOrderPipeline(machine).run(workload.trace())

    error = (model.cpi - detailed.cpi) / detailed.cpi
    print(f"model CPI    = {model.cpi:.3f}")
    print(f"detailed CPI = {detailed.cpi:.3f}")
    print(f"error        = {error:+.1%}")
    print()

    print("CPI stack (where the cycles go):")
    for component, cpi in model.stack.as_rows():
        bar = "#" * int(round(cpi * 100))
        print(f"  {component:18s} {cpi:6.3f}  {bar}")


if __name__ == "__main__":
    main()
