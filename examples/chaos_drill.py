#!/usr/bin/env python3
"""Chaos drill: kill workers and corrupt caches, then check the answers.

Stands up a live evaluation server, attacks it with a seeded fault plan
(:mod:`repro.resilience.faults`) and verifies the resilience contract:

* a poison workload whose worker is murdered on every attempt comes back
  as a structured per-item error — quarantined, not wedging the sweep;
* every *other* result is byte-identical to the fault-free answer;
* when the whole pool keeps dying, the circuit breaker trips and the
  server falls back to serial in-process evaluation, still correct, and
  ``/v1/health`` reports the degraded state.

This drives the same two-act drill as ``repro-experiments chaos``; use
the CLI for CI-style pass/fail runs and this script to see the pieces.

Run with:  python examples/chaos_drill.py [seed]
"""

import sys

from repro.resilience.chaos import DEFAULT_SEED, run_chaos
from repro.resilience.faults import FaultPlan, FaultSpec


def show_plan() -> None:
    """Print the act-1 fault plan the drill installs, as shareable JSON.

    The same JSON works everywhere faults are accepted: the
    ``REPRO_FAULTS`` environment variable, ``repro-experiments serve
    --faults``, or :func:`repro.resilience.faults.install`.
    """
    plan = FaultPlan(specs=(
        FaultSpec(point="worker.entry", mode="kill", match="adpcm_c",
                  count=99),
        FaultSpec(point="cache.write", mode="corrupt", count=2),
        FaultSpec(point="http.read", mode="delay", delay_s=0.02, count=2),
    ), seed=DEFAULT_SEED)
    print("an act-1 style fault plan, as JSON:")
    print(f"  {plan.to_json()}")
    print()


def main(argv: list[str]) -> int:
    seed = int(argv[0]) if argv else DEFAULT_SEED
    show_plan()

    # A trimmed sweep keeps the example snappy; drop workloads/presets
    # for the full 19x4 drill the CI leg runs.
    report = run_chaos(
        seed=seed,
        jobs=2,
        workloads=["adpcm_c", "adpcm_d", "dijkstra", "gsm_c", "jpeg_c",
                   "sha"],
        presets=["paper_default", "big_l2_1mb"],
    )
    print(report.render())
    print()
    # Per-rule hit/fire counters from the server process.  Worker-side
    # fires (the kills) land in the workers' own plan copies, so a kill
    # rule showing zero here still did its murdering — the pool_crashes
    # check above is the proof.
    for act, fault_report in report.fault_reports.items():
        fired = sum(rule["fires"] for rule in fault_report["rules"])
        print(f"{act}: {fired} server-side faults fired across "
              f"{len(fault_report['rules'])} rules")
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
