#!/usr/bin/env python3
"""Compiler-optimization study (the paper's second case study).

Applies the library's real IR-level passes — list scheduling and loop
unrolling — to a kernel and shows how the dynamic instruction count, the
dependency CPI component and the total cycle count respond, mirroring the
paper's Figure 8 discussion of ``-fno-schedule-insns`` / ``-O3`` /
``-funroll-loops``.

Run with:  python examples/compiler_study.py [workload ...]
"""

import sys

from repro import DEFAULT_MACHINE, predict_workload
from repro.workloads import get_workload
from repro.workloads.compiler import optimization_variants

DEFAULT_WORKLOADS = ("sha", "gsm_c", "tiffdither")


def main(names: list[str]) -> None:
    machine = DEFAULT_MACHINE
    for name in names:
        workload = get_workload(name, use_cache=False, optimize=False)
        variants = optimization_variants(workload)
        results = {
            variant: predict_workload(variants[variant], machine)
            for variant in ("nosched", "O3", "unroll")
        }
        baseline_cycles = results["O3"].cycles

        print(f"=== {name} ===")
        print(f"  {'variant':10s} {'N':>8s} {'CPI':>7s} {'dep CPI':>8s} "
              f"{'cycles':>9s} {'vs O3':>7s}")
        for variant, result in results.items():
            dependencies = result.stack.grouped().get("dependencies", 0.0)
            print(f"  {variant:10s} {result.instructions:8d} {result.cpi:7.3f} "
                  f"{dependencies:8.3f} {result.cycles:9.0f} "
                  f"{result.cycles / baseline_cycles:7.3f}")
        print()


if __name__ == "__main__":
    main(sys.argv[1:] or list(DEFAULT_WORKLOADS))
