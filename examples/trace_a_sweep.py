#!/usr/bin/env python3
"""Trace one served sweep end to end and read the span tree back.

The observability layer (``repro.obs``) records hierarchical spans —
request, queue wait, planner stages, per-worker profiling — as Chrome
trace-event JSON lines that parent and pool-worker processes append to
one shared file.  This example:

1. enables tracing (exactly what ``--trace-out spans.jsonl`` does),
2. starts a server in-process with ``jobs=2`` and serves one sweep,
3. prints the self-time report ``repro-experiments obs report`` gives,
4. writes the ``{"traceEvents": [...]}`` file Perfetto loads directly.

Run with:  PYTHONPATH=src python examples/trace_a_sweep.py

Then drop ``trace.json`` onto https://ui.perfetto.dev — the sweep shows
up as one tree spanning the server process and its worker processes,
joined by the trace id the ``X-Repro-Trace-Id`` header carried.
"""

import json
import tempfile
from pathlib import Path

from repro.obs import tracing
from repro.obs.report import load_events, render_report, to_chrome_trace
from repro.service import ServerThread, ServiceClient, ServiceConfig

SWEEP = {
    "workloads": ["sha", "qsort", "dijkstra"],
    "axes": {"l2_size": ["256KB", "512KB", "1MB"]},
}


def main() -> None:
    spans = Path("spans.jsonl")
    spans.unlink(missing_ok=True)
    # Before the server starts: pool workers pick the sink up at spawn.
    tracing.configure(str(spans))
    try:
        with tempfile.TemporaryDirectory(prefix="repro-trace-demo-") as cache:
            config = ServiceConfig(port=0, jobs=2, cache_dir=cache)
            with ServerThread(config) as running:
                client = ServiceClient(port=running.port)
                client.wait_ready()
                results = client.sweep(SWEEP)
        print(f"swept {len(results)} points; spans in {spans}\n")
    finally:
        tracing.configure(None)

    events = load_events(str(spans))
    print(render_report(events))

    trace = Path("trace.json")
    trace.write_text(json.dumps(to_chrome_trace(events), indent=2) + "\n")
    print(f"wrote {trace} — load it at https://ui.perfetto.dev "
          "(one track per process)")


if __name__ == "__main__":
    main()
