"""Hierarchical tracing spans with cross-process / cross-HTTP propagation.

A *span* is a named, timed region of work with key/value attributes.  Spans
nest: the planner's ``planner.group`` span is a child of the service's
``service.request`` span even when the group runs in a different process,
because the parent's :class:`TraceContext` (trace id + span id) rides along
in the :class:`~repro.runtime.scheduler.WorkerPool` task envelope and in
the ``X-Repro-Trace-Id`` HTTP header.  One served ``/v1/sweep`` therefore
yields a single coherent tree: request → queue wait → planner groups →
per-worker attach/profile/model → collect.

Design constraints, in order:

1. **Near-free when disabled.**  The module-level sink starts as ``None``
   and :func:`span` returns a shared no-op context manager after one
   attribute load and one ``is None`` test.  No allocation, no contextvar
   traffic.  The ``obs_overhead`` bench gate in :mod:`repro.bench` holds
   this to ≤2% on ``sharded_evaluate_many``.
2. **Cross-process safe.**  The sink appends one JSON line per span with a
   single ``os.write`` to an ``O_APPEND`` descriptor, which POSIX keeps
   atomic across the parent and spawned pool workers writing the same
   file.  Workers are configured through the pool initializer
   (:func:`worker_config` / :func:`apply_worker_config`), mirroring how
   the data-plane mode ships today — spawned children inherit nothing.
3. **Perfetto-ready.**  Each line is a Chrome trace-event ``"X"``
   (complete) event — ``ts`` in wall-clock microseconds, ``dur`` from the
   monotonic clock, ``pid``/``tid`` real, span/trace ids under ``args`` —
   so ``repro obs chrome`` only has to wrap the lines in
   ``{"traceEvents": [...]}`` for ``chrome://tracing`` / Perfetto.

Context flows through a :data:`contextvars.ContextVar`, which follows
asyncio tasks and is captured/restored explicitly at the two boundaries
that drop it: ``loop.run_in_executor`` (service job queue) and the process
pool (scheduler envelopes).
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from dataclasses import dataclass

#: Environment variable carrying the span-sink path into spawned workers
#: and subcommands (the CLI's ``--trace-out`` exports it).
TRACE_ENV = "REPRO_TRACE_OUT"

#: HTTP header carrying the trace context (``<trace_id>`` or
#: ``<trace_id>:<parent_span_id>``) into and out of the service.
TRACE_HEADER = "X-Repro-Trace-Id"


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of an in-progress trace: ids only, no timing."""

    trace_id: str
    span_id: str

    def to_wire(self) -> tuple[str, str]:
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire) -> "TraceContext | None":
        if not wire:
            return None
        trace_id, span_id = wire
        return TraceContext(str(trace_id), str(span_id))

    def to_header(self) -> str:
        return f"{self.trace_id}:{self.span_id}"

    @staticmethod
    def from_header(value: str) -> "TraceContext | None":
        """Parse ``trace_id`` or ``trace_id:span_id``; None if malformed."""
        parts = value.strip().split(":")
        if len(parts) == 1:
            trace_id, span_id = parts[0], ""
        elif len(parts) == 2:
            trace_id, span_id = parts
        else:
            return None
        if not trace_id or not all(c.isalnum() or c in "-_"
                                   for c in trace_id + span_id):
            return None
        if len(trace_id) > 64 or len(span_id) > 64:
            return None
        return TraceContext(trace_id, span_id)


_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


def current_context() -> TraceContext | None:
    """The active trace context, or None when no span is open."""
    return _CONTEXT.get()


class _ContextBinding:
    """Re-enter a shipped :class:`TraceContext` (worker / executor side)."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext | None):
        self._ctx = ctx
        self._token = None

    def __enter__(self):
        self._token = _CONTEXT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc):
        _CONTEXT.reset(self._token)
        return False


def attach(ctx: TraceContext | None) -> _ContextBinding:
    """Context manager installing ``ctx`` as the current trace context.

    Used on the far side of a propagation boundary: a pool worker attaches
    the envelope's context before running the task so its spans parent
    correctly; ``attach(None)`` explicitly clears inherited context.
    """
    return _ContextBinding(ctx)


class FileSpanSink:
    """Append Chrome trace events as JSONL via atomic ``O_APPEND`` writes."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._fd = os.open(self.path,
                           os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        self._lock = threading.Lock()

    def write(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1


#: The active sink. ``None`` is the disabled fast path — `span()` tests
#: this once and hands back a shared no-op.
_SINK: FileSpanSink | None = None


class _NullSpan:
    """Shared do-nothing span for the disabled path. Stateless, reentrant."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL = _NullSpan()


class Span:
    """A live span: times itself, installs itself as the current context."""

    __slots__ = ("name", "attrs", "_sink", "_ctx", "_token",
                 "_start_wall", "_start_mono")

    def __init__(self, name: str, sink: FileSpanSink, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._sink = sink

    def __enter__(self):
        parent = _CONTEXT.get()
        trace_id = parent.trace_id if parent else new_id()
        self._ctx = TraceContext(trace_id, new_id())
        if parent and parent.span_id:
            self.attrs.setdefault("parent_id", parent.span_id)
        self._token = _CONTEXT.set(self._ctx)
        self._start_wall = time.time()
        self._start_mono = time.perf_counter()
        return self

    @property
    def context(self) -> TraceContext:
        """The span's own trace context (valid after ``__enter__``)."""
        return self._ctx

    def set(self, **attrs) -> None:
        """Attach attributes to the span after entry (e.g. result counts)."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._start_mono
        _CONTEXT.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _write_event(self._sink, self.name, self._ctx,
                     self._start_wall, duration, self.attrs)
        return False


def span(name: str, **attrs):
    """A context manager timing ``name`` — a shared no-op when disabled."""
    sink = _SINK
    if sink is None:
        return _NULL
    return Span(name, sink, attrs)


def emit_span(name: str, seconds: float, **attrs) -> None:
    """Record an already-measured region as a child of the current span.

    Lets existing ``perf_counter`` timing blocks (the planner's stage
    timings, the job queue's wait measurement) become spans without being
    restructured: the event's start is back-dated ``seconds`` from now.
    No-op when tracing is disabled.
    """
    sink = _SINK
    if sink is None:
        return
    parent = _CONTEXT.get()
    trace_id = parent.trace_id if parent else new_id()
    if parent and parent.span_id:
        attrs.setdefault("parent_id", parent.span_id)
    ctx = TraceContext(trace_id, new_id())
    _write_event(sink, name, ctx, time.time() - seconds, seconds, attrs)


def _write_event(sink: FileSpanSink, name: str, ctx: TraceContext,
                 start_wall: float, duration: float, attrs: dict) -> None:
    event = {
        "ph": "X",
        "name": name,
        "cat": name.split(".", 1)[0],
        "ts": round(start_wall * 1e6, 1),
        "dur": round(duration * 1e6, 1),
        "pid": os.getpid(),
        "tid": threading.get_ident() % 1_000_000,
        "args": {"trace_id": ctx.trace_id, "span_id": ctx.span_id, **attrs},
    }
    sink.write(event)


def configure(trace_out: str | None) -> None:
    """Install (or with ``None`` remove) the module-level span sink."""
    global _SINK
    previous = _SINK
    _SINK = FileSpanSink(trace_out) if trace_out else None
    if previous is not None:
        previous.close()


def enabled() -> bool:
    return _SINK is not None


def configured_path() -> str | None:
    """The active sink's file path, or None when tracing is disabled."""
    sink = _SINK
    return sink.path if sink is not None else None


def configure_from_env(environ=os.environ) -> None:
    """Honour :data:`TRACE_ENV` if set (CLI startup and spawned tools)."""
    path = environ.get(TRACE_ENV, "").strip()
    if path:
        configure(path)


def worker_config() -> str | None:
    """What a pool initializer must ship so workers write the same file."""
    return configured_path()


def apply_worker_config(config: str | None) -> None:
    """Initializer-side counterpart of :func:`worker_config`."""
    if config:
        configure(config)
