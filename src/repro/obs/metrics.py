"""A unified metrics registry: counters, gauges and histograms with labels.

Before this module the runtime grew three parallel metric implementations
— :class:`~repro.service.metrics.ServiceMetrics` (HTTP counters and
latency windows), :class:`~repro.runtime.dataplane.StageTimings` (per-stage
wall time) and :class:`~repro.runtime.session.SessionStats` (cache-hit
counters) — none of which composed or exported.  All three are now thin
adapters over one :class:`MetricsRegistry`, so every number the system
tracks lives behind the same three instrument kinds:

* :class:`Counter` — monotonically accumulating totals (requests served,
  traces generated, seconds spent in a data-plane stage);
* :class:`Gauge` — point-in-time values that move both ways (in-flight
  requests, queue depth);
* :class:`Histogram` — observation distributions with cumulative buckets
  for Prometheus *and* a bounded window of raw observations for the
  nearest-rank percentile reports the JSON endpoints serve.

Instruments are **labelled families**: ``registry.counter("requests_total",
labels=("endpoint",))`` returns a family whose ``.labels(endpoint=...)``
children hold the actual values.  An unlabelled instrument is a family
with one anonymous child, so the calling convention is uniform.

Everything is stdlib-only and thread-safe (one lock per registry — the
instruments this repo maintains are updated from asyncio worker threads
and the CLI's main thread, never from hot inner loops).
:func:`MetricsRegistry.render_prometheus` emits the text exposition format
(``# TYPE``/``# HELP`` + ``name{labels} value`` lines) that
``GET /v1/metrics?format=prometheus`` serves.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Iterable, Mapping, Sequence

#: Raw observations retained per histogram child for percentile reports.
HISTOGRAM_WINDOW = 1024

#: Default histogram bucket upper bounds, in the instrument's native unit
#: (seconds for the latency histograms): 1ms .. 60s, roughly 3 per decade.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _validate_label_values(family: "_Family",
                           labels: Mapping[str, str]) -> tuple:
    if set(labels) != set(family.label_names):
        raise ValueError(
            f"instrument {family.name!r} takes labels "
            f"{tuple(family.label_names)}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in family.label_names)


class _Child:
    """One (label-value tuple)-addressed cell of an instrument family."""

    __slots__ = ("_family", "label_values")

    def __init__(self, family: "_Family", label_values: tuple):
        self._family = family
        self.label_values = label_values

    @property
    def _lock(self) -> threading.Lock:
        return self._family._lock


class Counter(_Child):
    """A monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self, family, label_values):
        super().__init__(family, label_values)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters cannot decrease; use a gauge")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Adapter hook: install an externally accumulated total.

        Exists for the legacy counter structs (``SessionStats`` fields are
        incremented via ``stats.traces_generated += 1``) whose read-modify-
        write assignment needs an absolute set.  The total must not move
        backwards — this is still a counter.
        """
        with self._lock:
            if value < self._value:
                raise ValueError(
                    f"counter {self._family.name!r} cannot decrease "
                    f"({self._value} -> {value})"
                )
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A point-in-time value that can move both ways."""

    __slots__ = ("_value",)

    def __init__(self, family, label_values):
        super().__init__(family, label_values)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Cumulative buckets plus a bounded window of raw observations.

    The buckets serve Prometheus (``_bucket{le=...}``/``_sum``/``_count``);
    the window serves the JSON endpoints' nearest-rank percentiles, which
    track *current* behaviour rather than averaging over the process's
    whole lifetime (the contract the pre-registry ``ServiceMetrics`` had).
    """

    __slots__ = ("_bucket_counts", "_sum", "_count", "_window")

    def __init__(self, family, label_values):
        super().__init__(family, label_values)
        self._bucket_counts = [0] * len(family.buckets)
        self._sum = 0.0
        self._count = 0
        self._window: deque[float] = deque(maxlen=HISTOGRAM_WINDOW)

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            self._window.append(value)
            # Per-bucket (non-cumulative) storage; the renderer produces
            # the cumulative ``le`` series Prometheus expects.
            for index, bound in enumerate(self._family.buckets):
                if value <= bound:
                    self._bucket_counts[index] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentiles(self, qs: Iterable[float] = (50, 90, 99)) -> dict[str, float]:
        """Nearest-rank percentiles over the retained window (empty: ``{}``)."""
        with self._lock:
            window = list(self._window)
        if not window:
            return {}
        return {f"p{q:g}": percentile(window, q) for q in qs}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named instrument with zero or more label dimensions."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str, label_names: tuple[str, ...],
                 buckets: tuple[float, ...] = ()):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._lock = registry._lock
        self._children: dict[tuple, _Child] = {}

    def labels(self, **labels: str) -> _Child:
        """The child cell at these label values (created on first use)."""
        values = _validate_label_values(self, labels)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = _KINDS[self.kind](self, values)
                self._children[values] = child
            return child

    def children(self) -> list[_Child]:
        with self._lock:
            return list(self._children.values())

    def reset(self) -> None:
        """Drop every child (adapter hook for ``StageTimings.clear()``)."""
        with self._lock:
            self._children.clear()

    # Unlabelled convenience: a family with no label names has exactly one
    # anonymous child, and proxies the instrument methods to it.
    def _anonymous(self) -> _Child:
        if self.label_names:
            raise ValueError(
                f"instrument {self.name!r} is labelled "
                f"{tuple(self.label_names)}; address a child via .labels()"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._anonymous().inc(amount)

    def set_total(self, value: float) -> None:
        self._anonymous().set_total(value)

    def dec(self, amount: float = 1.0) -> None:
        self._anonymous().dec(amount)

    def set(self, value: float) -> None:
        self._anonymous().set(value)

    def observe(self, value: float) -> None:
        self._anonymous().observe(value)

    def percentiles(self, qs: Iterable[float] = (50, 90, 99)) -> dict[str, float]:
        return self._anonymous().percentiles(qs)

    @property
    def value(self) -> float:
        return self._anonymous().value

    @property
    def count(self) -> int:
        return self._anonymous().count

    @property
    def sum(self) -> float:
        return self._anonymous().sum


class MetricsRegistry:
    """One namespace of named instruments, renderable as Prometheus text."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, kind: str, help: str,
                       labels: Sequence[str],
                       buckets: Sequence[float] = ()) -> _Family:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = _Family(self, name, kind, help, label_names,
                             tuple(buckets))
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> _Family:
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> _Family:
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _Family:
        return self._get_or_create(name, "histogram", help, labels, buckets)

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every instrument as plain data (tests and the JSON endpoints).

        ``{name: {kind, help, series: [{labels, value | count/sum/...}]}}``.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            series = []
            for child in family.children():
                labels = dict(zip(family.label_names, child.label_values))
                if family.kind == "histogram":
                    series.append({"labels": labels, "count": child.count,
                                   "sum": child.sum,
                                   "percentiles": child.percentiles()})
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "series": series}
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """The text exposition format (version 0.0.4) of every instrument."""
        lines: list[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            metric = prefix + family.name
            if family.help:
                lines.append(f"# HELP {metric} {_escape_help(family.help)}")
            lines.append(f"# TYPE {metric} {family.kind}")
            for child in family.children():
                labels = dict(zip(family.label_names, child.label_values))
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(family.buckets,
                                            child._bucket_counts):
                        cumulative += count
                        lines.append(_sample(f"{metric}_bucket",
                                             {**labels, "le": _bound(bound)},
                                             cumulative))
                    lines.append(_sample(f"{metric}_bucket",
                                         {**labels, "le": "+Inf"},
                                         child.count))
                    lines.append(_sample(f"{metric}_sum", labels, child.sum))
                    lines.append(_sample(f"{metric}_count", labels,
                                         child.count))
                else:
                    lines.append(_sample(metric, labels, child.value))
        return "\n".join(lines) + "\n" if lines else ""


def _bound(value: float) -> str:
    return f"{value:g}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in labels.items()
        )
        name = f"{name}{{{rendered}}}"
    if isinstance(value, float) and value.is_integer():
        return f"{name} {int(value)}"
    return f"{name} {value}"


def render_prometheus(*registries: MetricsRegistry,
                      prefix: str = "repro_") -> str:
    """Concatenated exposition of several registries (service + session)."""
    return "".join(registry.render_prometheus(prefix)
                   for registry in registries)
