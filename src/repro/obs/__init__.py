"""repro.obs — structured tracing, unified metrics, and exporters.

Three pieces, all stdlib-only:

* :mod:`repro.obs.tracing` — hierarchical spans with trace-context
  propagation across the worker pool and HTTP, written as Chrome
  trace-event JSONL for Perfetto;
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry that
  ``ServiceMetrics``, ``StageTimings`` and ``SessionStats`` now adapt,
  with Prometheus text exposition;
* :mod:`repro.obs.log` — the ``REPRO_LOG={text,json}`` structured logger
  replacing bare stderr prints.

Disabled tracing costs one attribute load + ``is None`` check per
``span()`` call — measured by the ``obs_overhead`` bench entry.
"""

from .log import get_logger
from .metrics import MetricsRegistry, render_prometheus
from .tracing import (
    TRACE_ENV,
    TRACE_HEADER,
    TraceContext,
    attach,
    configure,
    configure_from_env,
    current_context,
    emit_span,
    enabled,
    span,
)

__all__ = [
    "TRACE_ENV",
    "TRACE_HEADER",
    "MetricsRegistry",
    "TraceContext",
    "attach",
    "configure",
    "configure_from_env",
    "current_context",
    "emit_span",
    "enabled",
    "get_logger",
    "render_prometheus",
    "span",
]
