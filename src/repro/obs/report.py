"""Offline analysis of span JSONL files: self-time breakdown and Chrome export.

``repro obs report spans.jsonl`` answers "where did the time go?" without
opening Perfetto: for each span name it aggregates count, total wall time,
and *self* time — total minus the time covered by the span's direct
children — so a parent that merely waits on its children shows near-zero
self time and the leaves surface to the top.

``repro obs chrome`` wraps the JSONL lines into the ``{"traceEvents":
[...]}`` object that ``chrome://tracing`` and https://ui.perfetto.dev
load directly (the raw file is kept JSONL so concurrent ``O_APPEND``
writers from multiple processes stay atomic and crash-tolerant).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def load_events(path: str) -> list[dict]:
    """Parse a span JSONL file, skipping blank or truncated lines.

    A truncated final line (writer killed mid-append) is expected and
    silently dropped rather than failing the whole report.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and event.get("ph") == "X":
                events.append(event)
    return events


@dataclass
class NameStats:
    """Aggregated timing for all spans sharing a name."""

    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    pids: set = field(default_factory=set)


def _span_id(event: dict) -> str | None:
    return (event.get("args") or {}).get("span_id")


def _parent_id(event: dict) -> str | None:
    return (event.get("args") or {}).get("parent_id")


def summarize(events: list[dict]) -> list[NameStats]:
    """Per-name count/total/self aggregates, sorted by self time descending.

    Self time = the span's duration minus the summed durations of its
    direct children.  Children running in a different process still
    subtract — that is the point: a parent that fans out to workers is
    all wait, and the report should say so.  Clamped at zero in case
    clock skew makes children (timed on their own monotonic clocks)
    overrun the parent slightly.
    """
    child_us: dict[str, float] = {}
    for event in events:
        parent = _parent_id(event)
        if parent:
            child_us[parent] = child_us.get(parent, 0.0) + float(
                event.get("dur", 0.0))
    stats: dict[str, NameStats] = {}
    for event in events:
        name = str(event.get("name", "?"))
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = NameStats(name)
        duration = float(event.get("dur", 0.0))
        entry.count += 1
        entry.total_us += duration
        entry.self_us += max(0.0, duration - child_us.get(
            _span_id(event) or "", 0.0))
        entry.pids.add(event.get("pid"))
    return sorted(stats.values(), key=lambda s: s.self_us, reverse=True)


def render_report(events: list[dict]) -> str:
    """The self-time table ``repro obs report`` prints."""
    rows = summarize(events)
    if not rows:
        return "no span events found\n"
    total_self = sum(row.self_us for row in rows) or 1.0
    trace_ids = {(event.get("args") or {}).get("trace_id")
                 for event in events}
    trace_ids.discard(None)
    header = (f"{'span':<28} {'count':>6} {'total_ms':>10} "
              f"{'self_ms':>10} {'self%':>6} {'pids':>5}")
    lines = [
        f"{len(events)} spans, {len(trace_ids)} trace(s), "
        f"{len({p for row in rows for p in row.pids})} process(es)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.name:<28} {row.count:>6} {row.total_us / 1000:>10.2f} "
            f"{row.self_us / 1000:>10.2f} "
            f"{100.0 * row.self_us / total_self:>5.1f}% "
            f"{len(row.pids):>5}"
        )
    return "\n".join(lines) + "\n"


def to_chrome_trace(events: list[dict]) -> dict:
    """The ``{"traceEvents": [...]}`` wrapper Perfetto/chrome://tracing load."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}
