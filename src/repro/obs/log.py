"""Structured diagnostic logging for the runtime and CLI.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` progress lines that
had accumulated in ``cli.py`` and ``service/smoke.py``.  Two formats,
selected by ``REPRO_LOG``:

* ``text`` (default) — ``name: event key=value ...`` on stderr, what a
  human watching ``repro serve`` wants;
* ``json`` — one JSON object per line (``{"name", "event", "level",
  ...fields}``), what log shippers want.

``REPRO_LOG_LEVEL`` (``debug``/``info``/``warning``/``error``, default
``info``) filters.  User-facing *results* — the CLI's stdout tables —
stay on stdout via plain ``print`` and are explicitly not this module's
business; ``tools/check_print.py`` enforces the split.

When a trace span is active, json-format records carry its ``trace_id``
so log lines can be joined against the span tree.
"""

from __future__ import annotations

import json
import os
import sys

from .tracing import current_context

LOG_ENV = "REPRO_LOG"
LEVEL_ENV = "REPRO_LOG_LEVEL"

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _format() -> str:
    value = os.environ.get(LOG_ENV, "text").strip().lower()
    return value if value in ("text", "json") else "text"


def _threshold() -> int:
    value = os.environ.get(LEVEL_ENV, "info").strip().lower()
    return _LEVELS.get(value, 20)


class Logger:
    """A named emitter of structured events."""

    __slots__ = ("name", "_stream")

    def __init__(self, name: str, stream=None):
        self.name = name
        self._stream = stream

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < _threshold():
            return
        stream = self._stream or sys.stderr
        if _format() == "json":
            record = {"name": self.name, "level": level, "event": event}
            ctx = current_context()
            if ctx is not None:
                record["trace_id"] = ctx.trace_id
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
        else:
            parts = [f"{self.name}: {event}"]
            parts.extend(f"{key}={_scalar(value)}"
                         for key, value in fields.items())
            stream.write(" ".join(parts) + "\n")
        stream.flush()

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def _scalar(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text:
        return json.dumps(text)
    return text


_LOGGERS: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = Logger(name)
    return logger
