"""Telecom domain kernels: ``adpcm_c``, ``adpcm_d`` and ``gsm_c`` (toast).

The ADPCM kernels implement the IMA ADPCM step-size quantiser used by
MiBench's rawcaudio/rawdaudio: a tight per-sample loop of compares, table
lookups and predictor updates, with a serial dependence through the predictor
state (``valpred``/``index``/``step``).

``gsm_c`` models the LPC front end of GSM full-rate encoding (MiBench's
toast): autocorrelation multiply-accumulate loops followed by a short
division-based reflection-coefficient stage, giving the kernel a visible
multiply/divide CPI component.
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, rng

#: IMA ADPCM index adjustment table.
_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

#: IMA ADPCM step-size table (88 entries).
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41,
    45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190,
    209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724,
    796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
    7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
    20350, 22385, 24623, 27086, 29794, 32767,
]


def _audio_samples(name: str, count: int) -> list[int]:
    """A noisy multi-tone signal, bounded to 16-bit like PCM audio."""
    generator = rng(name)
    samples = []
    value = 0
    for index in range(count):
        # A slowly wandering waveform: correlated steps plus occasional jumps.
        value += generator.randrange(-800, 801)
        if index % 37 == 0:
            value += generator.randrange(-4000, 4001)
        value = max(-32000, min(32000, value))
        samples.append(value)
    return samples


def build_adpcm_c(samples: int = 330) -> Workload:
    """IMA ADPCM encoder (speech compression)."""
    memory = MemoryImage()
    input_base = 0x6000
    next_free = layout(memory, input_base, _audio_samples("adpcm_c", samples))
    index_table_base = next_free
    next_free = layout(memory, index_table_base, _INDEX_TABLE)
    step_table_base = next_free
    next_free = layout(memory, step_table_base, _STEP_TABLE)
    output_base = next_free

    b = ProgramBuilder("adpcm_c")
    # r1: input ptr, r2: output ptr, r3: samples left
    # r4: valpred, r5: index, r6: step, r7: sample, r8: delta, r9: sign
    # r10: code, r11: vpdiff, r12/13: temporaries
    b.li(1, input_base)
    b.li(2, output_base)
    b.li(3, samples)
    b.li(4, 0)                      # valpred
    b.li(5, 0)                      # index
    b.li(6, 7)                      # step = step table[0]
    b.li(20, index_table_base)
    b.li(21, step_table_base)

    b.label("sample_loop")
    b.lw(7, 1, 0)
    b.sub(8, 7, 4)                  # delta = sample - valpred
    b.li(9, 0)
    b.bge(8, 0, "positive")
    b.li(9, 8)                      # sign bit
    b.sub(8, 0, 8)
    b.label("positive")

    # Quantise delta against step, step/2, step/4.
    b.li(10, 0)
    b.blt(8, 6, "q2")
    b.ori(10, 10, 4)
    b.sub(8, 8, 6)
    b.label("q2")
    b.srli(12, 6, 1)
    b.blt(8, 12, "q1")
    b.ori(10, 10, 2)
    b.sub(8, 8, 12)
    b.label("q1")
    b.srli(12, 6, 2)
    b.blt(8, 12, "qdone")
    b.ori(10, 10, 1)
    b.label("qdone")

    # Reconstruct the predictor exactly like the decoder will.
    b.srli(11, 6, 3)                # vpdiff = step >> 3
    b.andi(12, 10, 4)
    b.beq(12, 0, "nv4")
    b.add(11, 11, 6)
    b.label("nv4")
    b.andi(12, 10, 2)
    b.beq(12, 0, "nv2")
    b.srli(13, 6, 1)
    b.add(11, 11, 13)
    b.label("nv2")
    b.andi(12, 10, 1)
    b.beq(12, 0, "nv1")
    b.srli(13, 6, 2)
    b.add(11, 11, 13)
    b.label("nv1")
    b.beq(9, 0, "vadd")
    b.sub(4, 4, 11)
    b.j("vclamp")
    b.label("vadd")
    b.add(4, 4, 11)
    b.label("vclamp")
    b.li(12, 32767)
    b.blt(4, 12, "vclamp_low")
    b.mov(4, 12)
    b.label("vclamp_low")
    b.li(12, -32768)
    b.bge(4, 12, "vdone")
    b.mov(4, 12)
    b.label("vdone")

    # Update the step index from the quantised code.
    b.or_(10, 10, 9)                # code with sign bit for output
    b.andi(13, 10, 7)
    b.slli(13, 13, 2)
    b.add(13, 20, 13)
    b.lw(13, 13, 0)                 # indexTable[code & 7]
    b.add(5, 5, 13)
    b.bge(5, 0, "iclamp_high")
    b.li(5, 0)
    b.label("iclamp_high")
    b.li(12, 88)
    b.blt(5, 12, "idone")
    b.li(5, 87)
    b.label("idone")
    b.slli(13, 5, 2)
    b.add(13, 21, 13)
    b.lw(6, 13, 0)                  # step = stepTable[index]

    b.sw(10, 2, 0)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "sample_loop")
    b.halt()

    return Workload(
        name="adpcm_c",
        program=b.build(),
        memory=memory,
        category="telecom",
        description="IMA ADPCM speech encoder (serial predictor update, branchy)",
    )


def build_adpcm_d(samples: int = 420) -> Workload:
    """IMA ADPCM decoder."""
    generator = rng("adpcm_d")
    memory = MemoryImage()
    input_base = 0x6000
    codes = [generator.randrange(0, 16) for _ in range(samples)]
    next_free = layout(memory, input_base, codes)
    index_table_base = next_free
    next_free = layout(memory, index_table_base, _INDEX_TABLE)
    step_table_base = next_free
    next_free = layout(memory, step_table_base, _STEP_TABLE)
    output_base = next_free

    b = ProgramBuilder("adpcm_d")
    # r1: code ptr, r2: output ptr, r3: remaining, r4: valpred, r5: index,
    # r6: step, r10: code, r11: vpdiff, r12/13: temps
    b.li(1, input_base)
    b.li(2, output_base)
    b.li(3, samples)
    b.li(4, 0)
    b.li(5, 0)
    b.li(6, 7)
    b.li(20, index_table_base)
    b.li(21, step_table_base)

    b.label("sample_loop")
    b.lw(10, 1, 0)                  # 4-bit code
    # Index update first (as in the reference decoder).
    b.slli(13, 10, 2)
    b.add(13, 20, 13)
    b.lw(13, 13, 0)
    b.add(5, 5, 13)
    b.bge(5, 0, "iclamp_high")
    b.li(5, 0)
    b.label("iclamp_high")
    b.li(12, 88)
    b.blt(5, 12, "idone")
    b.li(5, 87)
    b.label("idone")

    # Reconstruct the difference.
    b.srli(11, 6, 3)
    b.andi(12, 10, 4)
    b.beq(12, 0, "nv4")
    b.add(11, 11, 6)
    b.label("nv4")
    b.andi(12, 10, 2)
    b.beq(12, 0, "nv2")
    b.srli(13, 6, 1)
    b.add(11, 11, 13)
    b.label("nv2")
    b.andi(12, 10, 1)
    b.beq(12, 0, "nv1")
    b.srli(13, 6, 2)
    b.add(11, 11, 13)
    b.label("nv1")
    b.andi(12, 10, 8)
    b.beq(12, 0, "vadd")
    b.sub(4, 4, 11)
    b.j("vclamp")
    b.label("vadd")
    b.add(4, 4, 11)
    b.label("vclamp")
    b.li(12, 32767)
    b.blt(4, 12, "vclamp_low")
    b.mov(4, 12)
    b.label("vclamp_low")
    b.li(12, -32768)
    b.bge(4, 12, "vdone")
    b.mov(4, 12)
    b.label("vdone")

    # New step size.
    b.slli(13, 5, 2)
    b.add(13, 21, 13)
    b.lw(6, 13, 0)

    b.sw(4, 2, 0)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "sample_loop")
    b.halt()

    return Workload(
        name="adpcm_d",
        program=b.build(),
        memory=memory,
        category="telecom",
        description="IMA ADPCM speech decoder (table lookups, clamping branches)",
    )


def build_gsm_c(samples: int = 170, lags: int = 9) -> Workload:
    """GSM full-rate encoder front end (autocorrelation + reflection coefficients)."""
    memory = MemoryImage()
    input_base = 0x7000
    next_free = layout(memory, input_base, _audio_samples("gsm_c", samples))
    acf_base = next_free

    b = ProgramBuilder("gsm_c")
    # r1: sample base, r2: lag k, r3: inner index i, r4: accumulator
    # r5: s[i], r6: s[i-k], r7/8: addresses, r9: N, r10: acf base
    b.li(1, input_base)
    b.li(9, samples)
    b.li(10, acf_base)
    b.li(2, 0)

    b.label("lag_loop")
    b.li(4, 0)
    b.mov(3, 2)                     # i starts at k

    b.label("acc_loop")
    b.slli(7, 3, 2)
    b.add(7, 1, 7)
    b.lw(5, 7, 0)                   # s[i]
    b.sub(8, 3, 2)
    b.slli(8, 8, 2)
    b.add(8, 1, 8)
    b.lw(6, 8, 0)                   # s[i - k]
    b.mul(5, 5, 6)
    b.srli(5, 5, 6)                 # scale down to avoid overflow
    b.add(4, 4, 5)
    b.addi(3, 3, 1)
    b.blt(3, 9, "acc_loop")

    b.slli(7, 2, 2)
    b.add(7, 10, 7)
    b.sw(4, 7, 0)                   # acf[k]
    b.addi(2, 2, 1)
    b.slti(8, 2, lags)
    b.bne(8, 0, "lag_loop")

    # Reflection coefficients: r[k] = acf[k] / acf[0] (Schur-like stage).
    b.lw(11, 10, 0)                 # acf[0]
    b.addi(11, 11, 1)               # avoid division by zero
    b.li(2, 1)
    b.label("refl_loop")
    b.slli(7, 2, 2)
    b.add(7, 10, 7)
    b.lw(12, 7, 0)
    b.slli(12, 12, 8)
    b.div(13, 12, 11)               # fixed-point reflection coefficient
    b.sw(13, 7, 0)
    b.addi(2, 2, 1)
    b.slti(8, 2, lags)
    b.bne(8, 0, "refl_loop")
    b.halt()

    return Workload(
        name="gsm_c",
        program=b.build(),
        memory=memory,
        category="telecom",
        description="GSM LPC autocorrelation (multiply-accumulate) and reflection coefficients",
    )
