"""SPEC CPU2006-style memory-intensive kernels (paper Figure 6).

The paper complements MiBench with a number of SPEC CPU2006 benchmarks that
are considerably more memory intensive.  These kernels reproduce that
behaviour with large data footprints relative to their instruction counts:

* ``mcf_like``        — pointer chasing over a large linked structure (DL2 misses,
  serial load chains).
* ``libquantum_like`` — streaming read-modify-write over a large gate array.
* ``lbm_like``        — 1D stencil sweep over a large lattice.
* ``milc_like``       — streaming multiply-accumulate over large vectors.
* ``soplex_like``     — sparse matrix-vector product with indirect accesses.
* ``bzip2_like``      — move-to-front transform with data-dependent inner loops.
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, random_words, rng


def build_mcf_like(nodes: int = 4096, hops: int = 2400) -> Workload:
    """Pointer chasing across a randomly permuted ring of nodes."""
    generator = rng("mcf_like")
    memory = MemoryImage()
    node_bytes = 4 * WORD           # next pointer, cost, flow, padding
    base = 0x100000

    # A random Hamiltonian cycle guarantees the chase never terminates early
    # and touches nodes in cache-hostile order.
    order = list(range(1, nodes))
    generator.shuffle(order)
    sequence = [0] + order
    next_pointer = [0] * nodes
    for position in range(nodes):
        current = sequence[position]
        successor = sequence[(position + 1) % nodes]
        next_pointer[current] = base + successor * node_bytes

    words: list[int] = []
    for node in range(nodes):
        words.extend([
            next_pointer[node],
            generator.randrange(1, 1000),   # cost
            generator.randrange(0, 100),    # flow
            0,
        ])
    layout(memory, base, words)

    b = ProgramBuilder("mcf_like")
    # r1: current node address, r2: hops left, r3: accumulated cost, r4: flow sum
    b.li(1, base)
    b.li(2, hops)
    b.li(3, 0)
    b.li(4, 0)

    b.label("chase_loop")
    b.lw(5, 1, WORD)                # cost
    b.lw(6, 1, 2 * WORD)            # flow
    b.add(3, 3, 5)
    b.add(4, 4, 6)
    b.lw(1, 1, 0)                   # follow the pointer (serial chain)
    b.addi(2, 2, -1)
    b.bne(2, 0, "chase_loop")
    b.halt()

    return Workload(
        name="mcf_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Pointer chasing over a large node pool (memory latency bound)",
    )


def build_libquantum_like(gates: int = 1800) -> Workload:
    """Streaming read-modify-write over a quantum-register style array."""
    generator = rng("libquantum_like")
    memory = MemoryImage()
    base = 0x200000
    layout(memory, base, random_words(generator, gates * 2, 0, 1 << 20))

    b = ProgramBuilder("libquantum_like")
    # r1: state cursor, r2: gates left, r3: control mask, r4/5: amplitudes
    b.li(1, base)
    b.li(2, gates)
    b.li(3, 0x5A5A)

    b.label("gate_loop")
    b.lw(4, 1, 0)
    b.lw(5, 1, WORD)
    b.xor(4, 4, 3)                  # apply the gate to the control word
    b.and_(6, 5, 3)
    b.or_(4, 4, 6)
    b.sw(4, 1, 0)
    b.sw(5, 1, WORD)
    b.addi(1, 1, 2 * WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "gate_loop")
    b.halt()

    return Workload(
        name="libquantum_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Streaming read-modify-write over a large register file",
    )


def build_lbm_like(cells: int = 1700) -> Workload:
    """1D lattice stencil: out[i] = (in[i-1] + 2 in[i] + in[i+1]) / 4 + drift."""
    generator = rng("lbm_like")
    memory = MemoryImage()
    in_base = 0x300000
    next_free = layout(memory, in_base, random_words(generator, cells + 2, 0, 1 << 12))
    out_base = next_free + 4096

    b = ProgramBuilder("lbm_like")
    # r1: input cursor, r2: output cursor, r3: cells left
    b.li(1, in_base + WORD)
    b.li(2, out_base)
    b.li(3, cells)

    b.label("cell_loop")
    b.lw(4, 1, -WORD)
    b.lw(5, 1, 0)
    b.lw(6, 1, WORD)
    b.slli(7, 5, 1)
    b.add(7, 7, 4)
    b.add(7, 7, 6)
    b.srli(7, 7, 2)
    b.muli(8, 5, 3)                 # collision term
    b.srli(8, 8, 2)
    b.add(7, 7, 8)
    b.sw(7, 2, 0)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "cell_loop")
    b.halt()

    return Workload(
        name="lbm_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Lattice stencil sweep over a large array",
    )


def build_milc_like(elements: int = 1500) -> Workload:
    """Streaming complex multiply-accumulate over large vectors."""
    generator = rng("milc_like")
    memory = MemoryImage()
    a_base = 0x400000
    next_free = layout(memory, a_base, random_words(generator, elements * 2, 0, 1 << 10))
    b_base = next_free + 4096
    layout(memory, b_base, random_words(generator, elements * 2, 0, 1 << 10))

    b = ProgramBuilder("milc_like")
    # r1/r2: vector cursors, r3: elements left, r4/5: accumulators
    b.li(1, a_base)
    b.li(2, b_base)
    b.li(3, elements)
    b.li(4, 0)
    b.li(5, 0)

    b.label("element_loop")
    b.lw(6, 1, 0)                   # a.re
    b.lw(7, 1, WORD)                # a.im
    b.lw(8, 2, 0)                   # b.re
    b.lw(9, 2, WORD)                # b.im
    b.mul(10, 6, 8)
    b.mul(11, 7, 9)
    b.sub(10, 10, 11)               # real part
    b.mul(12, 6, 9)
    b.mul(13, 7, 8)
    b.add(12, 12, 13)               # imaginary part
    b.add(4, 4, 10)
    b.add(5, 5, 12)
    b.addi(1, 1, 2 * WORD)
    b.addi(2, 2, 2 * WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "element_loop")
    b.halt()

    return Workload(
        name="milc_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Streaming complex multiply-accumulate (multiply and memory bound)",
    )


def build_soplex_like(rows: int = 420, row_length: int = 5) -> Workload:
    """Sparse matrix-vector product with indirect column accesses."""
    generator = rng("soplex_like")
    memory = MemoryImage()
    columns = 4096

    values: list[int] = []
    indices: list[int] = []
    for _ in range(rows * row_length):
        values.append(generator.randrange(1, 100))
        indices.append(generator.randrange(0, columns))

    value_base = 0x500000
    next_free = layout(memory, value_base, values)
    index_base = next_free + 4096
    next_free = layout(memory, index_base, indices)
    vector_base = next_free + 4096
    next_free = layout(memory, vector_base, random_words(generator, columns, 0, 1 << 10))
    result_base = next_free + 4096

    b = ProgramBuilder("soplex_like")
    # r1: value cursor, r2: index cursor, r3: vector base, r4: result cursor
    # r5: rows left, r6: inner counter, r7: accumulator
    b.li(1, value_base)
    b.li(2, index_base)
    b.li(3, vector_base)
    b.li(4, result_base)
    b.li(5, rows)

    b.label("row_loop")
    b.li(7, 0)
    b.li(6, row_length)
    b.label("nnz_loop")
    b.lw(8, 1, 0)                   # matrix value
    b.lw(9, 2, 0)                   # column index
    b.slli(9, 9, 2)
    b.add(9, 3, 9)
    b.lw(10, 9, 0)                  # x[column] (irregular access)
    b.mul(8, 8, 10)
    b.add(7, 7, 8)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(6, 6, -1)
    b.bne(6, 0, "nnz_loop")
    b.sw(7, 4, 0)
    b.addi(4, 4, WORD)
    b.addi(5, 5, -1)
    b.bne(5, 0, "row_loop")
    b.halt()

    return Workload(
        name="soplex_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Sparse matrix-vector product (indirect, irregular accesses)",
    )


def build_bzip2_like(symbols: int = 350, alphabet: int = 48) -> Workload:
    """Move-to-front transform with a data-dependent search loop."""
    generator = rng("bzip2_like")
    memory = MemoryImage()
    # Skewed symbol distribution so the MTF search length varies.
    symbol_stream = [
        min(alphabet - 1, int(abs(generator.gauss(0, alphabet / 5))))
        for _ in range(symbols)
    ]
    stream_base = 0x600000
    next_free = layout(memory, stream_base, symbol_stream)
    table_base = next_free
    next_free = layout(memory, table_base, list(range(alphabet)))
    output_base = next_free

    b = ProgramBuilder("bzip2_like")
    # r1: stream cursor, r2: symbols left, r3: table base, r4: output cursor
    # r5: symbol, r6: search index, r7: table entry, r8: previous entry
    b.li(1, stream_base)
    b.li(2, symbols)
    b.li(3, table_base)
    b.li(4, output_base)

    b.label("symbol_loop")
    b.lw(5, 1, 0)
    b.li(6, 0)
    # Search the table for the symbol, shifting entries towards the back as
    # we go (this is the move-to-front update fused with the search).
    b.mov(8, 5)
    b.label("search_loop")
    b.slli(9, 6, 2)
    b.add(9, 3, 9)
    b.lw(7, 9, 0)
    b.sw(8, 9, 0)                   # shift the previous front entry down
    b.mov(8, 7)
    b.addi(6, 6, 1)
    b.bne(7, 5, "search_loop")
    # Emit the rank (search length) and restore the symbol at the front.
    b.addi(6, 6, -1)
    b.sw(6, 4, 0)
    b.sw(5, 3, 0)
    b.addi(4, 4, WORD)
    b.addi(1, 1, WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "symbol_loop")
    b.halt()

    return Workload(
        name="bzip2_like",
        program=b.build(),
        memory=memory,
        category="spec",
        description="Move-to-front transform (data-dependent search loops)",
    )
