"""Automotive/industrial domain kernels: ``qsort`` and the three ``susan`` variants.

``qsort`` sorts an integer array with an iterative quicksort (explicit segment
stack, Lomuto partition): data-dependent compare-and-swap branches make it a
branch-misprediction heavy kernel.

The ``susan`` kernels mirror the SUSAN image-processing benchmark:
``susan_s`` (smoothing) is a windowed weighted sum dominated by multiplies,
``susan_e`` (edge detection) and ``susan_c`` (corner detection) compare every
window pixel against the centre with a threshold branch per pixel.
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, random_image, random_words, rng


def build_qsort(size: int = 230) -> Workload:
    """Iterative quicksort over ``size`` random words."""
    generator = rng("qsort")
    memory = MemoryImage()

    array_base = 0x3000
    next_free = layout(memory, array_base, random_words(generator, size))
    stack_base = next_free  # segment stack: pairs of (lo, hi)

    b = ProgramBuilder("qsort")
    # r1: array base, r2: stack base, r3: stack pointer (words)
    # r4: lo, r5: hi, r6: pivot, r7: i, r8: j
    b.li(1, array_base)
    b.li(2, stack_base)
    b.li(3, 0)
    # push (0, size-1)
    b.li(4, 0)
    b.li(5, size - 1)
    b.slli(9, 3, 2)
    b.add(9, 2, 9)
    b.sw(4, 9, 0)
    b.sw(5, 9, WORD)
    b.addi(3, 3, 2)

    b.label("work_loop")
    b.beq(3, 0, "done")
    # pop (lo, hi)
    b.addi(3, 3, -2)
    b.slli(9, 3, 2)
    b.add(9, 2, 9)
    b.lw(4, 9, 0)
    b.lw(5, 9, WORD)
    b.bge(4, 5, "work_loop")

    # Lomuto partition with pivot = array[hi].
    b.slli(9, 5, 2)
    b.add(9, 1, 9)
    b.lw(6, 9, 0)                   # pivot
    b.addi(7, 4, -1)                # i = lo - 1
    b.mov(8, 4)                     # j = lo

    b.label("part_loop")
    b.bge(8, 5, "part_done")
    b.slli(9, 8, 2)
    b.add(9, 1, 9)
    b.lw(10, 9, 0)                  # array[j]
    b.bge(10, 6, "part_next")       # skip if array[j] >= pivot
    b.addi(7, 7, 1)                 # i += 1
    b.slli(11, 7, 2)
    b.add(11, 1, 11)
    b.lw(12, 11, 0)                 # array[i]
    b.sw(10, 11, 0)                 # swap
    b.sw(12, 9, 0)
    b.label("part_next")
    b.addi(8, 8, 1)
    b.j("part_loop")

    b.label("part_done")
    b.addi(7, 7, 1)                 # pivot position
    b.slli(11, 7, 2)
    b.add(11, 1, 11)
    b.lw(12, 11, 0)
    b.slli(9, 5, 2)
    b.add(9, 1, 9)
    b.lw(10, 9, 0)
    b.sw(10, 11, 0)
    b.sw(12, 9, 0)

    # push (lo, p-1) and (p+1, hi)
    b.addi(13, 7, -1)
    b.slli(9, 3, 2)
    b.add(9, 2, 9)
    b.sw(4, 9, 0)
    b.sw(13, 9, WORD)
    b.addi(3, 3, 2)
    b.addi(13, 7, 1)
    b.slli(9, 3, 2)
    b.add(9, 2, 9)
    b.sw(13, 9, 0)
    b.sw(5, 9, WORD)
    b.addi(3, 3, 2)
    b.j("work_loop")

    b.label("done")
    b.halt()

    return Workload(
        name="qsort",
        program=b.build(),
        memory=memory,
        category="automotive",
        description="Iterative quicksort (data-dependent branches, swaps)",
    )


def _susan_workload(name: str, *, width: int, height: int, mode: str,
                    threshold: int = 27) -> Workload:
    """Common SUSAN scaffold: slide a 3x3 window over an image.

    ``mode`` selects the per-window computation:

    * ``"smooth"``  — weighted sum of the window (multiply heavy),
    * ``"edge"``    — count pixels within ``threshold`` of the centre,
    * ``"corner"``  — like edge but with a second asymmetric threshold test.
    """
    generator = rng(name)
    memory = MemoryImage()
    image_base = 0x8000
    pixels = random_image(generator, width, height)
    next_free = layout(memory, image_base, pixels)
    output_base = next_free

    weights = [1, 2, 1, 2, 4, 2, 1, 2, 1]
    row_bytes = width * WORD

    b = ProgramBuilder(name)
    # r1: image base, r2: output base, r3: row counter, r4: column counter
    # r5: centre pixel address, r6: accumulator, r7..: temporaries
    b.li(1, image_base)
    b.li(2, output_base)
    b.li(3, 1)                      # first interior row

    b.label("row_loop")
    b.li(4, 1)                      # first interior column

    b.label("col_loop")
    # centre address = base + (row * width + col) * 4
    b.li(7, width)
    b.mul(8, 3, 7)
    b.add(8, 8, 4)
    b.slli(8, 8, 2)
    b.add(5, 1, 8)
    b.lw(9, 5, 0)                   # centre pixel
    b.li(6, 0)                      # accumulator / count
    if mode == "corner":
        b.li(13, 0)                 # asymmetry accumulator

    offsets = [
        -row_bytes - WORD, -row_bytes, -row_bytes + WORD,
        -WORD, 0, WORD,
        row_bytes - WORD, row_bytes, row_bytes + WORD,
    ]
    for index, offset in enumerate(offsets):
        b.lw(10, 5, offset)
        if mode == "smooth":
            b.muli(11, 10, weights[index])
            b.add(6, 6, 11)
        else:
            # |pixel - centre| compared against the brightness threshold.
            b.sub(11, 10, 9)
            skip = b.unique_label(f"abs_{index}")
            b.bge(11, 0, skip)
            b.sub(11, 0, 11)
            b.label(skip)
            far = b.unique_label(f"far_{index}")
            b.slti(12, 11, threshold)
            b.beq(12, 0, far)
            b.addi(6, 6, 1)
            b.label(far)
            if mode == "corner" and index % 2 == 0:
                # Corner response also accumulates the raw difference for the
                # asymmetry test, adding extra ALU work and a longer chain.
                b.add(13, 13, 11)

    if mode == "smooth":
        b.srli(6, 6, 4)             # divide by the total weight (16)
    elif mode == "corner":
        b.add(6, 6, 13)

    b.add(14, 2, 8)
    b.sw(6, 14, 0)
    b.addi(4, 4, 1)
    b.li(7, width - 1)
    b.blt(4, 7, "col_loop")
    b.addi(3, 3, 1)
    b.li(7, height - 1)
    b.blt(3, 7, "row_loop")
    b.halt()

    descriptions = {
        "smooth": "SUSAN smoothing (3x3 weighted sum, multiply heavy)",
        "edge": "SUSAN edge detection (threshold branches per window pixel)",
        "corner": "SUSAN corner detection (threshold branches plus asymmetry test)",
    }
    return Workload(
        name=name,
        program=b.build(),
        memory=memory,
        category="automotive",
        description=descriptions[mode],
    )


def build_susan_s(width: int = 30, height: int = 22) -> Workload:
    return _susan_workload("susan_s", width=width, height=height, mode="smooth")


def build_susan_e(width: int = 22, height: int = 17) -> Workload:
    return _susan_workload("susan_e", width=width, height=height, mode="edge")


def build_susan_c(width: int = 20, height: int = 16) -> Workload:
    return _susan_workload("susan_c", width=width, height=height, mode="corner")
