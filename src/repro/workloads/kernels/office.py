"""Office domain kernels: ``stringsearch`` and ``rsynth``.

``stringsearch`` scans a text buffer for a set of patterns with the
compare-and-early-exit inner loop of the MiBench benchmark (a Pratt/Boyer
style search simplified to a shifted naive search): mostly loads, compares
and well-predicted branches.

``rsynth`` models the cascade formant synthesiser of MiBench's rsynth: a
chain of second-order IIR filter sections applied per sample, which creates
long multiply-accumulate dependency chains across sections.
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, rng


def build_stringsearch(text_length: int = 1900, pattern_length: int = 6) -> Workload:
    """Search a text for a pattern with an early-exit compare loop."""
    generator = rng("stringsearch")
    memory = MemoryImage()

    # Text over a small alphabet so partial matches (and hence inner-loop
    # iterations beyond the first character) actually happen.
    alphabet = [ord(c) for c in "abcdefgh"]
    text = [generator.choice(alphabet) for _ in range(text_length)]
    pattern = [generator.choice(alphabet) for _ in range(pattern_length)]
    # Plant a few true matches so the found-branch is exercised.
    for position in range(100, text_length - pattern_length, 400):
        text[position:position + pattern_length] = pattern

    text_base = 0x9000
    next_free = layout(memory, text_base, text)
    pattern_base = next_free
    layout(memory, pattern_base, pattern)

    b = ProgramBuilder("stringsearch")
    # r1: text cursor, r2: positions remaining, r3: pattern base, r4: match count
    # r5: inner index, r6/7: characters, r8/9: addresses
    b.li(1, text_base)
    b.li(2, text_length - pattern_length)
    b.li(3, pattern_base)
    b.li(4, 0)
    b.li(10, pattern_length)

    b.label("position_loop")
    b.li(5, 0)
    b.label("compare_loop")
    b.slli(8, 5, 2)
    b.add(9, 1, 8)
    b.lw(6, 9, 0)                   # text[pos + i]
    b.add(9, 3, 8)
    b.lw(7, 9, 0)                   # pattern[i]
    b.bne(6, 7, "mismatch")
    b.addi(5, 5, 1)
    b.blt(5, 10, "compare_loop")
    b.addi(4, 4, 1)                 # full match found
    b.label("mismatch")
    b.addi(1, 1, WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "position_loop")
    b.halt()

    return Workload(
        name="stringsearch",
        program=b.build(),
        memory=memory,
        category="office",
        description="Pattern search with early-exit compare loop",
    )


def build_rsynth(samples: int = 260, sections: int = 4) -> Workload:
    """Cascade of second-order IIR filter sections (formant synthesis)."""
    generator = rng("rsynth")
    memory = MemoryImage()

    excitation = [generator.randrange(-1 << 12, 1 << 12) for _ in range(samples)]
    input_base = 0xB000
    next_free = layout(memory, input_base, excitation)
    # Per-section coefficients: b0, a1, a2 (fixed point, scaled by 256).
    coefficient_words = []
    for _ in range(sections):
        coefficient_words.extend([
            generator.randrange(120, 250),
            generator.randrange(-200, -50),
            generator.randrange(20, 120),
        ])
    coef_base = next_free
    next_free = layout(memory, coef_base, coefficient_words)
    # Per-section state: y[n-1], y[n-2].
    state_base = next_free
    next_free = layout(memory, state_base, [0] * (2 * sections))
    output_base = next_free

    b = ProgramBuilder("rsynth")
    # r1: input ptr, r2: samples left, r3: section counter, r4: signal value
    # r5: coefficient cursor, r6: state cursor, r7..r12: temporaries
    b.li(1, input_base)
    b.li(2, samples)
    b.li(20, output_base)

    b.label("sample_loop")
    b.lw(4, 1, 0)                   # excitation sample
    b.li(3, sections)
    b.li(5, coef_base)
    b.li(6, state_base)

    b.label("section_loop")
    b.lw(7, 5, 0)                   # b0
    b.lw(8, 5, WORD)                # a1
    b.lw(9, 5, 2 * WORD)            # a2
    b.lw(10, 6, 0)                  # y[n-1]
    b.lw(11, 6, WORD)               # y[n-2]
    b.mul(12, 4, 7)                 # b0 * x
    b.mul(13, 10, 8)                # a1 * y1
    b.mul(14, 11, 9)                # a2 * y2
    b.sub(12, 12, 13)
    b.sub(12, 12, 14)
    b.srli(12, 12, 8)               # back to the fixed-point scale
    b.sw(10, 6, WORD)               # y[n-2] = y[n-1]
    b.sw(12, 6, 0)                  # y[n-1] = y
    b.mov(4, 12)                    # cascade: output feeds the next section
    b.addi(5, 5, 3 * WORD)
    b.addi(6, 6, 2 * WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "section_loop")

    b.sw(4, 20, 0)
    b.addi(20, 20, WORD)
    b.addi(1, 1, WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "sample_loop")
    b.halt()

    return Workload(
        name="rsynth",
        program=b.build(),
        memory=memory,
        category="office",
        description="Cascade IIR formant synthesis (serial multiply-accumulate chains)",
    )
