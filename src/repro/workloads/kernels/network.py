"""Network domain kernels: ``dijkstra`` and ``patricia``.

``dijkstra`` computes single-source shortest paths over a dense adjacency
matrix, exactly like the MiBench program.  Its min-search and relaxation loops
are chains of load → compare → branch, so the kernel is dependency- and
branch-bound and benefits little from superscalar width (Figure 4 of the
paper).

``patricia`` models the routing-table trie lookups of MiBench's patricia:
repeated pointer-chasing descents of a binary trie with a data-dependent
branch per level, which makes it the most branch-misprediction heavy kernel
(Figure 7).
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, rng

_INFINITY = 1 << 30


def build_dijkstra(num_nodes: int = 30, edge_density: float = 0.35) -> Workload:
    """Dense-graph Dijkstra without a priority queue (O(N^2) min search)."""
    generator = rng("dijkstra")
    memory = MemoryImage()

    adjacency = []
    for source in range(num_nodes):
        for dest in range(num_nodes):
            if source != dest and generator.random() < edge_density:
                adjacency.append(generator.randrange(1, 100))
            else:
                adjacency.append(0)

    adj_base = 0x2000
    next_free = layout(memory, adj_base, adjacency)
    dist_base = next_free
    next_free = layout(memory, dist_base, [0] + [_INFINITY] * (num_nodes - 1))
    visited_base = next_free
    layout(memory, visited_base, [0] * num_nodes)

    b = ProgramBuilder("dijkstra")
    # r1: adjacency base, r2: dist base, r3: visited base, r4: N
    # r5: outer counter, r6: inner index, r7: best distance, r8: best node
    b.li(1, adj_base)
    b.li(2, dist_base)
    b.li(3, visited_base)
    b.li(4, num_nodes)
    b.li(5, num_nodes)

    b.label("outer")
    # --- find the unvisited node with the smallest distance -------------
    b.li(6, 0)
    b.li(7, _INFINITY + 1)
    b.li(8, 0)
    b.label("min_loop")
    b.slli(9, 6, 2)
    b.add(20, 3, 9)
    b.lw(11, 20, 0)                 # visited[i]
    b.bne(11, 0, "min_skip")
    b.add(20, 2, 9)
    b.lw(10, 20, 0)                 # dist[i]
    b.bge(10, 7, "min_skip")
    b.mov(7, 10)
    b.mov(8, 6)
    b.label("min_skip")
    b.addi(6, 6, 1)
    b.blt(6, 4, "min_loop")

    # --- mark it visited and load its distance ---------------------------
    b.slli(9, 8, 2)
    b.add(20, 3, 9)
    b.li(11, 1)
    b.sw(11, 20, 0)
    b.add(20, 2, 9)
    b.lw(12, 20, 0)                 # dist[u]

    # --- relax all outgoing edges ----------------------------------------
    b.li(22, num_nodes * WORD)
    b.mul(21, 8, 22)                # row offset = u * N * 4
    b.add(21, 1, 21)
    b.li(6, 0)
    b.label("relax_loop")
    b.slli(9, 6, 2)
    b.add(20, 21, 9)
    b.lw(13, 20, 0)                 # weight(u, v)
    b.beq(13, 0, "relax_skip")
    b.add(20, 3, 9)
    b.lw(11, 20, 0)                 # visited[v]
    b.bne(11, 0, "relax_skip")
    b.add(14, 12, 13)               # candidate distance
    b.add(20, 2, 9)
    b.lw(15, 20, 0)                 # dist[v]
    b.bge(14, 15, "relax_skip")
    b.sw(14, 20, 0)
    b.label("relax_skip")
    b.addi(6, 6, 1)
    b.blt(6, 4, "relax_loop")

    b.addi(5, 5, -1)
    b.bne(5, 0, "outer")
    b.halt()

    return Workload(
        name="dijkstra",
        program=b.build(),
        memory=memory,
        category="network",
        description="Dense-graph shortest path (dependency and branch bound)",
    )


def build_patricia(lookups: int = 170, depth: int = 10) -> Workload:
    """Binary radix-trie lookups with one data-dependent branch per level."""
    generator = rng("patricia")
    memory = MemoryImage()

    trie_base = 0x4000
    node_bytes = 2 * WORD
    # Full binary trie in heap layout: node i at trie_base + i * 8 with its
    # children's *byte addresses* stored in the two words, so every descent
    # step is a genuine pointer load.
    total_nodes = (1 << (depth + 1)) - 1
    words: list[int] = []
    for node in range(total_nodes):
        left_child = 2 * node + 1
        right_child = 2 * node + 2
        if left_child < total_nodes:
            words.append(trie_base + left_child * node_bytes)
            words.append(trie_base + right_child * node_bytes)
        else:
            # Leaf: store a route value twice so either "pointer" load works.
            value = generator.randrange(1, 1 << 16)
            words.append(value)
            words.append(value)
    next_free = layout(memory, trie_base, words)

    keys = [generator.randrange(0, 1 << depth) for _ in range(lookups)]
    key_base = next_free
    layout(memory, key_base, keys)

    b = ProgramBuilder("patricia")
    # r1: key array pointer, r2: lookups remaining, r3: trie root address
    # r4: current key, r5: node address, r6: level counter, r7: bit
    b.li(1, key_base)
    b.li(2, lookups)
    b.li(3, trie_base)
    b.li(15, 0)                     # checksum of found routes

    b.label("lookup_loop")
    b.lw(4, 1, 0)                   # key
    b.mov(5, 3)                     # node = root
    b.li(6, depth - 1)              # bit index, high to low

    b.label("descend")
    b.srl(7, 4, 6)
    b.andi(7, 7, 1)
    b.bne(7, 0, "go_right")
    b.lw(5, 5, 0)                   # node = node.left
    b.j("descended")
    b.label("go_right")
    b.lw(5, 5, WORD)                # node = node.right
    b.label("descended")
    b.addi(6, 6, -1)
    b.bge(6, 0, "descend")

    b.lw(8, 5, 0)                   # route value at the leaf
    b.add(15, 15, 8)
    b.addi(1, 1, WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "lookup_loop")
    b.halt()

    return Workload(
        name="patricia",
        program=b.build(),
        memory=memory,
        category="network",
        description="Radix-trie route lookups (pointer chasing, hard-to-predict branches)",
    )
