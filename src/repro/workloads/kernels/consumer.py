"""Consumer domain kernels.

* ``jpeg_c`` / ``jpeg_d`` — forward and inverse 8x8 block transforms with
  quantisation, mirroring cjpeg/djpeg's DCT pipelines (multiply heavy, good
  ILP inside a block).
* ``lame`` — subband windowing / MDCT-style multiply-accumulate with a
  scalefactor division per subband, streaming through a larger sample buffer.
* ``tiff2bw`` — RGB to grayscale conversion; three multiplies per pixel make
  it the most multiply-bound kernel (paper Figure 7).
* ``tiff2rgba`` — pixel format conversion streaming through the largest
  buffers of the suite, so it shows the largest L2/memory component.
* ``tiffdither`` — Floyd-Steinberg error-diffusion dithering; the error
  feedback creates long serial dependency chains (paper Figure 4).
* ``tiffmedian`` — 3x3 median filtering with an insertion-sort window,
  dominated by data-dependent compare branches.
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, random_image, random_words, rng


# ----------------------------------------------------------------------------
# JPEG-style block transforms.
# ----------------------------------------------------------------------------
def _emit_eight_point_transform(b: ProgramBuilder, base_reg: int, stride_reg: int,
                                coefficients: tuple[int, int, int, int]) -> None:
    """Emit a butterfly-style 8-point transform at ``base_reg`` with ``stride_reg``.

    Loads eight elements, forms sum/difference pairs, rotates the difference
    terms by fixed-point constants and stores the result back in place.
    Uses registers r10..r25 as scratch.
    """
    # Load x0..x7 into r10..r17, walking the cursor register r26.
    b.mov(26, base_reg)
    for index in range(8):
        b.lw(10 + index, 26, 0)
        if index != 7:
            b.add(26, 26, stride_reg)
    # Sum and difference terms: s_i -> r18..r21, d_i -> r22..r25.
    for index in range(4):
        b.add(18 + index, 10 + index, 17 - index)
        b.sub(22 + index, 10 + index, 17 - index)
    # Even outputs: s_i + s_{(i+1) mod 4}; odd outputs: (d_i * C_i) >> 7 + d_{(i+1) mod 4}.
    for index in range(4):
        b.add(10 + index, 18 + index, 18 + (index + 1) % 4)
        b.muli(27, 22 + index, coefficients[index])
        b.srli(27, 27, 7)
        b.add(14 + index, 27, 22 + (index + 1) % 4)
    # Store back in place.
    b.mov(26, base_reg)
    for index in range(8):
        b.sw(10 + index, 26, 0)
        if index != 7:
            b.add(26, 26, stride_reg)


def _jpeg_workload(name: str, blocks: int, inverse: bool) -> Workload:
    generator = rng(name)
    memory = MemoryImage()
    block_words = 64
    data_base = 0xA000
    next_free = layout(
        memory, data_base, random_words(generator, blocks * block_words, 0, 256)
    )
    quant_base = next_free
    # Quantisation table: reciprocal multipliers (forward) or step sizes (inverse).
    quant_table = [generator.randrange(16, 128) for _ in range(64)]
    layout(memory, quant_base, quant_table)

    coefficients = (181, 98, 139, 251)
    row_stride = 8 * WORD

    b = ProgramBuilder(name)
    # r1: current block base, r2: blocks remaining, r3: quant base
    # r4: row/column counter, r5: transform base, r6: stride, r7..r9 temps.
    b.li(1, data_base)
    b.li(2, blocks)
    b.li(3, quant_base)

    b.label("block_loop")

    if inverse:
        # Dequantise before the inverse transform: coef = coef * quant[i].
        b.li(4, 64)
        b.mov(7, 1)
        b.mov(8, 3)
        b.label("dequant_loop")
        b.lw(9, 7, 0)
        b.lw(28, 8, 0)
        b.mul(9, 9, 28)
        b.srli(9, 9, 4)
        b.sw(9, 7, 0)
        b.addi(7, 7, WORD)
        b.addi(8, 8, WORD)
        b.addi(4, 4, -1)
        b.bne(4, 0, "dequant_loop")

    # Row pass: 8 rows, elements are contiguous words (stride 4).
    b.li(4, 8)
    b.mov(5, 1)
    b.li(6, WORD)
    b.label("row_loop")
    _emit_eight_point_transform(b, 5, 6, coefficients)
    b.addi(5, 5, row_stride)
    b.addi(4, 4, -1)
    b.bne(4, 0, "row_loop")

    # Column pass: 8 columns, elements are a row apart (stride 32).
    b.li(4, 8)
    b.mov(5, 1)
    b.li(6, row_stride)
    b.label("col_loop")
    _emit_eight_point_transform(b, 5, 6, coefficients)
    b.addi(5, 5, WORD)
    b.addi(4, 4, -1)
    b.bne(4, 0, "col_loop")

    if not inverse:
        # Quantise: coef = (coef * reciprocal) >> 12.
        b.li(4, 64)
        b.mov(7, 1)
        b.mov(8, 3)
        b.label("quant_loop")
        b.lw(9, 7, 0)
        b.lw(28, 8, 0)
        b.mul(9, 9, 28)
        b.srli(9, 9, 12)
        b.sw(9, 7, 0)
        b.addi(7, 7, WORD)
        b.addi(8, 8, WORD)
        b.addi(4, 4, -1)
        b.bne(4, 0, "quant_loop")
    else:
        # Level shift and clamp to the displayable 0..255 range (branchy).
        b.li(4, 64)
        b.mov(7, 1)
        b.label("clamp_loop")
        b.lw(9, 7, 0)
        b.srli(9, 9, 6)
        b.addi(9, 9, 128)
        b.bge(9, 0, "clamp_high")
        b.li(9, 0)
        b.label("clamp_high")
        b.li(28, 255)
        b.blt(9, 28, "clamp_done")
        b.mov(9, 28)
        b.label("clamp_done")
        b.sw(9, 7, 0)
        b.addi(7, 7, WORD)
        b.addi(4, 4, -1)
        b.bne(4, 0, "clamp_loop")

    b.addi(1, 1, block_words * WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "block_loop")
    b.halt()

    return Workload(
        name=name,
        program=b.build(),
        memory=memory,
        category="consumer",
        description=(
            "Inverse 8x8 block transform with dequantisation and clamping"
            if inverse
            else "Forward 8x8 block transform with quantisation"
        ),
    )


def build_jpeg_c(blocks: int = 11) -> Workload:
    return _jpeg_workload("jpeg_c", blocks=blocks, inverse=False)


def build_jpeg_d(blocks: int = 10) -> Workload:
    return _jpeg_workload("jpeg_d", blocks=blocks, inverse=True)


# ----------------------------------------------------------------------------
# lame: subband windowing with scalefactor division.
# ----------------------------------------------------------------------------
def build_lame(granules: int = 7, subbands: int = 16, taps: int = 12) -> Workload:
    generator = rng("lame")
    memory = MemoryImage()
    samples_per_granule = subbands * taps
    sample_base = 0xC000
    next_free = layout(
        memory,
        sample_base,
        random_words(generator, granules * samples_per_granule, 0, 1 << 14),
    )
    window_base = next_free
    next_free = layout(memory, window_base, random_words(generator, taps, 1, 256))
    output_base = next_free

    b = ProgramBuilder("lame")
    # r1: granule sample base, r2: granule counter, r3: subband counter
    # r4: tap counter, r5: accumulator, r6/7: addresses, r8/9: operands
    # r10: window base, r11: output pointer, r12: scalefactor
    b.li(1, sample_base)
    b.li(2, granules)
    b.li(10, window_base)
    b.li(11, output_base)

    b.label("granule_loop")
    b.li(3, subbands)
    b.mov(6, 1)                     # subband sample cursor

    b.label("subband_loop")
    b.li(5, 0)
    b.li(4, taps)
    b.mov(7, 10)                    # window cursor
    b.label("tap_loop")
    b.lw(8, 6, 0)
    b.lw(9, 7, 0)
    b.mul(8, 8, 9)
    b.add(5, 5, 8)
    b.addi(6, 6, WORD)
    b.addi(7, 7, WORD)
    b.addi(4, 4, -1)
    b.bne(4, 0, "tap_loop")

    # Scalefactor quantisation: divide the subband energy by a data-dependent
    # scale (this is where lame picks up its divide component).
    b.srli(12, 5, 10)
    b.addi(12, 12, 3)
    b.div(13, 5, 12)
    b.sw(13, 11, 0)
    b.addi(11, 11, WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "subband_loop")

    b.addi(1, 1, samples_per_granule * WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "granule_loop")
    b.halt()

    return Workload(
        name="lame",
        program=b.build(),
        memory=memory,
        category="consumer",
        description="MP3-style subband windowing with scalefactor division",
    )


# ----------------------------------------------------------------------------
# TIFF tools.
# ----------------------------------------------------------------------------
def build_tiff2bw(pixels: int = 1150) -> Workload:
    """RGB planes to grayscale: gray = (77 r + 150 g + 29 b) >> 8."""
    generator = rng("tiff2bw")
    memory = MemoryImage()
    red_base = 0x10000
    next_free = layout(memory, red_base, random_words(generator, pixels, 0, 256))
    green_base = next_free
    next_free = layout(memory, green_base, random_words(generator, pixels, 0, 256))
    blue_base = next_free
    next_free = layout(memory, blue_base, random_words(generator, pixels, 0, 256))
    gray_base = next_free

    b = ProgramBuilder("tiff2bw")
    # r1..r3: plane pointers, r4: output pointer, r5: pixels left
    b.li(1, red_base)
    b.li(2, green_base)
    b.li(3, blue_base)
    b.li(4, gray_base)
    b.li(5, pixels)

    b.label("pixel_loop")
    b.lw(6, 1, 0)
    b.lw(7, 2, 0)
    b.lw(8, 3, 0)
    b.muli(9, 6, 77)
    b.muli(10, 7, 150)
    b.muli(11, 8, 29)
    b.add(9, 9, 10)
    b.add(9, 9, 11)
    b.srli(9, 9, 8)
    b.sw(9, 4, 0)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(3, 3, WORD)
    b.addi(4, 4, WORD)
    b.addi(5, 5, -1)
    b.bne(5, 0, "pixel_loop")
    b.halt()

    return Workload(
        name="tiff2bw",
        program=b.build(),
        memory=memory,
        category="consumer",
        description="RGB to grayscale conversion (three multiplies per pixel)",
    )


def build_tiff2rgba(pixels: int = 1500) -> Workload:
    """Packed RGB to RGBA conversion streaming through large buffers."""
    generator = rng("tiff2rgba")
    memory = MemoryImage()
    input_base = 0x20000
    packed = [generator.randrange(0, 1 << 24) for _ in range(pixels)]
    next_free = layout(memory, input_base, packed)
    output_base = next_free + 4096  # keep input and output on distinct pages

    b = ProgramBuilder("tiff2rgba")
    # r1: input ptr, r2: output ptr, r3: pixels left, r4: packed pixel
    b.li(1, input_base)
    b.li(2, output_base)
    b.li(3, pixels)
    b.li(10, 255)

    b.label("pixel_loop")
    b.lw(4, 1, 0)
    b.andi(5, 4, 255)               # red
    b.srli(6, 4, 8)
    b.andi(6, 6, 255)               # green
    b.srli(7, 4, 16)
    b.andi(7, 7, 255)               # blue
    b.slli(6, 6, 8)
    b.slli(7, 7, 16)
    b.slli(8, 10, 24)               # alpha
    b.or_(5, 5, 6)
    b.or_(5, 5, 7)
    b.or_(5, 5, 8)
    b.sw(5, 2, 0)
    b.sw(4, 2, WORD)                # keep the original next to the converted pixel
    b.addi(1, 1, WORD)
    b.addi(2, 2, 2 * WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "pixel_loop")
    b.halt()

    return Workload(
        name="tiff2rgba",
        program=b.build(),
        memory=memory,
        category="consumer",
        description="Pixel format conversion streaming through large buffers (L2/memory bound)",
    )


def build_tiffdither(width: int = 36, height: int = 22) -> Workload:
    """Floyd-Steinberg error diffusion to a bilevel image."""
    generator = rng("tiffdither")
    memory = MemoryImage()
    image_base = 0x30000
    next_free = layout(memory, image_base, random_image(generator, width, height))
    error_base = next_free          # running error for the current and next row
    next_free = layout(memory, error_base, [0] * (2 * width + 2))
    output_base = next_free

    b = ProgramBuilder("tiffdither")
    # r1: pixel ptr, r2: output ptr, r3: row counter, r4: col counter
    # r5: current-row error ptr, r6: next-row error ptr, r7: value, r8: error
    # r9: output level, r10: threshold
    b.li(1, image_base)
    b.li(2, output_base)
    b.li(3, height)
    b.li(10, 128)

    b.label("row_loop")
    b.li(4, width)
    b.li(5, error_base)
    b.li(6, error_base + width * WORD)

    b.label("col_loop")
    b.lw(7, 1, 0)                   # pixel
    b.lw(8, 5, 0)                   # incoming error
    b.add(7, 7, 8)
    b.li(9, 0)
    b.blt(7, 10, "below")
    b.li(9, 255)
    b.label("below")
    b.sw(9, 2, 0)
    b.sub(8, 7, 9)                  # residual error
    # Diffuse: 7/16 to the right neighbour, 5/16 below, 3/16 below-right.
    b.muli(11, 8, 7)
    b.srli(11, 11, 4)
    b.lw(12, 5, WORD)
    b.add(12, 12, 11)
    b.sw(12, 5, WORD)
    b.muli(11, 8, 5)
    b.srli(11, 11, 4)
    b.lw(12, 6, 0)
    b.add(12, 12, 11)
    b.sw(12, 6, 0)
    b.muli(11, 8, 3)
    b.srli(11, 11, 4)
    b.lw(12, 6, WORD)
    b.add(12, 12, 11)
    b.sw(12, 6, WORD)
    b.addi(1, 1, WORD)
    b.addi(2, 2, WORD)
    b.addi(5, 5, WORD)
    b.addi(6, 6, WORD)
    b.addi(4, 4, -1)
    b.bne(4, 0, "col_loop")

    # Copy the next-row errors into the current-row buffer and clear them.
    b.li(4, width)
    b.li(5, error_base)
    b.li(6, error_base + width * WORD)
    b.label("swap_loop")
    b.lw(7, 6, 0)
    b.sw(7, 5, 0)
    b.sw(0, 6, 0)
    b.addi(5, 5, WORD)
    b.addi(6, 6, WORD)
    b.addi(4, 4, -1)
    b.bne(4, 0, "swap_loop")

    b.addi(3, 3, -1)
    b.bne(3, 0, "row_loop")
    b.halt()

    return Workload(
        name="tiffdither",
        program=b.build(),
        memory=memory,
        category="consumer",
        description="Floyd-Steinberg dithering (serial error-propagation chain)",
    )


def build_tiffmedian(width: int = 14, height: int = 11) -> Workload:
    """3x3 median filter using an insertion sort of the window."""
    generator = rng("tiffmedian")
    memory = MemoryImage()
    image_base = 0x40000
    next_free = layout(memory, image_base, random_image(generator, width, height))
    window_base = next_free
    next_free = layout(memory, window_base, [0] * 9)
    output_base = next_free
    row_bytes = width * WORD

    b = ProgramBuilder("tiffmedian")
    # r1: image base, r2: output base, r3: row, r4: col, r5: centre address
    # r6: window base, r7/8: insertion-sort indices, r9..r12 temps
    b.li(1, image_base)
    b.li(2, output_base)
    b.li(6, window_base)
    b.li(3, 1)

    b.label("row_loop")
    b.li(4, 1)

    b.label("col_loop")
    b.li(9, width)
    b.mul(10, 3, 9)
    b.add(10, 10, 4)
    b.slli(10, 10, 2)
    b.add(5, 1, 10)

    # Gather the 3x3 window into the scratch buffer with insertion sort:
    # each new pixel is slid left while it is smaller than its predecessor.
    offsets = [
        -row_bytes - WORD, -row_bytes, -row_bytes + WORD,
        -WORD, 0, WORD,
        row_bytes - WORD, row_bytes, row_bytes + WORD,
    ]
    for count, offset in enumerate(offsets):
        b.lw(11, 5, offset)         # new pixel
        b.li(7, count)              # insertion position
        insert_top = b.unique_label(f"ins_{count}")
        insert_done = b.unique_label(f"ins_done_{count}")
        b.label(insert_top)
        b.beq(7, 0, insert_done)
        b.addi(8, 7, -1)
        b.slli(12, 8, 2)
        b.add(12, 6, 12)
        b.lw(13, 12, 0)             # window[pos - 1]
        b.bge(11, 13, insert_done)
        b.slli(14, 7, 2)
        b.add(14, 6, 14)
        b.sw(13, 14, 0)             # shift the larger value right
        b.mov(7, 8)
        b.j(insert_top)
        b.label(insert_done)
        b.slli(14, 7, 2)
        b.add(14, 6, 14)
        b.sw(11, 14, 0)

    b.lw(15, 6, 4 * WORD)           # median = window[4]
    b.add(16, 2, 10)
    b.sw(15, 16, 0)

    b.addi(4, 4, 1)
    b.li(9, width - 1)
    b.blt(4, 9, "col_loop")
    b.addi(3, 3, 1)
    b.li(9, height - 1)
    b.blt(3, 9, "row_loop")
    b.halt()

    return Workload(
        name="tiffmedian",
        program=b.build(),
        memory=memory,
        category="consumer",
        description="3x3 median filter with insertion sort (data-dependent branches)",
    )
