"""Hand-written kernels mirroring the MiBench / SPEC workloads of the paper.

Each builder function returns a fully initialised
:class:`~repro.workloads.base.Workload` (program + input data).  The kernels
are grouped by MiBench application domain:

* :mod:`security`  — ``sha``
* :mod:`network`   — ``dijkstra``, ``patricia``
* :mod:`automotive` — ``qsort``, ``susan_c``, ``susan_e``, ``susan_s``
* :mod:`telecom`   — ``adpcm_c``, ``adpcm_d``, ``gsm_c``
* :mod:`consumer`  — ``jpeg_c``, ``jpeg_d``, ``lame``, ``tiff2bw``,
  ``tiff2rgba``, ``tiffdither``, ``tiffmedian``
* :mod:`office`    — ``stringsearch``, ``rsynth``
* :mod:`speclike`  — memory-intensive SPEC CPU2006 style kernels
"""

from repro.workloads.kernels import (  # noqa: F401
    automotive,
    consumer,
    network,
    office,
    security,
    speclike,
    telecom,
)

__all__ = [
    "automotive",
    "consumer",
    "network",
    "office",
    "security",
    "speclike",
    "telecom",
]
