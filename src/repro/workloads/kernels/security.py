"""Security domain kernel: ``sha``.

The MiBench ``sha`` benchmark computes a SHA-1 digest over a file.  The
kernel below implements the SHA-1 round structure (rotate, choose function,
five-way working-variable rotation) over a sequence of message blocks.  The
round body offers a fair amount of instruction-level parallelism — the rotate
of ``a``, the boolean choose function and the message-word load are mutually
independent — which is why ``sha`` scales well with superscalar width in the
paper (Figure 4).
"""

from __future__ import annotations

from repro.isa.program import ProgramBuilder
from repro.trace.functional import MemoryImage
from repro.workloads.base import Workload
from repro.workloads.kernels.common import WORD, layout, random_words, rng


def build_sha(blocks: int = 12, rounds: int = 64) -> Workload:
    """SHA-1 style block hashing.

    Parameters
    ----------
    blocks:
        Number of 16-word message blocks to process.
    rounds:
        Rounds per block (real SHA-1 uses 80; 64 keeps the trace compact).
    """
    generator = rng("sha")
    memory = MemoryImage()

    message_base = 0x1000
    schedule_words = blocks * rounds
    layout(memory, message_base, random_words(generator, schedule_words))
    state_base = 0x400
    layout(memory, state_base, [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0])

    b = ProgramBuilder("sha")
    # r1: message pointer, r2: block counter, r3: round counter
    # r10..r14: working variables a..e, r15: round constant, r20: state base
    b.li(1, message_base)
    b.li(2, blocks)
    b.li(15, 0x5A827999)
    b.li(20, state_base)
    b.lw(10, 20, 0 * WORD)
    b.lw(11, 20, 1 * WORD)
    b.lw(12, 20, 2 * WORD)
    b.lw(13, 20, 3 * WORD)
    b.lw(14, 20, 4 * WORD)

    b.label("block_loop")
    b.li(3, rounds)

    b.label("round_loop")
    b.lw(4, 1, 0)              # w = message word
    b.slli(5, 10, 5)           # rotl(a, 5): high part
    b.srli(6, 10, 27)          # rotl(a, 5): low part
    b.or_(5, 5, 6)
    b.xor(7, 12, 13)           # choose(b, c, d) = d ^ (b & (c ^ d))
    b.and_(7, 7, 11)
    b.xor(7, 7, 13)
    b.add(8, 5, 7)             # t = rotl(a,5) + f
    b.add(8, 8, 14)            # .. + e
    b.add(8, 8, 4)             # .. + w
    b.add(8, 8, 15)            # .. + K
    b.mov(14, 13)              # e = d
    b.mov(13, 12)              # d = c
    b.slli(6, 11, 30)          # c = rotl(b, 30)
    b.srli(9, 11, 2)
    b.or_(12, 6, 9)
    b.mov(11, 10)              # b = a
    b.mov(10, 8)               # a = t
    b.addi(1, 1, WORD)
    b.addi(3, 3, -1)
    b.bne(3, 0, "round_loop")

    # Fold the working variables back into the hash state.
    b.lw(5, 20, 0 * WORD)
    b.add(5, 5, 10)
    b.sw(5, 20, 0 * WORD)
    b.lw(6, 20, 1 * WORD)
    b.add(6, 6, 11)
    b.sw(6, 20, 1 * WORD)
    b.lw(7, 20, 2 * WORD)
    b.add(7, 7, 12)
    b.sw(7, 20, 2 * WORD)
    b.addi(2, 2, -1)
    b.bne(2, 0, "block_loop")
    b.halt()

    return Workload(
        name="sha",
        program=b.build(),
        memory=memory,
        category="security",
        description="SHA-1 style block hashing (high ILP, ALU dominated)",
    )
