"""Shared helpers for the workload kernels: data generation and layout."""

from __future__ import annotations

import random

from repro.trace.functional import MemoryImage

#: Word size used when laying out arrays.
WORD = MemoryImage.WORD_BYTES


def rng(name: str, seed: int = 2012) -> random.Random:
    """Deterministic per-kernel random generator.

    Seeding with the kernel name keeps workloads reproducible across runs and
    independent of each other (ISPASS'12 is used as the base seed).
    """
    return random.Random(f"{name}:{seed}")


def random_words(generator: random.Random, count: int, lo: int = 0,
                 hi: int = 1 << 16) -> list[int]:
    """Return ``count`` random integers in ``[lo, hi)``."""
    return [generator.randrange(lo, hi) for _ in range(count)]


def random_image(generator: random.Random, width: int, height: int,
                 max_value: int = 255) -> list[int]:
    """A pseudo-image with smooth horizontal gradients plus noise.

    Smoothness matters: image-processing kernels (susan, tiffdither) rely on
    neighbouring pixels being correlated so that threshold branches are
    partially biased, as they are for natural images.
    """
    pixels = []
    for y in range(height):
        base = generator.randrange(0, max_value // 2)
        for x in range(width):
            value = base + (x * max_value) // (2 * width)
            value += generator.randrange(-12, 13)
            pixels.append(max(0, min(max_value, value)))
    return pixels


def layout(memory: MemoryImage, base: int, values: list[int]) -> int:
    """Store ``values`` at ``base`` and return the next free aligned address."""
    end = memory.write_array(base, values)
    # Keep regions 64-byte aligned so arrays start on fresh cache lines.
    return (end + 63) & ~63
