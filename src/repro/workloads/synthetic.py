"""Statistical (synthetic) trace generation.

The paper's related-work section discusses statistical simulation [Eeckhout
et al.; Oskin et al.]: generating a synthetic instruction trace from a set of
program statistics.  This module provides that capability as an extension of
the workload suite.  It is useful for two things:

* stress-testing the mechanistic model and the detailed simulator on
  workloads with *controlled* characteristics (exact instruction mix,
  dependency-distance distribution, branch behaviour, memory footprint), and
* generating corner cases the hand-written kernels do not cover (e.g. very
  long dependency distances, extreme branch misprediction rates).

The generated object is a :class:`~repro.trace.trace.Trace`, so everything
downstream (profiler, analytical model, pipeline simulators) consumes it
exactly like a trace produced by the functional simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.trace import INSTR_BYTES, DynamicInstruction, Trace

#: Registers available to the generator (r0 is the zero register, excluded).
_NUM_REGS = 31


@dataclass(frozen=True)
class SyntheticWorkloadSpec:
    """Statistical description of a synthetic workload.

    Fractions need not sum to one; the remainder becomes plain ALU work.
    ``dependency_distances`` maps distance -> weight and is sampled for every
    instruction that has a register source.
    """

    name: str = "synthetic"
    instructions: int = 20_000
    load_fraction: float = 0.2
    store_fraction: float = 0.08
    multiply_fraction: float = 0.02
    divide_fraction: float = 0.002
    branch_fraction: float = 0.12
    branch_taken_rate: float = 0.6
    #: Probability that a branch follows a fixed (learnable) pattern rather
    #: than being random: 1.0 means perfectly predictable loop-like branches.
    branch_predictability: float = 0.9
    dependency_distances: dict[int, float] = field(
        default_factory=lambda: {1: 0.35, 2: 0.25, 3: 0.15, 4: 0.10, 8: 0.10, 16: 0.05}
    )
    #: Size of the synthetic static code footprint, in instructions.
    static_code_size: int = 2_000
    #: Data working-set size in bytes; addresses are drawn from it.
    data_footprint_bytes: int = 64 * 1024
    #: Fraction of memory accesses that stream sequentially (the rest are
    #: uniform random within the footprint).
    streaming_fraction: float = 0.7
    seed: int = 2012

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction + self.store_fraction + self.multiply_fraction
            + self.divide_fraction + self.branch_fraction
        )
        if fractions > 1.0:
            raise ValueError("instruction class fractions exceed 1.0")
        for value in (self.load_fraction, self.store_fraction, self.multiply_fraction,
                      self.divide_fraction, self.branch_fraction,
                      self.branch_taken_rate, self.branch_predictability,
                      self.streaming_fraction):
            if not 0.0 <= value <= 1.0:
                raise ValueError("fractions and rates must lie in [0, 1]")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.static_code_size <= 0:
            raise ValueError("static_code_size must be positive")
        if self.data_footprint_bytes <= 0:
            raise ValueError("data_footprint_bytes must be positive")
        if not self.dependency_distances:
            raise ValueError("dependency_distances must not be empty")
        if any(d < 1 for d in self.dependency_distances):
            raise ValueError("dependency distances start at 1")


class SyntheticTraceGenerator:
    """Generates dynamic instruction traces matching a statistical spec."""

    def __init__(self, spec: SyntheticWorkloadSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def _choose_class(self, rng: random.Random) -> str:
        spec = self.spec
        draw = rng.random()
        for kind, fraction in (
            ("load", spec.load_fraction),
            ("store", spec.store_fraction),
            ("mul", spec.multiply_fraction),
            ("div", spec.divide_fraction),
            ("branch", spec.branch_fraction),
        ):
            if draw < fraction:
                return kind
            draw -= fraction
        return "alu"

    def _sample_distance(self, rng: random.Random) -> int:
        distances = list(self.spec.dependency_distances)
        weights = [self.spec.dependency_distances[d] for d in distances]
        return rng.choices(distances, weights=weights, k=1)[0]

    def _memory_address(self, rng: random.Random, cursor: int) -> tuple[int, int]:
        """Return (address, new streaming cursor)."""
        spec = self.spec
        base = 0x100000
        if rng.random() < spec.streaming_fraction:
            address = base + cursor
            cursor = (cursor + 4) % spec.data_footprint_bytes
        else:
            address = base + 4 * rng.randrange(spec.data_footprint_bytes // 4)
        return address, cursor

    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        spec = self.spec
        rng = random.Random(spec.seed)
        records: list[DynamicInstruction] = []
        cursor = 0
        # The synthetic program walks a static code loop so that the
        # instruction-cache behaviour is realistic (a hot loop of
        # ``static_code_size`` instructions re-executed until the budget runs
        # out).
        static_pc = 0
        # Direction chosen once per static branch location: history-based
        # predictors learn these, so ``branch_predictability`` controls the
        # achievable prediction accuracy while the overall taken rate stays
        # at ``branch_taken_rate``.
        pc_bias: dict[int, bool] = {}

        for seq in range(spec.instructions):
            kind = self._choose_class(rng)
            # Destination register: rotating allocation guarantees the value
            # written ``d`` instructions ago still lives in a unique register
            # for any d < _NUM_REGS, so dependency distances are exact.
            dest = 1 + (seq % _NUM_REGS)
            distance = min(self._sample_distance(rng), seq) if seq else 0
            source = 1 + ((seq - distance) % _NUM_REGS) if distance else 0

            pc = (static_pc % spec.static_code_size) * INSTR_BYTES
            mem_addr = None
            taken = None
            next_static_pc = static_pc + 1

            if kind == "load":
                mem_addr, cursor = self._memory_address(rng, cursor)
                instruction = Instruction(Opcode.LW, dest=dest, src1=source)
            elif kind == "store":
                mem_addr, cursor = self._memory_address(rng, cursor)
                instruction = Instruction(Opcode.SW, src1=source, src2=source)
            elif kind == "mul":
                instruction = Instruction(Opcode.MUL, dest=dest, src1=source, src2=source)
            elif kind == "div":
                instruction = Instruction(Opcode.DIV, dest=dest, src1=source, src2=source)
            elif kind == "branch":
                predictable = rng.random() < spec.branch_predictability
                if predictable:
                    # Predictable branches always go the same way at a given
                    # pc; the per-pc direction is drawn once with the
                    # specified taken rate.
                    if pc not in pc_bias:
                        pc_bias[pc] = rng.random() < spec.branch_taken_rate
                    taken = pc_bias[pc]
                else:
                    # Unpredictable branches flip per execution (same overall
                    # taken rate, but no learnable pattern).
                    taken = rng.random() < spec.branch_taken_rate
                instruction = Instruction(Opcode.BNE, src1=source, src2=0, target="loop")
            else:
                instruction = Instruction(Opcode.ADD, dest=dest, src1=source, src2=source)

            records.append(
                DynamicInstruction(
                    seq=seq,
                    pc=pc,
                    instruction=instruction,
                    mem_addr=mem_addr,
                    taken=taken,
                    next_pc=(next_static_pc % spec.static_code_size) * INSTR_BYTES,
                )
            )
            static_pc = next_static_pc

        return Trace(records, name=spec.name)


def generate_synthetic_trace(spec: SyntheticWorkloadSpec | None = None) -> Trace:
    """Convenience wrapper: generate a trace from ``spec`` (or the defaults)."""
    return SyntheticTraceGenerator(spec if spec is not None else SyntheticWorkloadSpec()).generate()
