"""Statistical (synthetic) trace generation.

The paper's related-work section discusses statistical simulation [Eeckhout
et al.; Oskin et al.]: generating a synthetic instruction trace from a set of
program statistics.  This module provides that capability as an extension of
the workload suite.  It is useful for two things:

* stress-testing the mechanistic model and the detailed simulator on
  workloads with *controlled* characteristics (exact instruction mix,
  dependency-distance distribution, branch behaviour, memory footprint), and
* generating corner cases the hand-written kernels do not cover (e.g. very
  long dependency distances, extreme branch misprediction rates).

The generated object is a :class:`~repro.trace.trace.Trace`, so everything
downstream (profiler, analytical model, pipeline simulators) consumes it
exactly like a trace produced by the functional simulator.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.trace import (
    INSTR_BYTES,
    OP_CLASS_IDS,
    DynamicInstruction,
    Trace,
)

#: Registers available to the generator (r0 is the zero register, excluded).
_NUM_REGS = 31


@dataclass(frozen=True)
class SyntheticWorkloadSpec:
    """Statistical description of a synthetic workload.

    Fractions need not sum to one; the remainder becomes plain ALU work.
    ``dependency_distances`` maps distance -> weight and is sampled for every
    instruction that has a register source.
    """

    name: str = "synthetic"
    instructions: int = 20_000
    load_fraction: float = 0.2
    store_fraction: float = 0.08
    multiply_fraction: float = 0.02
    divide_fraction: float = 0.002
    branch_fraction: float = 0.12
    branch_taken_rate: float = 0.6
    #: Probability that a branch follows a fixed (learnable) pattern rather
    #: than being random: 1.0 means perfectly predictable loop-like branches.
    branch_predictability: float = 0.9
    dependency_distances: dict[int, float] = field(
        default_factory=lambda: {1: 0.35, 2: 0.25, 3: 0.15, 4: 0.10, 8: 0.10, 16: 0.05}
    )
    #: Size of the synthetic static code footprint, in instructions.
    static_code_size: int = 2_000
    #: Data working-set size in bytes; addresses are drawn from it.
    data_footprint_bytes: int = 64 * 1024
    #: Fraction of memory accesses that stream sequentially (the rest are
    #: uniform random within the footprint).
    streaming_fraction: float = 0.7
    seed: int = 2012

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction + self.store_fraction + self.multiply_fraction
            + self.divide_fraction + self.branch_fraction
        )
        if fractions > 1.0:
            raise ValueError("instruction class fractions exceed 1.0")
        for value in (self.load_fraction, self.store_fraction, self.multiply_fraction,
                      self.divide_fraction, self.branch_fraction,
                      self.branch_taken_rate, self.branch_predictability,
                      self.streaming_fraction):
            if not 0.0 <= value <= 1.0:
                raise ValueError("fractions and rates must lie in [0, 1]")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.static_code_size <= 0:
            raise ValueError("static_code_size must be positive")
        if self.data_footprint_bytes <= 0:
            raise ValueError("data_footprint_bytes must be positive")
        if not self.dependency_distances:
            raise ValueError("dependency_distances must not be empty")
        if any(d < 1 for d in self.dependency_distances):
            raise ValueError("dependency distances start at 1")


class SyntheticTraceGenerator:
    """Generates dynamic instruction traces matching a statistical spec."""

    def __init__(self, spec: SyntheticWorkloadSpec):
        self.spec = spec
        # Static instructions interned by value: the generator materializes
        # a fresh Instruction per dynamic record, but identical ones resolve
        # to one shared object, so the statics table stays proportional to
        # the register/opcode combinations, not the trace length — the
        # property streamed (scaled) generation depends on.
        self._intern: dict[Instruction, Instruction] = {}

    # ------------------------------------------------------------------
    def _choose_class(self, rng: random.Random) -> str:
        spec = self.spec
        draw = rng.random()
        for kind, fraction in (
            ("load", spec.load_fraction),
            ("store", spec.store_fraction),
            ("mul", spec.multiply_fraction),
            ("div", spec.divide_fraction),
            ("branch", spec.branch_fraction),
        ):
            if draw < fraction:
                return kind
            draw -= fraction
        return "alu"

    def _sample_distance(self, rng: random.Random) -> int:
        distances = list(self.spec.dependency_distances)
        weights = [self.spec.dependency_distances[d] for d in distances]
        return rng.choices(distances, weights=weights, k=1)[0]

    def _memory_address(self, rng: random.Random, cursor: int) -> tuple[int, int]:
        """Return (address, new streaming cursor)."""
        spec = self.spec
        base = 0x100000
        if rng.random() < spec.streaming_fraction:
            address = base + cursor
            cursor = (cursor + 4) % spec.data_footprint_bytes
        else:
            address = base + 4 * rng.randrange(spec.data_footprint_bytes // 4)
        return address, cursor

    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        return Trace(self._records(self.spec.instructions),
                     name=self.spec.name)

    def generate_store(self, path, *, scale: int = 1,
                       chunk_length: int = 65536):
        """Stream ``scale * spec.instructions`` records into a spill store.

        Never holds more than one chunk of columns in memory: records are
        packed straight into column arrays and flushed through a
        :class:`~repro.trace.store.TraceStoreWriter` every ``chunk_length``
        rows, with the statics table interned once across the whole stream
        (each flushed chunk carries the table as of its flush, which is the
        prefix-consistent layout the store's manifest expects).  This is
        how 100–1000x workloads are produced without 100–1000x memory.
        """
        from repro.trace.store import TraceStoreWriter
        from repro.trace.trace_schema import NO_VALUE

        if scale < 1:
            raise ValueError("scale must be at least 1")
        spec = self.spec
        total = spec.instructions * scale
        writer = TraceStoreWriter(path, name=spec.name,
                                  chunk_length=chunk_length)
        statics: list[Instruction] = []
        slots: dict[Instruction, int] = {}

        def new_columns() -> dict:
            return {
                "pcs": array("q"), "next_pcs": array("q"),
                "mem_addrs": array("q"), "op_classes": array("b"),
                "taken": array("b"), "static_index": array("q"),
            }

        columns = new_columns()
        start = 0
        for dyn in self._records(total):
            instruction = dyn.instruction
            slot = slots.get(instruction)
            if slot is None:
                slot = len(statics)
                slots[instruction] = slot
                statics.append(instruction)
            columns["pcs"].append(dyn.pc)
            columns["next_pcs"].append(
                NO_VALUE if dyn.next_pc is None else dyn.next_pc)
            if dyn.mem_addr is not None:
                columns["mem_addrs"].append(dyn.mem_addr)
            elif instruction.is_memory:
                columns["mem_addrs"].append(0)
            else:
                columns["mem_addrs"].append(NO_VALUE)
            columns["op_classes"].append(OP_CLASS_IDS[instruction.op_class])
            columns["taken"].append(
                NO_VALUE if dyn.taken is None else int(dyn.taken))
            columns["static_index"].append(slot)
            if len(columns["pcs"]) == chunk_length:
                writer.append(Trace.from_columns(
                    statics=tuple(statics), name=spec.name,
                    seq_start=start, **columns))
                start += chunk_length
                columns = new_columns()
        if len(columns["pcs"]):
            writer.append(Trace.from_columns(
                statics=tuple(statics), name=spec.name,
                seq_start=start, **columns))
        return writer.finalize()

    def _records(self, total: int):
        """Yield ``total`` dynamic records (bounded state, any length)."""
        spec = self.spec
        rng = random.Random(spec.seed)
        cursor = 0
        # The synthetic program walks a static code loop so that the
        # instruction-cache behaviour is realistic (a hot loop of
        # ``static_code_size`` instructions re-executed until the budget runs
        # out).
        static_pc = 0
        # Direction chosen once per static branch location: history-based
        # predictors learn these, so ``branch_predictability`` controls the
        # achievable prediction accuracy while the overall taken rate stays
        # at ``branch_taken_rate``.
        pc_bias: dict[int, bool] = {}

        for seq in range(total):
            kind = self._choose_class(rng)
            # Destination register: rotating allocation guarantees the value
            # written ``d`` instructions ago still lives in a unique register
            # for any d < _NUM_REGS, so dependency distances are exact.
            dest = 1 + (seq % _NUM_REGS)
            distance = min(self._sample_distance(rng), seq) if seq else 0
            source = 1 + ((seq - distance) % _NUM_REGS) if distance else 0

            pc = (static_pc % spec.static_code_size) * INSTR_BYTES
            mem_addr = None
            taken = None
            next_static_pc = static_pc + 1

            if kind == "load":
                mem_addr, cursor = self._memory_address(rng, cursor)
                instruction = Instruction(Opcode.LW, dest=dest, src1=source)
            elif kind == "store":
                mem_addr, cursor = self._memory_address(rng, cursor)
                instruction = Instruction(Opcode.SW, src1=source, src2=source)
            elif kind == "mul":
                instruction = Instruction(Opcode.MUL, dest=dest, src1=source, src2=source)
            elif kind == "div":
                instruction = Instruction(Opcode.DIV, dest=dest, src1=source, src2=source)
            elif kind == "branch":
                predictable = rng.random() < spec.branch_predictability
                if predictable:
                    # Predictable branches always go the same way at a given
                    # pc; the per-pc direction is drawn once with the
                    # specified taken rate.
                    if pc not in pc_bias:
                        pc_bias[pc] = rng.random() < spec.branch_taken_rate
                    taken = pc_bias[pc]
                else:
                    # Unpredictable branches flip per execution (same overall
                    # taken rate, but no learnable pattern).
                    taken = rng.random() < spec.branch_taken_rate
                instruction = Instruction(Opcode.BNE, src1=source, src2=0, target="loop")
            else:
                instruction = Instruction(Opcode.ADD, dest=dest, src1=source, src2=source)

            yield DynamicInstruction(
                seq=seq,
                pc=pc,
                instruction=self._intern.setdefault(instruction, instruction),
                mem_addr=mem_addr,
                taken=taken,
                next_pc=(next_static_pc % spec.static_code_size) * INSTR_BYTES,
            )
            static_pc = next_static_pc


def generate_synthetic_trace(spec: SyntheticWorkloadSpec | None = None) -> Trace:
    """Convenience wrapper: generate a trace from ``spec`` (or the defaults)."""
    return SyntheticTraceGenerator(spec if spec is not None else SyntheticWorkloadSpec()).generate()


def generate_synthetic_store(path, spec: SyntheticWorkloadSpec | None = None,
                             *, scale: int = 1, chunk_length: int = 65536):
    """Stream a (possibly scaled) synthetic trace into a spill store at ``path``.

    ``scale`` multiplies ``spec.instructions``; peak memory stays bounded by
    one ``chunk_length`` chunk regardless of scale.  Returns the opened
    :class:`~repro.trace.trace.ChunkedTrace` backed by the store.
    """
    generator = SyntheticTraceGenerator(
        spec if spec is not None else SyntheticWorkloadSpec())
    return generator.generate_store(path, scale=scale,
                                    chunk_length=chunk_length)
