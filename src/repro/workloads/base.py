"""Workload abstraction shared by all kernels."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.trace.functional import FunctionalSimulator, MemoryImage
from repro.trace.trace import Trace


class WorkloadBuildError(Exception):
    """Raised when a workload cannot be constructed or executed."""


@dataclass
class Workload:
    """A runnable benchmark: a program plus its input data.

    A workload pairs a static :class:`~repro.isa.program.Program` with the
    :class:`~repro.trace.functional.MemoryImage` holding its input data.  The
    dynamic trace is produced lazily by :meth:`trace` and cached, because the
    same trace is consumed by the profiler, the cache and branch simulators
    and the detailed pipeline simulators.
    """

    name: str
    program: Program
    memory: MemoryImage
    category: str = "misc"
    description: str = ""
    max_instructions: int = 2_000_000
    _trace: Trace | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_trace(cls, trace: Trace) -> "Workload":
        """A trace-only workload (no program or memory image).

        Used by the session runtime when a trace comes out of the artifact
        cache: everything downstream of compilation — profilers, models,
        detailed simulators — consumes only the dynamic trace.  Operations
        that need the static program (``with_program``, ``trace(force=True)``)
        raise :class:`WorkloadBuildError` instead of failing obscurely.
        """
        workload = cls(name=trace.name, program=None, memory=None)
        workload._trace = trace
        return workload

    @property
    def is_trace_only(self) -> bool:
        return self.program is None

    def trace(self, force: bool = False) -> Trace:
        """Execute the workload functionally and return its dynamic trace."""
        if (self._trace is None or force) and self.is_trace_only:
            raise WorkloadBuildError(
                f"workload {self.name!r} is trace-only (loaded from the "
                "artifact cache) and cannot re-run its program"
            )
        if self._trace is None or force:
            simulator = FunctionalSimulator(
                self.program,
                # The functional run mutates data memory; keep the pristine
                # image so the workload can be re-run deterministically.
                memory=self.memory.copy(),
                max_instructions=self.max_instructions,
            )
            try:
                self._trace = simulator.run()
            except Exception as exc:  # pragma: no cover - defensive
                raise WorkloadBuildError(f"workload {self.name!r} failed: {exc}") from exc
            self._trace.name = self.name
        return self._trace

    @property
    def dynamic_instruction_count(self) -> int:
        return len(self.trace())

    def with_program(self, program: Program, suffix: str) -> "Workload":
        """Return a copy of this workload running a transformed program.

        Used by the compiler passes: the data stays the same, only the code
        changes (e.g. ``sha`` → ``sha.unroll``).
        """
        if self.is_trace_only:
            raise WorkloadBuildError(
                f"workload {self.name!r} is trace-only (loaded from the "
                "artifact cache); rebuild it from source to transform it"
            )
        return Workload(
            name=f"{self.name}.{suffix}",
            program=program,
            memory=self.memory.copy(),
            category=self.category,
            description=self.description,
            max_instructions=self.max_instructions,
        )
