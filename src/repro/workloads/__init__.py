"""Workloads: MiBench-like and SPEC-like kernels plus compiler passes.

The paper evaluates its model on 19 MiBench benchmarks and a handful of
memory-intensive SPEC CPU2006 benchmarks.  Neither suite (nor the ARM cross
compiler and M5 functional simulator used to run them) is available offline,
so this package provides kernels written against the in-repo ISA whose
algorithmic skeletons mirror the original benchmarks: hashing for ``sha``,
shortest-path relaxation for ``dijkstra``, quicksort for ``qsort``,
error-diffusion dithering for ``tiffdither`` and so on — stand-ins that
preserve each original's instruction mix and memory behaviour rather than
its full functionality.

Public entry points:

* :func:`repro.workloads.mibench.mibench_suite` — the 19 MiBench-like workloads.
* :func:`repro.workloads.spec.spec_suite` — the SPEC-like memory-intensive workloads.
* :func:`get_workload` — look up any workload by name.
* :mod:`repro.workloads.compiler` — instruction scheduling and loop unrolling
  passes used by the compiler-optimization case study (Figure 8).
"""

from repro.workloads.base import Workload, WorkloadBuildError
from repro.workloads.registry import (
    all_workload_names,
    get_workload,
    mibench_suite,
    spec_suite,
)
from repro.workloads.synthetic import (
    SyntheticTraceGenerator,
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)

__all__ = [
    "Workload",
    "WorkloadBuildError",
    "get_workload",
    "all_workload_names",
    "mibench_suite",
    "spec_suite",
    "SyntheticWorkloadSpec",
    "SyntheticTraceGenerator",
    "generate_synthetic_trace",
]
