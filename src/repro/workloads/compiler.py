"""Compiler passes for the compiler-optimization case study (Figure 8).

The paper compares three code generation strategies on the same benchmarks:

* ``-O3 -fno-schedule-insns`` — no instruction scheduling,
* ``-O3``                     — with instruction scheduling,
* ``-O3 -funroll-loops``      — scheduling plus loop unrolling.

The kernels in :mod:`repro.workloads.kernels` are written naturally (dependent
instructions sit next to each other), which corresponds to the *unscheduled*
variant.  This module provides two genuine IR-level passes over
:class:`~repro.isa.program.Program` objects:

* :class:`InstructionScheduler` — a list scheduler that reorders instructions
  inside each basic block to stretch producer-consumer distances while
  honouring register and memory dependences;
* :class:`LoopUnroller` — unrolls innermost counted loops whose trip count is
  statically known and divisible by the unroll factor (otherwise the loop is
  left untouched), removing the intermediate back edge.

:func:`optimization_variants` packages the three variants for a workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.workloads.base import Workload


# ----------------------------------------------------------------------------
# Instruction scheduling.
# ----------------------------------------------------------------------------
def _block_dependences(instructions: list[Instruction]) -> list[set[int]]:
    """Return, per instruction, the set of in-block predecessor indices.

    Edges cover register RAW/WAR/WAW dependences plus conservative memory
    ordering: stores are ordered against all other memory operations, loads
    may be reordered freely with respect to each other.
    """
    predecessors: list[set[int]] = [set() for _ in instructions]
    last_writer: dict[int, int] = {}
    last_readers: dict[int, list[int]] = {}
    last_store: int | None = None
    last_memory_ops: list[int] = []

    for index, instruction in enumerate(instructions):
        # Register dependences.
        for source in instruction.src_regs():
            if source in last_writer:
                predecessors[index].add(last_writer[source])
        for dest in instruction.dest_regs():
            if dest in last_writer:
                predecessors[index].add(last_writer[dest])
            for reader in last_readers.get(dest, []):
                predecessors[index].add(reader)
        # Memory ordering.
        if instruction.is_store:
            for memory_op in last_memory_ops:
                predecessors[index].add(memory_op)
        elif instruction.is_load and last_store is not None:
            predecessors[index].add(last_store)
        # Bookkeeping.
        for source in instruction.src_regs():
            last_readers.setdefault(source, []).append(index)
        for dest in instruction.dest_regs():
            last_writer[dest] = index
            last_readers[dest] = []
        if instruction.is_store:
            last_store = index
        if instruction.is_memory:
            last_memory_ops.append(index)
        predecessors[index].discard(index)
    return predecessors


class InstructionScheduler:
    """Greedy list scheduler that spreads dependent instructions apart."""

    def schedule_block(self, instructions: list[Instruction]) -> list[Instruction]:
        """Reorder one basic block (the trailing control instruction stays last)."""
        if len(instructions) <= 2:
            return list(instructions)

        trailing: list[Instruction] = []
        body = list(instructions)
        # The terminating control instruction (or HALT) is a scheduling
        # barrier and keeps its position at the end of the block.
        if body and (body[-1].is_control or body[-1].opcode is Opcode.HALT):
            trailing = [body.pop()]
        if not body:
            return list(instructions)

        predecessors = _block_dependences(body)
        successors: list[set[int]] = [set() for _ in body]
        for index, preds in enumerate(predecessors):
            for pred in preds:
                successors[pred].add(index)

        remaining_preds = [len(preds) for preds in predecessors]
        ready = [index for index, count in enumerate(remaining_preds) if count == 0]
        scheduled_position: dict[int, int] = {}
        order: list[int] = []

        while ready:
            # Prefer the instruction whose producers were scheduled longest
            # ago (maximising producer-consumer distance); break ties by
            # original program order to keep the pass deterministic.
            def priority(candidate: int) -> tuple[int, int]:
                producers = predecessors[candidate]
                if not producers:
                    distance = len(body)
                else:
                    distance = len(order) - max(scheduled_position[p] for p in producers)
                return (distance, -candidate)

            chosen = max(ready, key=priority)
            ready.remove(chosen)
            scheduled_position[chosen] = len(order)
            order.append(chosen)
            for successor in successors[chosen]:
                remaining_preds[successor] -= 1
                if remaining_preds[successor] == 0:
                    ready.append(successor)

        if len(order) != len(body):  # pragma: no cover - defensive
            raise RuntimeError("scheduler failed to order all instructions")
        return [body[index] for index in order] + trailing

    def run(self, program: Program) -> Program:
        """Schedule every basic block of ``program``."""
        blocks = program.basic_blocks()
        new_instructions: list[Instruction] = []
        new_labels: dict[str, int] = {}
        index_to_labels: dict[int, list[str]] = {}
        for label, index in program.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        for block in blocks:
            for label in index_to_labels.get(block.start, []):
                new_labels[label] = len(new_instructions)
            block_instructions = program.instructions[block.start:block.end]
            new_instructions.extend(self.schedule_block(block_instructions))
        scheduled = Program(
            instructions=new_instructions,
            labels=new_labels,
            name=f"{program.name}.sched",
        )
        scheduled.validate()
        return scheduled


# ----------------------------------------------------------------------------
# Loop unrolling.
# ----------------------------------------------------------------------------
@dataclass(frozen=True)
class _CountedLoop:
    """An innermost counted loop eligible for unrolling."""

    head: int              # index of the first body instruction (label target)
    branch: int            # index of the backward conditional branch
    label: str
    counter: int           # counter register
    step: int               # per-iteration increment of the counter
    trip_count: int


class LoopUnroller:
    """Unrolls innermost counted loops with statically known trip counts."""

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise ValueError("unroll factor must be at least 2")
        self.factor = factor

    # ------------------------------------------------------------------
    def _find_loops(self, program: Program) -> list[_CountedLoop]:
        loops = []
        label_targets = {
            instruction.target
            for instruction in program.instructions
            if instruction.is_control and instruction.target is not None
        }
        for branch_index, branch in enumerate(program.instructions):
            if not branch.is_branch or branch.target is None:
                continue
            head = program.labels.get(branch.target)
            if head is None or head >= branch_index:
                continue  # not a backward branch
            body = program.instructions[head:branch_index]
            # The body must be straight-line: no other control flow and no
            # other label inside that is branched to from anywhere.
            if any(instruction.is_control for instruction in body):
                continue
            inner_labels = {
                label
                for label, position in program.labels.items()
                if head < position <= branch_index and label != branch.target
            }
            if inner_labels & label_targets:
                continue
            loop = self._analyse_counted_loop(program, head, branch_index, branch)
            if loop is not None:
                loops.append(loop)
        return loops

    def _analyse_counted_loop(self, program: Program, head: int, branch_index: int,
                              branch: Instruction) -> _CountedLoop | None:
        """Recognise ``li counter, N`` ... ``addi counter, counter, step; bne counter, 0``."""
        body = program.instructions[head:branch_index]
        counter = branch.src1
        if counter is None:
            return None
        # Exactly one in-body update of the counter, of the form addi c, c, step.
        updates = [
            instruction
            for instruction in body
            if counter in instruction.dest_regs()
        ]
        if len(updates) != 1:
            return None
        update = updates[0]
        if update.opcode is not Opcode.ADDI or update.src1 != counter:
            return None
        step = update.imm
        if step == 0:
            return None
        # The loop must terminate by comparing the counter against zero
        # (bne counter, r0) or against a statically known bound (blt/bge with
        # an li-defined register); we only handle the common bne-to-zero form
        # plus blt against an li-defined bound.
        initial = self._reaching_li(program, head, counter)
        if initial is None:
            return None
        if branch.opcode is Opcode.BNE and (branch.src2 in (None, 0)):
            if step >= 0:
                return None
            trip_count = -(-initial // -step) if initial % -step == 0 else None
            if initial % -step != 0:
                return None
            trip_count = initial // -step
        elif branch.opcode is Opcode.BLT:
            bound = self._reaching_li(program, head, branch.src2)
            if bound is None or step <= 0:
                return None
            span = bound - initial
            if span <= 0 or span % step != 0:
                return None
            trip_count = span // step
        else:
            return None
        if trip_count is None or trip_count < self.factor:
            return None
        if trip_count % self.factor != 0:
            return None
        return _CountedLoop(
            head=head,
            branch=branch_index,
            label=branch.target,
            counter=counter,
            step=step,
            trip_count=trip_count,
        )

    @staticmethod
    def _reaching_li(program: Program, loop_head: int, register: int | None) -> int | None:
        """Find the constant loaded into ``register`` before the loop, if unique.

        Walks backwards from the loop head; gives up if the register is
        written by anything other than a single ``li`` before the loop.
        """
        if register is None:
            return None
        for index in range(loop_head - 1, -1, -1):
            instruction = program.instructions[index]
            if register in instruction.dest_regs():
                if instruction.opcode is Opcode.LI:
                    return instruction.imm
                return None
        return None

    # ------------------------------------------------------------------
    def run(self, program: Program) -> Program:
        """Unroll every eligible innermost loop by ``factor``."""
        loops = self._find_loops(program)
        if not loops:
            return program.copy()
        # Process from the end so earlier indices stay valid.
        loops.sort(key=lambda loop: loop.head, reverse=True)

        instructions = list(program.instructions)
        labels = dict(program.labels)

        for loop in loops:
            body = instructions[loop.head:loop.branch]
            branch = instructions[loop.branch]
            unrolled = []
            for _ in range(self.factor):
                unrolled.extend(body)
            unrolled.append(branch)
            old_span = loop.branch - loop.head + 1
            instructions[loop.head:loop.branch + 1] = unrolled
            delta = len(unrolled) - old_span
            if delta:
                labels = {
                    label: (index + delta if index > loop.head else index)
                    for label, index in labels.items()
                }

        unrolled_program = Program(
            instructions=instructions,
            labels=labels,
            name=f"{program.name}.unroll{self.factor}",
        )
        unrolled_program.validate()
        return unrolled_program


# ----------------------------------------------------------------------------
# Packaging the paper's three compiler variants.
# ----------------------------------------------------------------------------
def optimization_variants(workload: Workload, unroll_factor: int = 2) -> dict[str, Workload]:
    """Return the ``nosched`` / ``O3`` / ``unroll`` variants of ``workload``.

    * ``nosched`` — the kernel as written (dependent instructions adjacent),
    * ``O3``      — instruction scheduling applied,
    * ``unroll``  — loop unrolling followed by instruction scheduling.

    ``workload`` must be the *unoptimized* kernel (``get_workload(name,
    optimize=False)``); passing an already-scheduled workload would make the
    ``nosched`` variant meaningless.
    """
    scheduler = InstructionScheduler()
    unroller = LoopUnroller(factor=unroll_factor)

    original = workload.program
    scheduled = scheduler.run(original)
    unrolled_then_scheduled = scheduler.run(unroller.run(original))

    return {
        "nosched": workload.with_program(original.copy(), "nosched"),
        "O3": workload.with_program(scheduled, "O3"),
        "unroll": workload.with_program(unrolled_then_scheduled, "unroll"),
    }
