"""Workload registry: name → builder lookup and suite definitions.

Workload builders live in the shared :class:`~repro.registry.Registry`
pattern: every builder is registered under its benchmark name with a
``suite`` metadata tag (``"mibench"``, ``"spec"``, or anything a plugin
chooses), and third-party workloads plug in without editing this module::

    from repro.workloads.registry import register_workload

    @register_workload("my_kernel", suite="custom")
    def build_my_kernel() -> Workload:
        ...

A registered workload is immediately addressable everywhere a workload
name is consumed: :func:`get_workload`, the experiment drivers, the
``repro.api`` evaluation facade and the CLI.
"""

from __future__ import annotations

from typing import Callable

from repro.registry import Registry
from repro.workloads.base import Workload
from repro.workloads.kernels import (
    automotive,
    consumer,
    network,
    office,
    security,
    speclike,
    telecom,
)

#: Registry of zero-argument builders returning a fresh :class:`Workload`.
WORKLOADS = Registry("workload")


def register_workload(name: str, *, suite: str = "misc",
                      aliases: tuple[str, ...] = ()):
    """Register a zero-argument workload builder under ``name``."""
    return WORKLOADS.register(name, aliases=aliases, suite=suite)


#: The 19 MiBench-like workloads evaluated in the paper (Figure 3).
MIBENCH_BUILDERS: dict[str, Callable[[], Workload]] = {
    "adpcm_c": telecom.build_adpcm_c,
    "adpcm_d": telecom.build_adpcm_d,
    "dijkstra": network.build_dijkstra,
    "gsm_c": telecom.build_gsm_c,
    "jpeg_c": consumer.build_jpeg_c,
    "jpeg_d": consumer.build_jpeg_d,
    "lame": consumer.build_lame,
    "patricia": network.build_patricia,
    "qsort": automotive.build_qsort,
    "rsynth": office.build_rsynth,
    "sha": security.build_sha,
    "stringsearch": office.build_stringsearch,
    "susan_c": automotive.build_susan_c,
    "susan_e": automotive.build_susan_e,
    "susan_s": automotive.build_susan_s,
    "tiff2bw": consumer.build_tiff2bw,
    "tiff2rgba": consumer.build_tiff2rgba,
    "tiffdither": consumer.build_tiffdither,
    "tiffmedian": consumer.build_tiffmedian,
}

#: SPEC CPU2006-like memory-intensive workloads (Figure 6).
SPEC_BUILDERS: dict[str, Callable[[], Workload]] = {
    "mcf_like": speclike.build_mcf_like,
    "libquantum_like": speclike.build_libquantum_like,
    "lbm_like": speclike.build_lbm_like,
    "milc_like": speclike.build_milc_like,
    "soplex_like": speclike.build_soplex_like,
    "bzip2_like": speclike.build_bzip2_like,
}

for _name, _builder in MIBENCH_BUILDERS.items():
    register_workload(_name, suite="mibench")(_builder)
for _name, _builder in SPEC_BUILDERS.items():
    register_workload(_name, suite="spec")(_builder)

#: Built workloads are cached because their traces are expensive to produce
#: and every experiment reuses the same dynamic instruction stream.
_CACHE: dict[tuple[str, bool], Workload] = {}


def _build(name: str, optimize: bool) -> Workload:
    workload = WORKLOADS.get(name)()
    if optimize:
        # The paper evaluates binaries compiled with -O3, i.e. *scheduled*
        # code.  The kernels are written naturally (dependent instructions
        # adjacent), which corresponds to -fno-schedule-insns, so the default
        # workload applies the library's list scheduler — the raw form stays
        # available via optimize=False (used by the compiler case study).
        from repro.workloads.compiler import InstructionScheduler

        scheduled = InstructionScheduler().run(workload.program)
        scheduled.name = workload.program.name
        workload = Workload(
            name=workload.name,
            program=scheduled,
            memory=workload.memory,
            category=workload.category,
            description=workload.description,
            max_instructions=workload.max_instructions,
        )
    return workload


def get_workload(name: str, use_cache: bool = True, optimize: bool = True) -> Workload:
    """Return the workload registered under ``name``.

    ``optimize=True`` (the default) returns the instruction-scheduled form of
    the kernel, mirroring the paper's use of ``-O3``-compiled binaries;
    ``optimize=False`` returns the kernel exactly as written (the
    ``-fno-schedule-insns`` equivalent used by the Figure 8 case study).

    Workload construction (and the functional-simulation trace) is cached per
    (name, optimize); pass ``use_cache=False`` to force a fresh instance, e.g.
    when the caller is going to mutate the program.
    """
    if name not in WORKLOADS:
        known = ", ".join(WORKLOADS.names())
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    name = WORKLOADS.canonical(name)
    if not use_cache:
        return _build(name, optimize)
    key = (name, optimize)
    if key not in _CACHE:
        _CACHE[key] = _build(name, optimize)
    return _CACHE[key]


def all_workload_names() -> list[str]:
    """All registered workload names (MiBench-like, SPEC-like and plugins)."""
    return WORKLOADS.names()


def suite_names(suite: str) -> list[str]:
    """Registered workload names belonging to ``suite`` (sorted)."""
    return WORKLOADS.names(suite=suite)


def _suite(suite: str, names: list[str] | None) -> list[Workload]:
    known = suite_names(suite)
    selected = names if names is not None else known
    unknown = [name for name in selected if name not in known]
    if unknown:
        raise KeyError(f"not {suite} workloads: {unknown}")
    return [get_workload(name) for name in selected]


def mibench_suite(names: list[str] | None = None) -> list[Workload]:
    """Return the MiBench-like suite (optionally restricted to ``names``)."""
    return _suite("mibench", names)


def spec_suite(names: list[str] | None = None) -> list[Workload]:
    """Return the SPEC-like suite (optionally restricted to ``names``)."""
    return _suite("spec", names)


def clear_cache() -> None:
    """Drop all cached workloads (mostly useful in tests)."""
    _CACHE.clear()


def __getattr__(name: str):
    # Deprecation shim: _ALL_BUILDERS was the pre-registry lookup table.
    if name == "_ALL_BUILDERS":
        import warnings

        warnings.warn(
            "_ALL_BUILDERS is deprecated; use the WORKLOADS registry "
            "(register_workload/get_workload/all_workload_names) instead",
            DeprecationWarning, stacklevel=2,
        )
        return {name: WORKLOADS.get(name) for name in WORKLOADS.names()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
