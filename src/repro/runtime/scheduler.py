"""Persistent process-pool sharding for session work.

The unit of parallelism is ``fn(session, item)`` where ``fn`` is a
module-level function (it is pickled by reference) and ``item`` a picklable
work description — typically a planned sweep group or a benchmark name.
Each worker process owns its own :class:`~repro.runtime.session.Session`
bound to the same cache directory as the parent, so traces and profiling
passes flow between processes through the on-disk artifact cache (or the
shared-memory data plane) rather than through pickled arguments.

The pool is **persistent and pre-warmed**: a session creates its
:class:`WorkerPool` once and reuses it for every subsequent ``map`` call,
so worker sessions keep their attached shared-memory segments, adopted
traces and warm :class:`~repro.profiler.single_pass_engine.SinglePassEngine`
state between batches — the second request a :mod:`repro.service` server
answers pays zero pool spawn, zero trace transport and zero repeated
profiling passes.  This module is the only place in the tree allowed to
construct a ``ProcessPoolExecutor`` (``make lint`` enforces it), which is
what makes the warm-pool guarantee checkable.

``session_map`` preserves item order and degrades to an inline loop for
``jobs=1`` (and for trivially small batches), which is what makes parallel
experiment output byte-identical to serial output.  Failure handling is
:func:`repro.resilience.containment.resilient_map`: a worker killed
mid-batch (OOM, SIGKILL) only voids the units still in flight; the pool
respawns with exponential backoff under a bounded crash budget, units
that repeatedly break the pool alone are quarantined, and a session whose
pool keeps dying trips a circuit breaker into serial in-process execution
(see :class:`~repro.resilience.containment.RetryPolicy`).
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable

from repro.obs import tracing
from repro.resilience import faults
from repro.resilience.containment import resilient_map, unit_label

#: The per-process session of pool workers (created by the initializer).
_WORKER_SESSION = None


def _worker_init(spec, parent_pid: int, dataplane_mode: str,
                 obs_config=None, faults_config=None) -> None:
    global _WORKER_SESSION
    from repro.runtime import dataplane

    # Workers run their shard inline: nested pools would oversubscribe.
    _WORKER_SESSION = spec.create(jobs=1)
    # Pin the data plane, span sink and fault plan the parent resolved
    # (spawned workers cannot rely on inherited module state) and watch
    # for the parent disappearing — an orphaned worker detaches its
    # segments and exits.
    dataplane.set_mode(dataplane_mode)
    tracing.apply_worker_config(obs_config)
    faults.apply_worker_config(faults_config)
    dataplane.start_parent_watch(parent_pid)


def _worker_call(payload):
    # Envelopes carry the parent's trace context (or None) so a worker's
    # spans parent under the span that dispatched the batch.
    fn, item, wire_ctx = payload
    faults.fire("worker.entry", key=unit_label(item))
    with tracing.attach(tracing.TraceContext.from_wire(wire_ctx)):
        return fn(_WORKER_SESSION, item)


class WorkerPool:
    """A long-lived process pool bound to one session spec.

    Wraps the sole ``ProcessPoolExecutor`` of the tree.  Workers are
    initialized once with their own session and the parent's data-plane
    mode, then reused across every batch until :meth:`close` — the
    "pre-warmed" half of the data plane refactor.
    """

    #: Pools constructed process-wide (the pool-churn regression tests
    #: assert this stays flat across warm service requests).
    created_total = 0

    def __init__(self, spec, jobs: int):
        from repro.runtime.dataplane import active_mode

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        type(self).created_total += 1
        self.spec = spec
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init,
            initargs=(spec, os.getpid(), active_mode(),
                      tracing.worker_config(), faults.worker_config()),
        )

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def _wire_context(self):
        ctx = tracing.current_context()
        return ctx.to_wire() if ctx else None

    def map(self, fn: Callable, items: list) -> list:
        if self._executor is None:
            raise RuntimeError("worker pool is closed")
        wire_ctx = self._wire_context()
        return list(self._executor.map(
            _worker_call, [(fn, item, wire_ctx) for item in items]
        ))

    def submit_all(self, fn: Callable, items: list) -> list[Future]:
        """One future per item (same order), so a worker crash only voids
        the units that had not finished — the containment layer's lever:
        completed futures keep their results across a ``BrokenExecutor``,
        pending ones raise it, which is what attributes the crash.
        """
        if self._executor is None:
            raise RuntimeError("worker pool is closed")
        wire_ctx = self._wire_context()
        return [self._executor.submit(_worker_call, (fn, item, wire_ctx))
                for item in items]

    def close(self) -> None:
        """Shut the workers down (idempotent); safe on a broken pool."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


def session_map(session, fn: Callable, items: Iterable) -> list:
    """Apply ``fn(session, item)`` over ``items``, sharding across processes.

    See :meth:`repro.runtime.session.Session.map` for the contract.  The
    session's persistent pool is created on first use and reused after;
    crashes are contained by :func:`~repro.resilience.containment.
    resilient_map` in strict mode — transient worker deaths are retried
    within budget, but any unit failure still raises (all-or-nothing),
    as a typed :class:`~repro.resilience.containment.PoolCrashError` when
    crash-attributed.
    """
    items = list(items)
    if session.jobs <= 1 or len(items) <= 1:
        return [fn(session, item) for item in items]
    return resilient_map(session, fn, items, strict=True)
