"""Persistent process-pool sharding for session work.

The unit of parallelism is ``fn(session, item)`` where ``fn`` is a
module-level function (it is pickled by reference) and ``item`` a picklable
work description — typically a planned sweep group or a benchmark name.
Each worker process owns its own :class:`~repro.runtime.session.Session`
bound to the same cache directory as the parent, so traces and profiling
passes flow between processes through the on-disk artifact cache (or the
shared-memory data plane) rather than through pickled arguments.

The pool is **persistent and pre-warmed**: a session creates its
:class:`WorkerPool` once and reuses it for every subsequent ``map`` call,
so worker sessions keep their attached shared-memory segments, adopted
traces and warm :class:`~repro.profiler.single_pass_engine.SinglePassEngine`
state between batches — the second request a :mod:`repro.service` server
answers pays zero pool spawn, zero trace transport and zero repeated
profiling passes.  This module is the only place in the tree allowed to
construct a ``ProcessPoolExecutor`` (``make lint`` enforces it), which is
what makes the warm-pool guarantee checkable.

``session_map`` preserves item order and degrades to an inline loop for
``jobs=1`` (and for trivially small batches), which is what makes parallel
experiment output byte-identical to serial output.  A worker killed
mid-batch (OOM, SIGKILL) breaks the executor; the map transparently
respawns the pool and retries the batch once, so a single crash costs
latency, not results.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable

from repro.obs import tracing

#: The per-process session of pool workers (created by the initializer).
_WORKER_SESSION = None


def _worker_init(spec, parent_pid: int, dataplane_mode: str,
                 obs_config=None) -> None:
    global _WORKER_SESSION
    from repro.runtime import dataplane

    # Workers run their shard inline: nested pools would oversubscribe.
    _WORKER_SESSION = spec.create(jobs=1)
    # Pin the data plane and span sink the parent resolved (spawned
    # workers cannot rely on inherited module state) and watch for the
    # parent disappearing — an orphaned worker detaches its segments and
    # exits.
    dataplane.set_mode(dataplane_mode)
    tracing.apply_worker_config(obs_config)
    dataplane.start_parent_watch(parent_pid)


def _worker_call(payload):
    # Envelopes carry the parent's trace context (or None) so a worker's
    # spans parent under the span that dispatched the batch.
    fn, item, wire_ctx = payload
    with tracing.attach(tracing.TraceContext.from_wire(wire_ctx)):
        return fn(_WORKER_SESSION, item)


class WorkerPool:
    """A long-lived process pool bound to one session spec.

    Wraps the sole ``ProcessPoolExecutor`` of the tree.  Workers are
    initialized once with their own session and the parent's data-plane
    mode, then reused across every batch until :meth:`close` — the
    "pre-warmed" half of the data plane refactor.
    """

    #: Pools constructed process-wide (the pool-churn regression tests
    #: assert this stays flat across warm service requests).
    created_total = 0

    def __init__(self, spec, jobs: int):
        from repro.runtime.dataplane import active_mode

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        type(self).created_total += 1
        self.spec = spec
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init,
            initargs=(spec, os.getpid(), active_mode(),
                      tracing.worker_config()),
        )

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def map(self, fn: Callable, items: list) -> list:
        if self._executor is None:
            raise RuntimeError("worker pool is closed")
        ctx = tracing.current_context()
        wire_ctx = ctx.to_wire() if ctx else None
        return list(self._executor.map(
            _worker_call, [(fn, item, wire_ctx) for item in items]
        ))

    def close(self) -> None:
        """Shut the workers down (idempotent); safe on a broken pool."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


def session_map(session, fn: Callable, items: Iterable) -> list:
    """Apply ``fn(session, item)`` over ``items``, sharding across processes.

    See :meth:`repro.runtime.session.Session.map` for the contract.  The
    session's persistent pool is created on first use and reused after;
    a batch that loses a worker to a crash is retried once on a fresh
    pool (same items, same order — results stay deterministic).
    """
    items = list(items)
    if session.jobs <= 1 or len(items) <= 1:
        return [fn(session, item) for item in items]
    try:
        return session.pool().map(fn, items)
    except BrokenExecutor:
        # A worker died mid-batch (crash/SIGKILL).  The executor is
        # unusable; respawn it and rerun the whole batch once.  Published
        # shared-memory segments belong to the parent and survive intact.
        session.reset_pool()
        return session.pool().map(fn, items)
