"""Process-pool sharding for session work.

The unit of parallelism is ``fn(session, item)`` where ``fn`` is a
module-level function (it is pickled by reference) and ``item`` a picklable
work description — typically a ``(benchmark, machine)`` pair or a benchmark
name.  Each worker process owns its own :class:`~repro.runtime.session.Session`
bound to the same cache directory as the parent, so traces and profiling
passes flow between processes through the on-disk artifact cache rather than
through pickled arguments.

``session_map`` preserves item order and degrades to an inline loop for
``jobs=1`` (and for trivially small batches), which is what makes parallel
experiment output byte-identical to serial output.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

#: The per-process session of pool workers (created by the initializer).
_WORKER_SESSION = None


def _worker_init(spec) -> None:
    global _WORKER_SESSION
    # Workers run their shard inline: nested pools would oversubscribe.
    _WORKER_SESSION = spec.create(jobs=1)


def _worker_call(payload):
    fn, item = payload
    return fn(_WORKER_SESSION, item)


def session_map(session, fn: Callable, items: Iterable) -> list:
    """Apply ``fn(session, item)`` over ``items``, sharding across processes.

    See :meth:`repro.runtime.session.Session.map` for the contract.
    """
    items = list(items)
    if session.jobs <= 1 or len(items) <= 1:
        return [fn(session, item) for item in items]
    workers = min(session.jobs, len(items))
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init, initargs=(session.spec,)
    ) as pool:
        return list(pool.map(_worker_call, [(fn, item) for item in items]))
