"""Session runtime: shared artifact cache, parallel scheduler and registry.

This package is the layer between the analytical core and the experiment
drivers:

* :mod:`repro.runtime.artifacts` — content-addressed on-disk cache for
  traces, program profiles and single-pass engine state;
* :mod:`repro.runtime.session` — the :class:`Session` owning workload
  compilation, trace generation and miss-profile reuse;
* :mod:`repro.runtime.scheduler` — persistent pre-warmed process-pool
  sharding of session work across workloads/configurations (``--jobs N``);
* :mod:`repro.runtime.dataplane` — zero-copy shared-memory trace
  transport (segments, refcounted registry, per-stage timings);
* :mod:`repro.runtime.registry` — the declarative ``@experiment`` registry
  the CLI is built on;
* :mod:`repro.runtime.result` / :mod:`repro.runtime.reporters` — the typed
  :class:`ExperimentResult` and its text/JSON/CSV renderers.
"""

from repro.runtime.artifacts import ArtifactCache
from repro.runtime.dataplane import (
    SegmentHandle,
    SegmentRegistry,
    StageTimings,
    attach_trace,
)
from repro.runtime.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    experiment,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.runtime.reporters import render, render_many
from repro.runtime.result import ExperimentResult
from repro.runtime.scheduler import WorkerPool, session_map
from repro.runtime.session import Session, SessionSpec, SessionStats, pooled_session

__all__ = [
    "ArtifactCache",
    "SegmentHandle",
    "SegmentRegistry",
    "StageTimings",
    "WorkerPool",
    "attach_trace",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "Session",
    "SessionSpec",
    "SessionStats",
    "experiment",
    "experiment_names",
    "get_experiment",
    "run_experiment",
    "render",
    "render_many",
    "pooled_session",
    "session_map",
]
