"""The experiment session: shared workloads, traces and profiling state.

A :class:`Session` is the single owner of everything the experiments used to
rebuild privately: workload compilation, functional-simulation traces,
machine-independent program profiles and the per-trace
:class:`~repro.profiler.single_pass_engine.SinglePassEngine` whose
cache-geometry histograms answer miss profiles for whole design spaces.  All
of it is memoized in process and — when the session is given a cache
directory — persisted through the content-addressed
:class:`~repro.runtime.artifacts.ArtifactCache`, so a trace is generated once
per machine, ever, and a second session against the same directory performs
zero workload compilations and zero trace generations.

Workload identity is ``(name, flags)`` where ``flags`` names the compiler
treatment (:data:`COMPILER_FLAGS`): ``"O3"`` is the instruction-scheduled
default the paper evaluates, ``"nosched"`` the kernel as written and
``"unroll"`` scheduling plus loop unrolling (the Figure 8 variants).

``session.map(fn, items)`` is the parallelism hook: with ``jobs > 1`` it
shards the items across a process pool whose workers run their own sessions
against the same cache directory (see :mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

import contextlib
import tempfile
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.machine import MachineConfig
from repro.obs.tracing import span
from repro.profiler.machine_stats import MissProfile
from repro.profiler.program import ProgramProfile, profile_program
from repro.profiler.single_pass_engine import ENGINE_SCHEMA_VERSION, SinglePassEngine
from repro.resilience.faults import InjectedFault
from repro.runtime.artifacts import MISSING, ArtifactCache
from repro.trace.trace import TRACE_SCHEMA_VERSION, Trace
from repro.workloads.base import Workload

#: Compiler treatments a session can build (the Figure 8 variants).
COMPILER_FLAGS = ("O3", "nosched", "unroll")

#: Version of the pickled :class:`ProgramProfile` payload.
PROGRAM_PROFILE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to rebuild an equivalent session in another process."""

    cache_dir: str | None = None
    jobs: int = 1

    def create(self, jobs: int | None = None) -> "Session":
        return Session(cache_dir=self.cache_dir,
                       jobs=self.jobs if jobs is None else jobs)


#: The session's work counters, in report order.
SESSION_EVENTS = (
    "workloads_compiled",
    "traces_generated",
    "trace_cache_hits",
    "engine_state_loads",
    "engine_state_saves",
    "miss_profiles_built",
    "interval_cache_hits",
    "interval_profiles_built",
    "cache_corruptions",
)


class SessionStats:
    """Work counters; the warm-cache tests assert the zeros directly.

    Historically a dataclass of eight ints; now a thin adapter over a
    :class:`~repro.obs.metrics.MetricsRegistry` counter family
    (``session_events_total{event=...}``) so the same numbers flow into
    the Prometheus exposition.  The fields stay plain attributes
    supporting ``stats.traces_generated += 1`` — each is a generated
    property whose setter installs the new running total.
    """

    __slots__ = ("_family",)

    def __init__(self, registry=None):
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        self._family = registry.counter(
            "session_events_total",
            "Session work counters: compilations, trace generations, "
            "cache hits, profile builds.",
            labels=("event",),
        )

    def as_dict(self) -> dict[str, int]:
        return {event: int(self._family.labels(event=event).value)
                for event in SESSION_EVENTS}


def _session_event_property(event: str) -> property:
    def _get(self) -> int:
        return int(self._family.labels(event=event).value)

    def _set(self, value: int) -> None:
        self._family.labels(event=event).set_total(value)

    return property(_get, _set)


for _event in SESSION_EVENTS:
    setattr(SessionStats, _event, _session_event_property(_event))
del _event


class _IntervalProfileCache:
    """Mapping facade over the artifact cache for warmed interval profiles.

    :func:`~repro.profiler.sampling.sample_evaluate` wants ``get`` +
    ``__setitem__`` keyed by a content address (warming-window digests,
    machine fingerprint, MLP window), so entries are shared across
    sampling rates, sessions and processes with no extra bookkeeping.
    """

    def __init__(self, cache: ArtifactCache):
        self._cache = cache

    def get(self, key: str):
        record = self._cache.load("interval", key=key)
        return None if record is MISSING else record

    def __setitem__(self, key: str, record) -> None:
        self._cache.store(record, "interval", key=key)


class Session:
    """Owns workload/trace/profile reuse for a batch of experiments."""

    def __init__(self, cache_dir=None, jobs: int = 1):
        from repro.obs.metrics import MetricsRegistry
        from repro.runtime.dataplane import StageTimings

        from repro.resilience.containment import PoolHealth, RetryPolicy

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = ArtifactCache(cache_dir)
        #: One registry holds every counter this session maintains —
        #: work counters and stage timings alike — so the service's
        #: Prometheus exposition can render it wholesale.
        self.metrics = MetricsRegistry()
        self.stats = SessionStats(self.metrics)
        #: Per-stage (ship/attach/profile/model/collect) wall time of every
        #: batch this session evaluated; surfaced in /v1/metrics and bench.
        self.stages = StageTimings(self.metrics)
        #: Crash accounting, circuit-breaker state and the quarantine list
        #: for this session's pooled maps (``resilience_events_total``).
        self.health = PoolHealth(self.metrics)
        #: Containment budgets (tests and the chaos drill override this).
        self.retry_policy = RetryPolicy()
        # Corrupt cache entries self-heal to misses; count each one.
        self.cache.on_corruption = self._record_cache_corruption
        #: The persistent worker pool (created on first sharded map).
        self._pool = None
        self._pool_finalizer = None
        #: Shared-memory segment registry (created on first publish).
        self._segments = None
        self._segments_finalizer = None
        #: (name, flags) -> SegmentHandle of published traces.
        self._segment_handles: dict[tuple[str, str], object] = {}
        #: Set when shared memory failed at runtime: fall back to payloads.
        self._dataplane_failed = False
        self._workloads: dict[tuple[str, str], Workload] = {}
        #: id(trace) -> (name, flags) for traces this session manages.
        self._trace_tokens: dict[int, tuple[str, str]] = {}
        #: (name, flags) -> engine pass_count at the last load/store, used to
        #: skip rewriting the persisted state when nothing new was computed.
        self._engine_synced: dict[tuple[str, str], int] = {}
        #: token -> (trace, profile); the trace reference pins id() stability.
        self._program_profiles: dict[object, tuple[Trace, ProgramProfile]] = {}
        self._miss_profiles: dict[tuple, tuple[Trace, MissProfile]] = {}
        #: In-memory interval-profile store used when no cache directory is
        #: configured (same content-addressed keys as the on-disk cache).
        self._interval_memory: dict[str, object] = {}

    @property
    def spec(self) -> SessionSpec:
        cache_dir = str(self.cache.root) if self.cache.enabled else None
        return SessionSpec(cache_dir=cache_dir, jobs=self.jobs)

    # ------------------------------------------------------------------
    # Workloads and traces.
    # ------------------------------------------------------------------
    def _trace_key_fields(self, name: str, flags: str) -> dict:
        return {
            "workload": name,
            "flags": flags,
            "trace_version": TRACE_SCHEMA_VERSION,
        }

    def _compile(self, name: str, flags: str) -> Workload:
        """Build the workload from source (the expensive, cache-miss path)."""
        from repro.workloads import get_workload
        from repro.workloads.compiler import optimization_variants

        self.stats.workloads_compiled += 1
        if flags == "O3":
            return get_workload(name, use_cache=False, optimize=True)
        raw = get_workload(name, use_cache=False, optimize=False)
        if flags == "nosched":
            return raw
        return optimization_variants(raw)[flags]

    def workload(self, name: str, flags: str = "O3") -> Workload:
        """The workload for ``(name, flags)``, with its trace ready.

        On an artifact-cache hit the returned workload is a trace-only shim
        (no program or memory image): everything downstream of compilation —
        the profilers, the models, the detailed simulators — consumes only
        the dynamic trace.
        """
        if flags not in COMPILER_FLAGS:
            raise ValueError(
                f"unknown compiler flags {flags!r}; expected one of {COMPILER_FLAGS}"
            )
        key = (name, flags)
        cached = self._workloads.get(key)
        if cached is not None:
            return cached

        fields = self._trace_key_fields(name, flags)
        columns = self.cache.load("trace", **fields)
        if columns is not MISSING:
            self.stats.trace_cache_hits += 1
            workload = Workload.from_trace(Trace.from_columns(**columns))
            trace = workload.trace()
        else:
            with span("session.trace_generate", workload=name, flags=flags):
                workload = self._compile(name, flags)
                trace = workload.trace()
            self.stats.traces_generated += 1
            self.cache.store(trace.columns(), "trace", **fields)

        self._workloads[key] = workload
        self._trace_tokens[id(trace)] = key
        return workload

    def workloads(self, names: Sequence[str], flags: str = "O3") -> list[Workload]:
        return [self.workload(name, flags) for name in names]

    def adopt_trace(self, name: str, flags: str, trace: Trace) -> Workload:
        """Register an externally supplied trace as ``(name, flags)``.

        The sweep planner ships already-generated traces to pool workers as
        raw column bytes (:meth:`~repro.trace.trace.Trace.to_payload`); the
        worker adopts the rebuilt trace here so every downstream memo
        (program profiles, engine passes, artifact-cache persistence) keys
        on the session-managed ``(name, flags)`` token — no compilation, no
        cache round trip.  A workload the session already holds wins.
        """
        if flags not in COMPILER_FLAGS:
            raise ValueError(
                f"unknown compiler flags {flags!r}; expected one of {COMPILER_FLAGS}"
            )
        key = (name, flags)
        cached = self._workloads.get(key)
        if cached is not None:
            return cached
        workload = Workload.from_trace(trace)
        self._workloads[key] = workload
        self._trace_tokens[id(trace)] = key
        return workload

    def has_workload(self, name: str, flags: str = "O3") -> bool:
        """Whether this session already holds ``(name, flags)`` in memory."""
        return (name, flags) in self._workloads

    def trace_payload(self, name: str, flags: str = "O3") -> dict | None:
        """Column bytes of an already-loaded trace (``None`` when absent).

        Deliberately does not trigger compilation: the planner only ships a
        trace the parent session holds in memory; otherwise the worker
        builds or cache-loads it itself, which keeps cold batches parallel.
        """
        workload = self._workloads.get((name, flags))
        if workload is None:
            return None
        return workload.trace().to_payload()

    # ------------------------------------------------------------------
    # Data plane: shared-memory publishing.
    # ------------------------------------------------------------------
    def _segment_registry(self):
        from repro.runtime.dataplane import (
            SegmentRegistry,
            shared_memory_available,
        )

        if self._segments is None:
            if self._dataplane_failed or not shared_memory_available():
                self._dataplane_failed = True
                return None
            self._segments = SegmentRegistry()
            self._segments_finalizer = weakref.finalize(
                self, SegmentRegistry.close, self._segments
            )
        return self._segments

    def publish_trace(self, name: str, flags: str = "O3"):
        """The :class:`~repro.runtime.dataplane.SegmentHandle` of a
        parent-held trace, publishing it into shared memory on first use.

        Memoized per ``(name, flags)``: across every later batch — and,
        through the service's shared session, across every later request —
        the same segment is reused and only the tiny handle travels.
        Returns ``None`` when the trace is not loaded (same contract as
        :meth:`trace_payload`) or when shared memory is unusable (the
        caller falls back to payload shipping).
        """
        key = (name, flags)
        handle = self._segment_handles.get(key)
        if handle is not None:
            return handle
        workload = self._workloads.get(key)
        if workload is None:
            return None
        registry = self._segment_registry()
        if registry is None:
            return None
        try:
            handle = registry.publish(workload.trace())
        except (OSError, InjectedFault):
            # /dev/shm full or withdrawn mid-run (or a fault-plan rule at
            # the publish seam): degrade to payloads and report it
            # (dataplane_mode()) instead of failing the batch.
            self._dataplane_failed = True
            return None
        self._segment_handles[key] = handle
        return handle

    def ship_trace(self, name: str, flags: str = "O3"):
        """Transport form of a parent-held trace for pool workers.

        The active data plane decides the form: a shared-memory
        :class:`~repro.runtime.dataplane.SegmentHandle` (``shm``) or raw
        column bytes (``payload``), with automatic degradation when shared
        memory is unavailable or fails.  ``None`` when this session does
        not hold the trace (the worker builds or cache-loads it).
        """
        from repro.runtime.dataplane import active_mode

        if active_mode() == "shm" and not self._dataplane_failed:
            handle = self.publish_trace(name, flags)
            if handle is not None:
                return handle
        return self.trace_payload(name, flags)

    def dataplane_mode(self) -> str:
        """The data plane this session actually uses (``shm``/``payload``).

        Reported in ``/v1/metrics`` and ``repro bench``: differs from the
        configured mode when shared memory turned out to be unavailable.
        """
        from repro.runtime.dataplane import active_mode

        return "payload" if self._dataplane_failed else active_mode()

    def trace(self, name: str, flags: str = "O3") -> Trace:
        return self.workload(name, flags).trace()

    # ------------------------------------------------------------------
    # Profiles.
    # ------------------------------------------------------------------
    def _token(self, trace: Trace) -> object:
        """Session-managed traces resolve to (name, flags); others to id()."""
        return self._trace_tokens.get(id(trace), id(trace))

    def program_profile(self, workload: Workload) -> ProgramProfile:
        """The machine-independent profile of ``workload`` (Table 1 stats)."""
        trace = workload.trace()
        token = self._token(trace)
        memo = self._program_profiles.get(token)
        if memo is not None:
            return memo[1]
        if isinstance(token, tuple):
            name, flags = token
            profile, _ = self.cache.load_or_build(
                lambda: profile_program(trace), "program_profile",
                profile_version=PROGRAM_PROFILE_SCHEMA_VERSION,
                **self._trace_key_fields(name, flags),
            )
        else:
            profile = profile_program(trace)
        self._program_profiles[token] = (trace, profile)
        return profile

    def engine(self, name: str, flags: str = "O3") -> SinglePassEngine:
        """The persistent single-pass engine of a session-managed trace."""
        trace = self.trace(name, flags)
        engine = SinglePassEngine.for_trace(trace)
        key = (name, flags)
        if key not in self._engine_synced:
            state = self.cache.load("engine", engine_version=ENGINE_SCHEMA_VERSION,
                                    **self._trace_key_fields(name, flags))
            if state is not MISSING:
                engine.install_state(state)
                self.stats.engine_state_loads += 1
            self._engine_synced[key] = engine.pass_count
        return engine

    def _persist_engine(self, name: str, flags: str,
                        engine: SinglePassEngine) -> None:
        if not self.cache.enabled:
            return
        key = (name, flags)
        if engine.pass_count == self._engine_synced.get(key):
            return
        self.cache.store(engine.export_state(), "engine",
                         engine_version=ENGINE_SCHEMA_VERSION,
                         **self._trace_key_fields(name, flags))
        self._engine_synced[key] = engine.pass_count
        self.stats.engine_state_saves += 1

    def miss_profile(self, workload: Workload | str, machine: MachineConfig,
                     *, flags: str = "O3", mlp_window: int = 64,
                     exact: bool = False) -> MissProfile:
        """Miss-event counts of ``workload`` on ``machine`` (memoized).

        Accepts a workload name (resolved through the session) or any
        :class:`Workload`; profiles of session-managed traces go through the
        persistent engine, so their cache-geometry histograms land on disk
        and are never recomputed by later sessions.  ``exact=True`` answers
        from a full trace replay instead of the stack-distance engine (the
        ``analytical_exact`` backend's fallback); replay results are memoized
        in process but not persisted.
        """
        if isinstance(workload, str):
            workload = self.workload(workload, flags)
        trace = workload.trace()
        token = self._token(trace)
        memo_key = (token, machine, mlp_window, exact)
        memo = self._miss_profiles.get(memo_key)
        if memo is not None:
            return memo[1]

        self.stats.miss_profiles_built += 1
        with span("session.miss_profile", workload=workload.name,
                  exact=exact):
            if exact:
                from repro.profiler.machine_stats import profile_machine

                profile = profile_machine(trace, machine, mlp_window,
                                          exact=True)
            elif isinstance(token, tuple):
                engine = self.engine(*token)
                profile = engine.miss_profile(machine, mlp_window)
                self._persist_engine(*token, engine)
            else:
                profile = SinglePassEngine.for_trace(trace).miss_profile(
                    machine, mlp_window
                )
        self._miss_profiles[memo_key] = (trace, profile)
        return profile

    def sample_evaluate(self, chunked, machine: MachineConfig, *, rate: int,
                        warmup: int = 4, warming: int = 1,
                        mlp_window: int = 64):
        """Interval-sampled model evaluation of a chunked (spilled) trace.

        Thin session wrapper over
        :func:`~repro.profiler.sampling.sample_evaluate` that wires in the
        artifact cache: every warmed interval profile is persisted
        content-addressed, so re-sampling the same store — at any nested
        rate, from any process sharing the cache directory — reuses the
        expensive per-interval streaming work.  Without a cache directory
        the records are memoized in process instead.
        """
        from repro.profiler.sampling import sample_evaluate

        cache = (_IntervalProfileCache(self.cache) if self.cache.enabled
                 else self._interval_memory)
        evaluation = sample_evaluate(chunked, machine, rate, warmup=warmup,
                                     warming=warming, mlp_window=mlp_window,
                                     cache=cache)
        self.stats.interval_cache_hits += evaluation.cache_hits
        self.stats.interval_profiles_built += evaluation.cache_misses
        return evaluation

    # ------------------------------------------------------------------
    # Parallelism.
    # ------------------------------------------------------------------
    def pool(self):
        """The session's persistent worker pool (created on first use).

        Workers stay alive across every :meth:`map` call — and, for the
        service's shared session, across requests — holding their adopted
        traces, attached shared-memory segments and warm single-pass
        engine state, so only the first batch pays spawn and transport.
        """
        from repro.runtime.scheduler import WorkerPool

        if self._pool is None:
            pool = WorkerPool(self.spec, self.jobs)
            self._pool = pool
            self._pool_finalizer = weakref.finalize(self, WorkerPool.close,
                                                    pool)
        return self._pool

    def reset_pool(self) -> None:
        """Discard the worker pool (crash recovery; a new one spawns lazily)."""
        pool, self._pool = self._pool, None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if pool is not None:
            pool.close()

    def close(self) -> None:
        """Release pooled workers and published shared-memory segments.

        Idempotent; also run by GC finalizers and — last resort — the data
        plane's ``atexit`` hook, so segments cannot outlive the process
        even when a caller forgets.  :func:`pooled_session` closes its
        session on exit.
        """
        self.reset_pool()
        segments, self._segments = self._segments, None
        if self._segments_finalizer is not None:
            self._segments_finalizer.detach()
            self._segments_finalizer = None
        self._segment_handles.clear()
        if segments is not None:
            segments.close()

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply a module-level ``fn(session, item)`` across ``items``.

        Runs inline for ``jobs=1``; otherwise shards across the persistent
        process pool (each worker owns a session on the same cache
        directory).  Results keep item order, so parallel runs are
        byte-identical to serial ones.
        """
        from repro.runtime.scheduler import session_map

        return session_map(self, fn, items)

    def map_resilient(self, fn: Callable, items: Iterable) -> list:
        """:meth:`map` with per-unit failure containment.

        Same sharding and ordering contract, but instead of the
        all-or-nothing strict mode, a unit that fails (its own exception,
        or quarantine after repeatedly breaking the pool) yields a
        :class:`~repro.resilience.containment.UnitFailure` in its slot
        while every other unit's result comes back intact.  The inline
        (``jobs=1``/small-batch) path stays strict: with no pool there is
        no crash to contain, and byte-identity with :meth:`map` holds.
        """
        from repro.resilience.containment import resilient_map

        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(self, item) for item in items]
        return resilient_map(self, fn, items, strict=False)

    def _record_cache_corruption(self) -> None:
        self.stats.cache_corruptions += 1

    def summary(self) -> dict:
        """Counters for the CLI's end-of-run session report."""
        return {**self.stats.as_dict(),
                "dataplane": self.dataplane_mode(),
                "stages": self.stages.as_dict(),
                "artifact_cache": self.cache.stats.as_dict(),
                "resilience": self.health.as_dict()}


@contextlib.contextmanager
def pooled_session(cache_dir=None, jobs: int = 1) -> Iterator[Session]:
    """A session ready for sharded work, with a cache its workers can share.

    Worker processes exchange traces and profiling passes through the
    artifact cache; without one, every pool worker would redo the work.  So
    when sharding (``jobs > 1``) without an explicit ``cache_dir``, a
    run-scoped temporary directory is created and cleaned up on exit.
    """
    with contextlib.ExitStack() as stack:
        if cache_dir is None and jobs > 1:
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-cache-")
            )
        session = Session(cache_dir=cache_dir, jobs=jobs)
        # LIFO: the pool and shared-memory segments are released before
        # the temporary cache directory the workers were bound to.
        stack.callback(session.close)
        yield session
