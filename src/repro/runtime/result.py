"""The uniform result type every experiment returns.

An :class:`ExperimentResult` is the declarative replacement for the old
print-scripts: a title, a rectangular table of scalar cells, footnote lines
and a metadata mapping with the experiment's headline numbers.  Rendering
lives in :mod:`repro.runtime.reporters`; this module only defines the data
and its loss-free JSON round trip (used by ``--format json`` and asserted by
the CLI tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Version recorded in every serialized result.
RESULT_SCHEMA_VERSION = 1

#: Cell types that survive a JSON round trip unchanged.
Scalar = str | int | float | bool | None


@dataclass
class ExperimentResult:
    """Declarative outcome of one experiment run.

    ``rows`` hold raw scalars — floats are formatted by the reporters, never
    here — so the same result renders as a text table, machine-readable JSON
    or CSV without re-running anything.
    """

    experiment: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Scalar, ...], ...]
    footnotes: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)
    #: False for wall-clock measurements (the speedup experiment); the CLI
    #: byte-identity guarantees apply only to deterministic results.
    deterministic: bool = True
    schema_version: int = RESULT_SCHEMA_VERSION

    def __post_init__(self) -> None:
        # Canonicalize containers so from_dict(to_dict(r)) == r holds.
        self.headers = tuple(str(header) for header in self.headers)
        self.rows = tuple(tuple(row) for row in self.rows)
        self.footnotes = tuple(str(note) for note in self.footnotes)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "footnotes": list(self.footnotes),
            "metadata": self.metadata,
            "deterministic": self.deterministic,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            rows=tuple(tuple(row) for row in payload["rows"]),
            footnotes=tuple(payload.get("footnotes", ())),
            metadata=dict(payload.get("metadata", {})),
            deterministic=payload.get("deterministic", True),
            schema_version=payload.get("schema_version", RESULT_SCHEMA_VERSION),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))
