"""Rendering of :class:`~repro.runtime.result.ExperimentResult` values.

The experiments compute; the reporters present.  Three formats share one
result object:

* ``text`` — the paper-style aligned table (title, table, footnotes),
* ``json`` — the loss-free serialization of the result,
* ``csv``  — headers plus raw rows for spreadsheet import.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Callable, Iterable

from repro.registry import Registry
from repro.runtime.result import ExperimentResult


def _format_cell(cell, float_format: str = "{:.3f}") -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    if cell is None:
        return ""
    return str(cell)


def format_table(headers: Iterable[str], rows: Iterable[Iterable[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a plain-text aligned table (floats to three decimals)."""
    headers = list(headers)
    materialized = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


#: Registry of ``fn(ExperimentResult) -> str`` renderers, addressed by the
#: CLI's ``--format`` value.  Plugins add formats with
#: ``@register_reporter("markdown")`` — the CLI picks them up automatically.
REPORTERS: Registry = Registry("output format")


def register_reporter(name: str, *, aliases: tuple[str, ...] = ()):
    """Register a renderer ``fn(result) -> str`` under a ``--format`` name."""
    return REPORTERS.register(name, aliases=aliases)


@register_reporter("text")
def render_text(result: ExperimentResult) -> str:
    parts = [result.title, format_table(result.headers, result.rows)]
    parts.extend(result.footnotes)
    return "\n".join(parts)


@register_reporter("json")
def render_json(result: ExperimentResult) -> str:
    return result.to_json()


@register_reporter("csv")
def render_csv(result: ExperimentResult) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue().rstrip("\n")


def render(result: ExperimentResult, fmt: str = "text") -> str:
    try:
        reporter: Callable[[ExperimentResult], str] = REPORTERS.get(fmt)
    except KeyError as exc:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(REPORTERS)}"
        ) from exc
    return reporter(result)


def render_many(results: Iterable[ExperimentResult], fmt: str = "text") -> str:
    """Render a batch: json as one document, a lone csv result as pure CSV,
    everything else as ``=== name ===`` labelled sections."""
    results = list(results)
    if fmt == "json":
        return json.dumps([result.to_dict() for result in results], indent=2)
    if fmt == "csv" and len(results) == 1:
        # Keep single-experiment CSV machine-readable (no section header).
        return render(results[0], fmt) + "\n"
    sections = []
    for result in results:
        sections.append(f"=== {result.experiment} ===")
        sections.append(render(result, fmt))
        sections.append("")
    return "\n".join(sections).rstrip("\n") + "\n"
