"""Content-addressed on-disk artifact cache.

Traces and single-pass profiling state are expensive to produce and fully
deterministic, so the session runtime stores them on disk keyed by a SHA-256
digest of their *identity*: artifact kind, workload name, compiler flags and
the relevant schema versions (:data:`~repro.trace.trace.TRACE_SCHEMA_VERSION`,
:data:`~repro.profiler.single_pass_engine.ENGINE_SCHEMA_VERSION`).  Any code
change that alters what a builder produces must bump the corresponding
version, which changes every digest and naturally invalidates stale entries.

Artifacts are pickled to ``<root>/<kind>/<digest>.pkl`` as consecutive
pickle objects — the small key-fields header first, then a content-digest
meta record, then the payload — so maintenance scans
(:meth:`ArtifactCache.disk_stats`) can read every entry's identity without
deserializing multi-megabyte values.  Writes go through a temporary file
plus :func:`os.replace` so concurrent sessions (the process-pool scheduler
shares one cache directory across workers) never observe a half-written
artifact.

Reads **self-heal**: the payload's stored SHA-256 is verified before
unpickling, so a corrupt or truncated entry (torn write on a crashed
host, bit rot, an injected ``cache.write`` corruption) is detected,
counted (``stats.corruptions``, surfaced as the session's
``cache_corruptions``), deleted and treated as a miss — the artifact is
simply rebuilt, never trusted.  Legacy two-object entries (no meta
record) still load; they are re-digested on their next store.  Store
failures (disk full, injected write faults) degrade to "not cached"
instead of failing the run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.resilience import faults
from repro.resilience.faults import InjectedFault

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISSING = object()

#: Key of the digest meta record (the second pickle object); chosen so a
#: legacy entry's payload — which sits where the meta record now does —
#: can never be mistaken for one.
META_KEY = "__repro_meta__"


class _KeyMismatch(Exception):
    """A digest collision or foreign file: distrust, but not corruption."""


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries whose stored content digest failed verification (or that
    #: would not unpickle): self-healed to misses and deleted.
    corruptions: int = 0
    #: Stores that could not be persisted (disk full, injected faults).
    store_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corruptions": self.corruptions,
                "store_failures": self.store_failures}


@dataclass
class ArtifactCache:
    """Pickle store addressed by the content of the artifact's key fields.

    ``root=None`` disables persistence entirely: every lookup misses and
    every store is a no-op, which gives ephemeral sessions (unit tests,
    one-off scripts) the same code path without touching the filesystem.
    """

    root: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    #: Optional no-argument callback run on every detected corruption
    #: (the session wires this to its ``cache_corruptions`` counter).
    on_corruption: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.root is not None:
            self.root = Path(self.root)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------------
    @staticmethod
    def digest(kind: str, **fields: Any) -> str:
        """Stable SHA-256 digest of the artifact identity."""
        payload = json.dumps(
            {"kind": kind, **fields}, sort_keys=True, separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, **fields: Any) -> Path | None:
        if self.root is None:
            return None
        return self.root / kind / f"{self.digest(kind, **fields)}.pkl"

    # ------------------------------------------------------------------
    @staticmethod
    def _fault_key(kind: str, fields: dict) -> str:
        """The operation key fault-plan rules match on (kind + workload)."""
        workload = fields.get("workload", "")
        return f"{kind}:{workload}" if workload else kind

    def _heal(self, path: Path) -> None:
        """A verified-corrupt entry: count it, report it, delete it."""
        self.stats.corruptions += 1
        if self.on_corruption is not None:
            self.on_corruption()
        try:
            path.unlink()
        except OSError:
            pass

    def load(self, kind: str, **fields: Any) -> Any:
        """The cached value, or :data:`MISSING` when absent or unreadable.

        The payload's stored SHA-256 is verified before unpickling; an
        entry that fails verification (or will not parse at all) is
        counted as a corruption, deleted and reported as a miss.
        """
        path = self.path_for(kind, **fields)
        if path is None or not path.exists():
            self.stats.misses += 1
            return MISSING
        key = self._fault_key(kind, fields)
        try:
            faults.fire("cache.read", key=key)
        except InjectedFault:
            # A transient read failure: rebuild, but keep the entry.
            self.stats.misses += 1
            return MISSING
        try:
            with path.open("rb") as handle:
                entry_fields = pickle.load(handle)
                if entry_fields != {"kind": kind, **fields}:
                    # A digest collision or a foreign file: do not trust it.
                    raise _KeyMismatch
                meta = pickle.load(handle)
                if isinstance(meta, dict) and META_KEY in meta:
                    payload = handle.read()
                    payload = faults.corrupt_bytes("cache.read", payload,
                                                   key=key)
                    expected = meta[META_KEY]
                    if (len(payload) != expected["nbytes"]
                            or hashlib.sha256(payload).hexdigest()
                            != expected["sha256"]):
                        raise ValueError("artifact content digest mismatch")
                    value = pickle.loads(payload)
                else:
                    # Legacy two-object entry: the second pickle *is* the
                    # payload, with no digest to verify.
                    value = meta
        except _KeyMismatch:
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return MISSING
        except Exception:
            # Corrupt, truncated or stale-format entries self-heal.
            self._heal(path)
            self.stats.misses += 1
            return MISSING
        self.stats.hits += 1
        return value

    def store(self, value: Any, kind: str, **fields: Any) -> None:
        """Persist ``value`` atomically (no-op when the cache is disabled).

        A store that cannot complete (disk full, injected write fault)
        degrades to "not cached" — counted in ``stats.store_failures`` —
        rather than failing the computation that produced the value.
        """
        path = self.path_for(kind, **fields)
        if path is None:
            return
        key = self._fault_key(kind, fields)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {META_KEY: {"sha256": hashlib.sha256(payload).hexdigest(),
                           "nbytes": len(payload)}}
        try:
            faults.fire("cache.write", key=key)
            # An injected write corruption lands *after* the digest is
            # computed over the true bytes — exactly a torn write, which
            # the next load detects and heals.
            payload = faults.corrupt_bytes("cache.write", payload, key=key)
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump({"kind": kind, **fields}, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    pickle.dump(meta, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, InjectedFault):
            self.stats.store_failures += 1
            return
        self.stats.stores += 1

    def load_or_build(self, builder: Callable[[], Any], kind: str,
                      **fields: Any) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``, building and storing on a miss."""
        value = self.load(kind, **fields)
        if value is not MISSING:
            return value, True
        value = builder()
        self.store(value, kind, **fields)
        return value, False

    # ------------------------------------------------------------------
    # Maintenance (the ``repro-experiments cache`` subcommand).
    # ------------------------------------------------------------------
    def disk_stats(self) -> dict:
        """Scan the cache directory: entries, bytes and schema versions.

        Reads only each entry's key-fields header (the first of the two
        pickle objects), never the payload, so the scan stays cheap on
        caches holding multi-megabyte traces while still reporting which
        ``*_version`` generations are present on disk.  Unreadable or
        legacy-format entries are counted as ``corrupt`` rather than
        raised.
        """
        per_kind: dict[str, dict] = {}
        schema_versions: dict[str, set] = {}
        corrupt = 0
        if self.root is not None and self.root.is_dir():
            for kind_dir in sorted(path for path in self.root.iterdir()
                                   if path.is_dir()):
                entries = 0
                size = 0
                for path in sorted(kind_dir.glob("*.pkl")):
                    try:
                        entry_size = path.stat().st_size
                    except OSError:
                        continue  # deleted by a live session since the glob
                    entries += 1
                    size += entry_size
                    try:
                        with path.open("rb") as handle:
                            fields = pickle.load(handle)
                        if not (isinstance(fields, dict) and "kind" in fields):
                            raise ValueError("not a key-fields header")
                    except Exception:
                        corrupt += 1
                        continue
                    for key, value in fields.items():
                        if key.endswith("_version"):
                            schema_versions.setdefault(key, set()).add(value)
                if entries:
                    per_kind[kind_dir.name] = {"entries": entries, "bytes": size}
        return {
            "root": str(self.root) if self.root is not None else None,
            "entries": sum(item["entries"] for item in per_kind.values()),
            "bytes": sum(item["bytes"] for item in per_kind.values()),
            "kinds": per_kind,
            "schema_versions": {key: sorted(values) for key, values
                                in sorted(schema_versions.items())},
            "corrupt": corrupt,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root is None or not self.root.is_dir():
            return removed
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir():
                continue
            for path in kind_dir.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
