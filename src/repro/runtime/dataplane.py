"""Zero-copy shared-memory data plane for sharded evaluation.

The sweep planner used to ship every parent-held trace to every pool
worker as raw column bytes (:meth:`~repro.trace.trace.Trace.to_payload`):
correct, but each batch re-copies the columns in the parent, pickles the
bytes through the pool pipe and copies them again in the worker
(``array.frombytes``).  This module moves the hot columns into POSIX
shared memory instead:

* the parent lays the packed columns of a trace into **one**
  ``multiprocessing.shared_memory`` segment (:class:`SegmentRegistry`),
  once per trace, ever — repeated batches against a persistent pool ship
  only a tiny picklable :class:`SegmentHandle`;
* workers **attach** (:func:`attach_trace`): the rebuilt
  :class:`~repro.trace.trace.Trace` wraps ``memoryview`` casts of the
  mapped segment, so no column byte is copied or deserialized on the
  worker side, and the attachment is memoized per segment for the
  worker's lifetime;
* a refcounted registry with guaranteed cleanup: segments are unlinked
  when released, on :meth:`SegmentRegistry.close`, at interpreter exit
  (``atexit``), and — should the parent die without running any of those —
  by the ``multiprocessing`` resource tracker, so no ``/dev/shm`` segment
  outlives the run even after a crash;
* worker processes watch a **parent-death sentinel**
  (:func:`start_parent_watch`): an orphaned worker detaches its segments
  and exits instead of holding the mappings (and the CPU) forever.

Mode selection (:func:`set_mode` / ``REPRO_DATAPLANE`` / ``--dataplane``)
mirrors :mod:`repro.accel`: ``shm`` | ``payload`` | ``auto``, where
``auto`` probes the platform and silently falls back to the existing
payload shipping when POSIX shared memory is unavailable.  Both planes
produce byte-identical results — only transport cost differs — and the
selected plane is reported in ``/v1/metrics`` and ``repro bench``.

:class:`StageTimings` is the data plane's instrumentation surface: the
batch layer accounts every sharded evaluation into the five stages
``ship`` (parent publishes/copies trace transport), ``attach`` (worker
maps or rebuilds the trace), ``profile`` (single-pass engine work),
``model`` (mechanistic-model evaluation) and ``collect`` (parent
reassembly), so a speedup claim is a per-stage delta, not a guess.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import weakref
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.trace.trace import Trace
from repro.trace.trace_schema import (
    COLUMN_NAMES,
    TRACE_SCHEMA_VERSION,
    column_typecode as _column_typecode,
)

#: Environment variable naming the data plane (``auto`` if unset).
DATAPLANE_ENV = "REPRO_DATAPLANE"

DATAPLANE_CHOICES = ("auto", "shm", "payload")

#: Every segment this module creates is named ``repro-dp-<pid>-<n>-<hex>``;
#: the leak tests (and operators) scan ``/dev/shm`` by this prefix.
SEGMENT_PREFIX = "repro-dp"

#: The trace columns a segment carries, in layout order.  Sourced from the
#: shared trace schema so the segment layout and the payload transport can
#: never disagree about the column set.
COLUMN_FIELDS = COLUMN_NAMES

_SHM_DIR = Path("/dev/shm")

_MODE: str | None = None
_AVAILABLE: bool | None = None
_NAMES = itertools.count()


# ----------------------------------------------------------------------
# Mode selection.
# ----------------------------------------------------------------------
def shared_memory_available() -> bool:
    """Whether POSIX shared memory works on this platform (probed once)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def _resolve(choice: str) -> str:
    choice = choice.strip().lower() or "auto"
    if choice not in DATAPLANE_CHOICES:
        raise ValueError(
            f"unknown dataplane {choice!r}; choose from "
            f"{', '.join(DATAPLANE_CHOICES)}"
        )
    if choice == "payload":
        return "payload"
    if choice == "shm":
        if not shared_memory_available():
            raise ValueError(
                "dataplane 'shm' requested but POSIX shared memory is "
                "unavailable on this platform (use 'auto' or 'payload')"
            )
        return "shm"
    return "shm" if shared_memory_available() else "payload"


def set_mode(choice: str) -> str:
    """Select the data plane (``auto`` | ``shm`` | ``payload``).

    Returns the resolved mode (``"shm"`` or ``"payload"``).  Like the
    kernel backend, pick the plane before sharded work starts: a
    persistent worker pool captures the mode when it spawns.
    """
    global _MODE
    _MODE = _resolve(choice)
    return _MODE


def active_mode() -> str:
    """The resolved data plane (from ``REPRO_DATAPLANE`` on first use)."""
    global _MODE
    if _MODE is None:
        _MODE = _resolve(os.environ.get(DATAPLANE_ENV, "auto"))
    return _MODE


# ----------------------------------------------------------------------
# Segment layout.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnSpec:
    """Where one packed column lives inside a segment."""

    field: str
    typecode: str
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SegmentHandle:
    """Everything a worker needs to attach a published trace.

    The handle is what actually travels through the pool pipe: segment
    name plus layout plus the (small) static-instruction tuple — a few
    hundred bytes regardless of trace length, versus megabytes of column
    payload.  It is immutable and picklable by construction.
    """

    name: str
    schema_version: int
    trace_name: str
    statics: tuple
    columns: tuple[ColumnSpec, ...]
    nbytes: int
    #: Global dynamic position of the first row.  Whole traces ship with 0;
    #: a :class:`~repro.trace.store.ChunkedTrace` ships one chunk per
    #: segment, and the chunk's sequence numbers must stay global so L2
    #: interleaving and dependency distances agree with the full stream.
    seq_start: int = 0


def _segment_name() -> str:
    # Unique per process AND per call; short enough for every POSIX
    # implementation's name limit (macOS caps at 31 characters).
    return f"{SEGMENT_PREFIX}-{os.getpid() % 100000}-{next(_NAMES)}-" \
           f"{os.urandom(2).hex()}"


def live_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Shared-memory segments currently present, by name prefix.

    Scans ``/dev/shm`` (empty where the platform keeps segments
    elsewhere); the lifecycle tests use this to prove nothing leaked.
    """
    if not _SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in _SHM_DIR.iterdir()
                  if p.name.startswith(prefix))


# ----------------------------------------------------------------------
# Parent side: publishing.
# ----------------------------------------------------------------------
class SegmentRegistry:
    """Owns the shared-memory segments one session publishes.

    Each :meth:`publish` creates one segment holding every packed column
    of a trace and returns its :class:`SegmentHandle`.  Segments are
    refcounted (:meth:`retain`/:meth:`release`); :meth:`close` — also run
    via ``atexit`` and a session finalizer — unlinks everything still
    registered, so the registry can never leak a segment past the process
    even when callers forget to release.
    """

    def __init__(self):
        self._segments: dict[str, object] = {}
        self._refs: dict[str, int] = {}
        _LIVE_REGISTRIES.add(self)

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> tuple[str, ...]:
        return tuple(self._segments)

    def refcount(self, name: str) -> int:
        return self._refs.get(name, 0)

    def publish(self, trace: Trace) -> SegmentHandle:
        """Lay a trace's packed columns into one fresh segment."""
        from multiprocessing import shared_memory

        from repro.resilience import faults

        # An injected publish fault degrades the session to payload
        # shipping, the same path a full /dev/shm takes.
        faults.fire("dataplane.publish", key=trace.name or "")

        columns: list[ColumnSpec] = []
        views = []
        offset = 0
        for field in COLUMN_FIELDS:
            column = getattr(trace, field)
            view = memoryview(column).cast("B") if len(column) else None
            nbytes = view.nbytes if view is not None else 0
            columns.append(ColumnSpec(field, _column_typecode(column),
                                      offset, nbytes))
            views.append(view)
            offset += nbytes

        shm = None
        for _ in range(3):  # name collisions are possible, just unlikely
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, offset), name=_segment_name()
                )
                break
            except FileExistsError:
                continue
        if shm is None:
            raise OSError("could not allocate a unique shared-memory segment")

        try:
            for spec, view in zip(columns, views):
                if view is not None:
                    shm.buf[spec.offset:spec.offset + spec.nbytes] = view
                    view.release()
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._segments[shm.name.lstrip("/")] = shm
        name = shm.name.lstrip("/")
        self._refs[name] = 1
        seqs = trace.seqs
        seq_start = seqs.start if isinstance(seqs, range) else (
            seqs[0] if len(seqs) else 0)
        return SegmentHandle(
            name=name, schema_version=TRACE_SCHEMA_VERSION,
            trace_name=trace.name, statics=trace.statics,
            columns=tuple(columns), nbytes=offset, seq_start=seq_start,
        )

    def retain(self, name: str) -> None:
        if name not in self._segments:
            raise KeyError(f"unknown segment {name!r}")
        self._refs[name] += 1

    def release(self, name: str) -> None:
        """Drop one reference; the last one unlinks the segment."""
        shm = self._segments.get(name)
        if shm is None:
            return
        self._refs[name] -= 1
        if self._refs[name] > 0:
            return
        del self._segments[name]
        del self._refs[name]
        _destroy(shm)

    def close(self) -> None:
        """Unlink every registered segment (idempotent)."""
        for name in list(self._segments):
            self._refs[name] = 1
            self.release(name)


def _destroy(shm) -> None:
    try:
        shm.close()
    except BufferError:  # an exported view survives: unlink regardless
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # already gone (e.g. the tracker beat us)
        pass


# ----------------------------------------------------------------------
# Worker side: attaching.
# ----------------------------------------------------------------------
@dataclass
class _Attachment:
    shm: object
    views: list
    trace: Trace


#: Segment name -> attachment, memoized for the worker's lifetime so a
#: persistent pool attaches each trace exactly once across all batches.
_ATTACHED: dict[str, _Attachment] = {}


def _attach_segment(name: str):
    """Open an existing segment without adopting ownership of it.

    Attaching must not register the segment with the ``multiprocessing``
    resource tracker: the tracker unlinks everything still registered when
    the last process exits, which would tear the creator's segment down
    behind its back — and since forked workers share the parent's tracker
    (whose cache is one *set* of names), an attach-then-unregister would
    erase the creator's own entry.  Python 3.13 grew ``track=False`` for
    exactly this; earlier versions get the registration suppressed around
    the constructor call instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        registered = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = registered


def attach_trace(handle: SegmentHandle) -> Trace:
    """The trace behind a handle, as zero-copy views of the segment.

    The returned trace's columns are ``memoryview`` casts of the mapped
    shared memory — indexing, iteration and ``numpy.frombuffer`` all see
    the parent's bytes directly; nothing is copied or unpickled.
    Attachments are memoized by segment name until :func:`detach` (or
    worker exit, via ``atexit``/the parent-death sentinel).
    """
    attachment = _ATTACHED.get(handle.name)
    if attachment is not None:
        return attachment.trace
    if handle.schema_version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"segment {handle.name!r} carries trace schema "
            f"{handle.schema_version!r}, expected {TRACE_SCHEMA_VERSION}"
        )
    shm = _attach_segment(handle.name)
    views = []
    columns = {}
    for spec in handle.columns:
        if spec.nbytes:
            view = shm.buf[spec.offset:spec.offset + spec.nbytes].cast(
                spec.typecode
            )
            views.append(view)
            columns[spec.field] = view
        else:
            columns[spec.field] = array(spec.typecode)
    trace = Trace.from_columns(statics=handle.statics,
                               name=handle.trace_name,
                               seq_start=handle.seq_start, **columns)
    _ATTACHED[handle.name] = _Attachment(shm=shm, views=views, trace=trace)
    # The fault point sits *after* the attachment is memoized: a ``kill``
    # rule here dies between attach and first read, the exact window the
    # orphan-cleanup machinery (parent-death sentinel + registry close)
    # must cover without leaking /dev/shm segments.
    from repro.resilience import faults

    faults.fire("dataplane.attach", key=handle.name)
    return trace


def attached_count() -> int:
    """Segments this process currently has mapped (tests, metrics)."""
    return len(_ATTACHED)


def detach(name: str) -> None:
    """Release one attachment: drop the views, unmap the segment."""
    attachment = _ATTACHED.pop(name, None)
    if attachment is None:
        return
    attachment.trace = None
    for view in attachment.views:
        view.release()
    try:
        attachment.shm.close()
    except BufferError:  # a caller still holds a column view; exit cleans up
        pass


def detach_all() -> None:
    for name in list(_ATTACHED):
        detach(name)


# ----------------------------------------------------------------------
# Cleanup guarantees.
# ----------------------------------------------------------------------
_LIVE_REGISTRIES: "weakref.WeakSet[SegmentRegistry]" = weakref.WeakSet()
_WATCHER: threading.Thread | None = None


@atexit.register
def _cleanup_at_exit() -> None:
    for registry in list(_LIVE_REGISTRIES):
        registry.close()
    detach_all()


def start_parent_watch(parent_pid: int, interval: float = 1.0) -> None:
    """Exit (after detaching) when the parent process disappears.

    Pool workers call this from their initializer: a worker orphaned by a
    parent crash re-parents (``getppid`` changes), detaches its segments
    and exits instead of idling forever with the mappings held open.
    """
    global _WATCHER
    if _WATCHER is not None or os.getppid() != parent_pid:
        return

    def _watch() -> None:
        import time

        while True:
            if os.getppid() != parent_pid:
                detach_all()
                os._exit(2)
            time.sleep(interval)

    _WATCHER = threading.Thread(target=_watch, daemon=True,
                                name="repro-parent-watch")
    _WATCHER.start()


# ----------------------------------------------------------------------
# Per-stage instrumentation.
# ----------------------------------------------------------------------
class StageTimings:
    """Accumulated wall time per data-plane stage.

    Stages: ``ship`` (parent publishes segments / copies payload bytes),
    ``attach`` (worker maps a segment or rebuilds a payload trace),
    ``profile`` (single-pass engine passes + program profiles), ``model``
    (mechanistic-model evaluation; scalar backends fold their profiling
    in here) and ``collect`` (parent-side result reassembly).  Worker
    timings travel back with each group's results and are merged here.

    A thin adapter over a :class:`~repro.obs.metrics.MetricsRegistry`
    counter family (``stage_seconds_total{stage=...}``): passing the
    session's registry makes the stage totals show up in the Prometheus
    exposition for free, while this class keeps the canonical ordering
    and rounding the reports rely on.
    """

    ORDER = ("ship", "attach", "profile", "model", "collect")

    __slots__ = ("_family",)

    def __init__(self, registry=None):
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        self._family = registry.counter(
            "stage_seconds_total",
            "Accumulated wall time per data-plane stage.",
            labels=("stage",),
        )

    def add(self, stage: str, seconds: float) -> None:
        self._family.labels(stage=stage).inc(seconds)

    def _raw(self) -> dict[str, float]:
        return {child.label_values[0]: child.value
                for child in self._family.children()}

    def merge(self, stages: "Mapping[str, float] | StageTimings | None") -> None:
        if not stages:
            return
        items = stages._raw() if isinstance(stages, StageTimings) else stages
        for stage, seconds in items.items():
            self.add(stage, seconds)

    def clear(self) -> None:
        self._family.reset()

    def __bool__(self) -> bool:
        return any(child.value for child in self._family.children())

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.as_dict().items())

    def as_dict(self) -> dict[str, float]:
        """Seconds per stage, canonical order first, rounded for reports."""
        raw = self._raw()
        ordered = [stage for stage in self.ORDER if stage in raw]
        ordered += sorted(set(raw) - set(self.ORDER))
        return {stage: round(raw[stage], 6) for stage in ordered}
