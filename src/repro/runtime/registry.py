"""Declarative experiment registry.

Experiments register themselves with the :func:`experiment` decorator,
declaring *in metadata* everything the CLI used to hardcode: the options
they accept (``full`` for the 192-point design space, ``benchmarks`` for a
workload subset, ...), the keyword overrides of their fast "smoke" preset,
and whether their output is deterministic.  The CLI therefore treats every
experiment uniformly — there is no ``name in ("figure5", "figure9")``
special case anywhere.

The registered runner has the signature ``fn(session, **options) ->
ExperimentResult``; :func:`run_experiment` assembles the option values that
apply (unsupported options are simply not passed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.runtime.result import ExperimentResult
from repro.runtime.session import Session


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment and its CLI-facing metadata."""

    name: str
    runner: Callable[..., ExperimentResult]
    title: str
    #: Keyword options the runner accepts (e.g. ``("full", "benchmarks")``).
    options: tuple[str, ...] = ()
    #: Option overrides selecting the fast subset (``--smoke``).
    smoke: Mapping[str, Any] = field(default_factory=dict)
    #: False when the output contains wall-clock measurements.
    deterministic: bool = True

    def supports(self, option: str) -> bool:
        return option in self.options


#: Registration (paper) order: Table 2 first, then the figures, then speedup.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def experiment(name: str, *, title: str, options: tuple[str, ...] = (),
               smoke: Mapping[str, Any] | None = None,
               deterministic: bool = True) -> Callable:
    """Class the decorated function as the runner of experiment ``name``."""

    def register(fn: Callable[..., ExperimentResult]) -> Callable:
        unsupported = set(smoke or {}) - set(options)
        if unsupported:
            raise ValueError(
                f"experiment {name!r}: smoke preset uses undeclared "
                f"options {sorted(unsupported)}"
            )
        if name in EXPERIMENTS:
            raise ValueError(f"experiment {name!r} registered twice")
        EXPERIMENTS[name] = ExperimentSpec(
            name=name, runner=fn, title=title, options=tuple(options),
            smoke=dict(smoke or {}), deterministic=deterministic,
        )
        return fn

    return register


def get_experiment(name: str) -> ExperimentSpec:
    _ensure_loaded()
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from exc


def experiment_names() -> list[str]:
    _ensure_loaded()
    return list(EXPERIMENTS)


def run_experiment(session: Session, name: str, *, full: bool = False,
                   smoke: bool = False,
                   overrides: Mapping[str, Any] | None = None) -> ExperimentResult:
    """Run one experiment with uniformly applied option flags.

    ``full`` and the smoke preset reach only experiments that declared the
    corresponding options; ``overrides`` must name declared options.
    """
    spec = get_experiment(name)
    kwargs: dict[str, Any] = {}
    if smoke:
        kwargs.update(spec.smoke)
    if full and spec.supports("full"):
        kwargs["full"] = True
    for option, value in (overrides or {}).items():
        if not spec.supports(option):
            raise ValueError(
                f"experiment {name!r} does not support option {option!r} "
                f"(declared: {spec.options or '()'})"
            )
        kwargs[option] = value
    result = spec.runner(session, **kwargs)
    result.deterministic = spec.deterministic
    return result


def _ensure_loaded() -> None:
    """Import the experiment package so its modules self-register."""
    import repro.experiments  # noqa: F401
