"""Dynamic branch-direction predictors.

All predictors share the two-bit saturating-counter update rule and the
``predict`` / ``update`` interface.  Sizes are expressed as hardware budgets
(bits of state) so the paper's "1KB global history" and "3.5KB hybrid"
configurations translate directly (see :func:`make_predictor`).
"""

from __future__ import annotations

import abc

from repro.registry import Registry


def _power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


class BranchPredictor(abc.ABC):
    """Interface shared by all direction predictors."""

    name = "predictor"

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (True = taken)."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved direction."""

    def reset(self) -> None:  # pragma: no cover - overridden where stateful
        """Restore the power-on state."""

    @property
    def storage_bits(self) -> int:
        """Hardware budget of the predictor in bits (0 for static schemes)."""
        return 0


class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken."""

    name = "always_taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class AlwaysNotTakenPredictor(BranchPredictor):
    """Static predict-not-taken."""

    name = "always_not_taken"

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        return None


class _CounterTable:
    """A table of 2-bit saturating counters indexed by an arbitrary hash."""

    def __init__(self, entries: int, initial: int = 2):
        _power_of_two(entries, "counter table entries")
        self.entries = entries
        self._initial = initial
        self._counters = [initial] * entries

    def predict(self, index: int) -> bool:
        return self._counters[index & (self.entries - 1)] >= 2

    def update(self, index: int, taken: bool) -> None:
        slot = index & (self.entries - 1)
        counter = self._counters[slot]
        if taken:
            self._counters[slot] = min(3, counter + 1)
        else:
            self._counters[slot] = max(0, counter - 1)

    def reset(self) -> None:
        self._counters = [self._initial] * self.entries


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters (no history)."""

    name = "bimodal"

    def __init__(self, entries: int = 2048):
        self._table = _CounterTable(entries)

    def predict(self, pc: int) -> bool:
        return self._table.predict(pc >> 2)

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(pc >> 2, taken)

    def reset(self) -> None:
        self._table.reset()

    @property
    def storage_bits(self) -> int:
        return 2 * self._table.entries


class GSharePredictor(BranchPredictor):
    """Global-history predictor: PC xor global history indexes a counter table."""

    name = "gshare"

    def __init__(self, history_bits: int = 12):
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._table = _CounterTable(1 << history_bits)
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._table.update(self._index(pc), taken)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask

    def reset(self) -> None:
        self._table.reset()
        self._history = 0

    @property
    def storage_bits(self) -> int:
        return 2 * self._table.entries + self.history_bits


class LocalPredictor(BranchPredictor):
    """Two-level local predictor: per-PC history indexes a shared counter table."""

    name = "local"

    def __init__(self, history_bits: int = 10, history_entries: int = 1024):
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        _power_of_two(history_entries, "history_entries")
        self.history_bits = history_bits
        self.history_entries = history_entries
        self._histories = [0] * history_entries
        self._table = _CounterTable(1 << history_bits)

    def _history_slot(self, pc: int) -> int:
        return (pc >> 2) & (self.history_entries - 1)

    def predict(self, pc: int) -> bool:
        return self._table.predict(self._histories[self._history_slot(pc)])

    def update(self, pc: int, taken: bool) -> None:
        slot = self._history_slot(pc)
        history = self._histories[slot]
        self._table.update(history, taken)
        mask = (1 << self.history_bits) - 1
        self._histories[slot] = ((history << 1) | int(taken)) & mask

    def reset(self) -> None:
        self._histories = [0] * self.history_entries
        self._table.reset()

    @property
    def storage_bits(self) -> int:
        return (
            self.history_bits * self.history_entries + 2 * self._table.entries
        )


class HybridPredictor(BranchPredictor):
    """Tournament predictor: a chooser selects between two component predictors."""

    name = "hybrid"

    def __init__(self, local: BranchPredictor | None = None,
                 global_pred: BranchPredictor | None = None,
                 chooser_entries: int = 1024):
        self.local = local if local is not None else LocalPredictor()
        self.global_pred = (
            global_pred if global_pred is not None else GSharePredictor(12)
        )
        # Chooser counters: >= 2 means "trust the global component".
        self._chooser = _CounterTable(chooser_entries)

    def predict(self, pc: int) -> bool:
        if self._chooser.predict(pc >> 2):
            return self.global_pred.predict(pc)
        return self.local.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_prediction = self.local.predict(pc)
        global_prediction = self.global_pred.predict(pc)
        # Train the chooser only when the components disagree.
        if local_prediction != global_prediction:
            self._chooser.update(pc >> 2, global_prediction == taken)
        self.local.update(pc, taken)
        self.global_pred.update(pc, taken)

    def reset(self) -> None:
        self.local.reset()
        self.global_pred.reset()
        self._chooser.reset()

    @property
    def storage_bits(self) -> int:
        return (
            self.local.storage_bits
            + self.global_pred.storage_bits
            + 2 * self._chooser.entries
        )


# ----------------------------------------------------------------------
# Predictor registry.
# ----------------------------------------------------------------------
#: Registry of zero-argument factories returning fresh predictor instances.
#: Third-party predictors plug in with ``@register_predictor("my_scheme")``
#: and are then addressable anywhere a ``MachineConfig.branch_predictor``
#: string is consumed (models, simulators, the single-pass engine).
PREDICTORS = Registry("branch predictor")


def register_predictor(name: str, *, aliases: tuple[str, ...] = (),
                       description: str = ""):
    """Register a zero-argument factory building a :class:`BranchPredictor`."""
    return PREDICTORS.register(name, aliases=aliases, description=description)


@register_predictor(
    "global_1kb",
    description="1KB global-history gshare (4096 2-bit counters)",
)
def _make_global_1kb() -> BranchPredictor:
    return GSharePredictor(history_bits=12)


@register_predictor(
    "hybrid_3.5kb", aliases=("hybrid",),
    description="tournament predictor, 10-bit local + 12-bit global (~3.5KB)",
)
def _make_hybrid() -> BranchPredictor:
    return HybridPredictor(
        local=LocalPredictor(history_bits=10, history_entries=1024),
        global_pred=GSharePredictor(history_bits=12),
    )


@register_predictor("bimodal", description="per-PC 2-bit counters, no history")
def _make_bimodal() -> BranchPredictor:
    return BimodalPredictor()


@register_predictor("always_taken", description="static predict-taken")
def _make_always_taken() -> BranchPredictor:
    return AlwaysTakenPredictor()


@register_predictor("always_not_taken", description="static predict-not-taken")
def _make_always_not_taken() -> BranchPredictor:
    return AlwaysNotTakenPredictor()


def predictor_names() -> list[str]:
    """Canonical names of every registered predictor configuration."""
    return PREDICTORS.names()


def make_predictor(kind: str) -> BranchPredictor:
    """Build a fresh predictor for a registered configuration name.

    The paper's configurations (``"global_1kb"``, ``"hybrid_3.5kb"``) and the
    baselines (``"bimodal"``, ``"always_taken"``, ``"always_not_taken"``) are
    pre-registered; :func:`register_predictor` adds more.
    """
    try:
        factory = PREDICTORS.get(kind.lower())
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    return factory()
