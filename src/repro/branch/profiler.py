"""Branch statistics profiling over a dynamic trace.

The mechanistic model needs, for a given predictor configuration:

* the number of mispredicted conditional branches (each costs roughly the
  front-end pipeline depth, Eq. 4 of the paper), and
* the number of correctly predicted *taken* control transfers (each costs one
  fetch bubble — the "taken-branch hit penalty" of Section 3.3).

Unconditional jumps are assumed to be correctly predicted (they still pay the
taken bubble); conditional branches are replayed through the supplied
predictor in trace order, which is exactly how the detailed pipeline
simulator consults the predictor, so the two observe identical counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.predictors import BranchPredictor
from repro.isa.opcodes import OpClass
from repro.trace.trace import OP_CLASS_IDS, Trace

_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]


@dataclass
class BranchProfile:
    """Counts extracted from one (trace, predictor) pair."""

    predictor_name: str
    conditional_branches: int = 0
    unconditional_jumps: int = 0
    taken_branches: int = 0
    mispredictions: int = 0
    predicted_taken_correct: int = 0

    @property
    def control_instructions(self) -> int:
        return self.conditional_branches + self.unconditional_jumps

    @property
    def misprediction_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    @property
    def taken_bubbles(self) -> int:
        """Correctly predicted taken transfers (conditional + unconditional)."""
        return self.predicted_taken_correct + self.unconditional_jumps


def profile_control_stream(stream, predictor: BranchPredictor,
                           profile: BranchProfile | None = None) -> BranchProfile:
    """Replay a stream of ``(pc, taken, is_conditional)`` control transfers.

    This is the single source of truth for the branch accounting; both
    :func:`profile_branches` and the single-pass engine (which caches a
    compact control stream per trace) feed it.  Passing an existing
    ``profile`` accumulates into it — the chunked-trace streaming path
    replays each chunk's control stream through one persistent predictor,
    which is indistinguishable from a single replay of the whole trace.
    """
    if profile is None:
        profile = BranchProfile(predictor_name=predictor.name)
    predict = predictor.predict
    update = predictor.update
    for pc, taken, conditional in stream:
        if not conditional:
            # Unconditional jump: always taken, assumed correctly predicted.
            profile.unconditional_jumps += 1
            profile.taken_branches += 1
            continue
        profile.conditional_branches += 1
        if taken:
            profile.taken_branches += 1
        prediction = predict(pc)
        update(pc, taken)
        if prediction != taken:
            profile.mispredictions += 1
        elif taken:
            profile.predicted_taken_correct += 1
    return profile


def profile_branches(trace: Trace, predictor: BranchPredictor) -> BranchProfile:
    """Replay ``trace`` through ``predictor`` and collect branch statistics.

    Walks the trace's packed columns directly — no per-instruction facade
    objects are materialized.
    """
    pcs = trace.pcs
    takens = trace.taken

    def stream():
        for index, class_id in enumerate(trace.op_classes):
            if class_id == _BRANCH_ID:
                yield pcs[index], takens[index] == 1, True
            elif class_id == _JUMP_ID:
                yield pcs[index], True, False

    return profile_control_stream(stream(), predictor)
