"""Branch predictors and branch statistics profiling.

The paper's design space (Table 2) compares a 1KB global-history predictor
against a 3.5KB hybrid predictor with 10-bit local and 12-bit global history.
This package provides those two predictors plus simpler baselines (static,
bimodal, purely local), and a profiler that replays a trace through a
predictor to collect the misprediction and predicted-taken counts the
mechanistic model consumes.
"""

from repro.branch.predictors import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    GSharePredictor,
    HybridPredictor,
    LocalPredictor,
    PREDICTORS,
    make_predictor,
    predictor_names,
    register_predictor,
)
from repro.branch.profiler import BranchProfile, profile_branches

__all__ = [
    "BranchPredictor",
    "AlwaysTakenPredictor",
    "AlwaysNotTakenPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "LocalPredictor",
    "HybridPredictor",
    "make_predictor",
    "predictor_names",
    "register_predictor",
    "PREDICTORS",
    "BranchProfile",
    "profile_branches",
]
