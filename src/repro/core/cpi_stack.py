"""CPI stacks: breaking predicted cycles into contributing components.

CPI stacks are the main analysis artefact the paper derives from the model
(Figures 4, 7 and 8): the total CPI is decomposed into a base component
(N/W) plus one component per penalty source.  The fine-grained components
defined here can be regrouped into the coarser categories the paper plots
(e.g. "l2 access" = instruction-side and data-side L1-miss-to-L2-hit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CPIComponent(enum.Enum):
    """Fine-grained CPI stack components."""

    BASE = "base"
    MUL = "mul"
    DIV = "div"
    L1_HIT_EXTRA = "l1_hit_extra"       # only when the L1 takes >1 cycle
    IL1_MISS = "il1_miss"               # instruction L1 miss, served by the L2
    IL2_MISS = "il2_miss"               # instruction fetch that goes to memory
    DL1_MISS = "dl1_miss"               # data L1 miss, served by the L2
    DL2_MISS = "dl2_miss"               # data access that goes to memory
    ITLB_MISS = "itlb_miss"
    DTLB_MISS = "dtlb_miss"
    BPRED_MISS = "bpred_miss"
    BPRED_TAKEN = "bpred_taken"         # taken-branch hit bubble
    DEP_UNIT = "dep_unit"
    DEP_LONG = "dep_long"
    DEP_LOAD = "dep_load"


#: Regrouping used by the paper's figures: component -> coarse label.
PAPER_GROUPS: dict[CPIComponent, str] = {
    CPIComponent.BASE: "base",
    CPIComponent.MUL: "mul/div",
    CPIComponent.DIV: "mul/div",
    CPIComponent.L1_HIT_EXTRA: "l2 access",
    CPIComponent.IL1_MISS: "l2 access",
    CPIComponent.DL1_MISS: "l2 access",
    CPIComponent.IL2_MISS: "l2 miss",
    CPIComponent.DL2_MISS: "l2 miss",
    CPIComponent.ITLB_MISS: "TLB miss",
    CPIComponent.DTLB_MISS: "TLB miss",
    CPIComponent.BPRED_MISS: "bpred miss",
    CPIComponent.BPRED_TAKEN: "bpred hit (taken)",
    CPIComponent.DEP_UNIT: "dependencies",
    CPIComponent.DEP_LONG: "dependencies",
    CPIComponent.DEP_LOAD: "dependencies",
}

#: Order in which the paper stacks the coarse components (Figure 4).
PAPER_GROUP_ORDER = [
    "base",
    "mul/div",
    "l2 access",
    "l2 miss",
    "bpred miss",
    "bpred hit (taken)",
    "TLB miss",
    "dependencies",
]


@dataclass
class CPIStack:
    """Cycle counts per component for one (workload, machine) pair."""

    name: str
    instructions: int
    cycles: dict[CPIComponent, float] = field(default_factory=dict)

    def add(self, component: CPIComponent, cycles: float) -> None:
        """Accumulate ``cycles`` into ``component`` (negative values are clamped)."""
        if cycles <= 0:
            return
        self.cycles[component] = self.cycles.get(component, 0.0) + cycles

    def component(self, component: CPIComponent) -> float:
        """Cycles attributed to ``component``."""
        return self.cycles.get(component, 0.0)

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    def cpi_of(self, component: CPIComponent) -> float:
        if not self.instructions:
            return 0.0
        return self.component(component) / self.instructions

    def grouped(self, groups: dict[CPIComponent, str] | None = None) -> dict[str, float]:
        """CPI per coarse group, in the paper's plotting order."""
        mapping = groups if groups is not None else PAPER_GROUPS
        grouped: dict[str, float] = {}
        for component, cycles in self.cycles.items():
            label = mapping.get(component, component.value)
            grouped[label] = grouped.get(label, 0.0) + cycles / max(1, self.instructions)
        ordered = {label: grouped[label] for label in PAPER_GROUP_ORDER if label in grouped}
        for label, value in grouped.items():
            if label not in ordered:
                ordered[label] = value
        return ordered

    def scaled(self, factor: float) -> "CPIStack":
        """Return a copy with every component multiplied by ``factor``.

        Used to turn CPI stacks into cycle stacks (Figure 8 normalises cycle
        stacks, i.e. CPI times instruction count).
        """
        clone = CPIStack(name=self.name, instructions=self.instructions)
        for component, cycles in self.cycles.items():
            clone.cycles[component] = cycles * factor
        return clone

    def as_rows(self) -> list[tuple[str, float]]:
        """(component, CPI) rows for tabular output, stacked in paper order."""
        return [(label, value) for label, value in self.grouped().items()]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{label}={value:.3f}" for label, value in self.grouped().items())
        return f"CPIStack({self.name}: CPI={self.cpi:.3f}; {parts})"
