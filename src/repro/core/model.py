"""The mechanistic performance model for superscalar in-order processors.

Implements Eq. 1 of the paper:

    T = N / W + P_misses + P_LL + P_deps

with the penalty terms of Sections 3.3-3.5.  The model consumes

* a machine-independent :class:`~repro.profiler.program.ProgramProfile`
  (instruction mix, dependency-distance histograms),
* a program-machine :class:`~repro.profiler.machine_stats.MissProfile`
  (cache/TLB miss counts, branch misprediction and taken-branch counts), and
* a :class:`~repro.machine.MachineConfig` (width, front-end depth, latencies),

and produces a :class:`ModelResult` with the predicted cycle count and the
CPI stack.  Evaluating the model is a handful of arithmetic operations, which
is what gives the three-orders-of-magnitude speedup over detailed simulation
reported by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import penalties
from repro.core.cpi_stack import CPIComponent, CPIStack
from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile, profile_machine
from repro.profiler.program import ProgramProfile, profile_program


@dataclass
class ModelResult:
    """Prediction of the mechanistic model for one (workload, machine) pair."""

    name: str
    machine: MachineConfig
    instructions: int
    stack: CPIStack

    @property
    def cycles(self) -> float:
        return self.stack.total_cycles

    @property
    def cpi(self) -> float:
        return self.stack.cpi

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def execution_time_seconds(self) -> float:
        return self.cycles * self.machine.cycle_ns * 1e-9


class InOrderMechanisticModel:
    """Analytical CPI model for a W-wide superscalar in-order processor.

    Parameters
    ----------
    machine:
        The processor configuration to model.
    include_taken_branch_penalty:
        Model the one-cycle fetch bubble of predicted-taken branches
        (Section 3.3).  Exposed as a switch so the ablation benchmarks can
        quantify its contribution.
    include_slot_correction:
        Apply the (W-1)/(2W) uniform-placement correction to miss and
        long-latency penalties (Eqs. 3, 4 and 6).
    include_dependency_penalty:
        Model inter-instruction dependencies (Section 3.5).
    """

    def __init__(self, machine: MachineConfig, *,
                 include_taken_branch_penalty: bool = True,
                 include_slot_correction: bool = True,
                 include_dependency_penalty: bool = True):
        self.machine = machine
        self.include_taken_branch_penalty = include_taken_branch_penalty
        self.include_slot_correction = include_slot_correction
        self.include_dependency_penalty = include_dependency_penalty

    # ------------------------------------------------------------------
    def _correction(self) -> float:
        if not self.include_slot_correction:
            return 0.0
        return penalties.slot_correction(self.machine.width)

    def _miss_penalty(self, latency: float) -> float:
        return max(0.0, latency - self._correction())

    def _long_latency_penalty(self, latency: float) -> float:
        return max(0.0, (latency - 1.0) - self._correction())

    # ------------------------------------------------------------------
    def predict(self, program: ProgramProfile, misses: MissProfile) -> ModelResult:
        """Evaluate the model (Eq. 1) and return the predicted CPI stack."""
        machine = self.machine
        width = machine.width
        stack = CPIStack(name=program.name, instructions=program.instructions)

        # ------------------------------------------------------------------
        # Base: N / W (Eq. 1, first term).
        # ------------------------------------------------------------------
        stack.add(CPIComponent.BASE, program.instructions / width)

        # ------------------------------------------------------------------
        # Long-latency instructions (Eq. 5 / 6).
        # ------------------------------------------------------------------
        stack.add(
            CPIComponent.MUL,
            program.multiplies * self._long_latency_penalty(machine.mul_latency),
        )
        stack.add(
            CPIComponent.DIV,
            program.divides * self._long_latency_penalty(machine.div_latency),
        )
        if machine.l1_hit_cycles > 1:
            data_accesses = program.loads + program.stores
            stack.add(
                CPIComponent.L1_HIT_EXTRA,
                data_accesses * self._long_latency_penalty(machine.l1_hit_cycles),
            )
        # Data accesses whose L1 miss is served by the L2 behave like
        # long-latency instructions of latency (L1 hit + L2 access).
        stack.add(
            CPIComponent.DL1_MISS,
            misses.l1d_misses * self._long_latency_penalty(
                machine.l1_hit_cycles + machine.l2_hit_cycles
            ),
        )

        # ------------------------------------------------------------------
        # Miss events (Eq. 2 / 3 / 4).
        # ------------------------------------------------------------------
        stack.add(
            CPIComponent.IL1_MISS,
            misses.l1i_misses * self._miss_penalty(machine.l2_hit_cycles),
        )
        stack.add(
            CPIComponent.IL2_MISS,
            misses.il2_misses * self._miss_penalty(machine.memory_cycles),
        )
        stack.add(
            CPIComponent.DL2_MISS,
            misses.dl2_misses * self._miss_penalty(machine.memory_cycles),
        )
        stack.add(
            CPIComponent.ITLB_MISS,
            misses.itlb_misses * self._miss_penalty(machine.tlb_miss_cycles),
        )
        stack.add(
            CPIComponent.DTLB_MISS,
            misses.dtlb_misses * self._miss_penalty(machine.tlb_miss_cycles),
        )
        correction = self._correction() if self.include_slot_correction else 0.0
        stack.add(
            CPIComponent.BPRED_MISS,
            misses.mispredictions * (machine.frontend_depth + correction),
        )
        if self.include_taken_branch_penalty:
            stack.add(
                CPIComponent.BPRED_TAKEN,
                misses.taken_bubbles * penalties.taken_branch_penalty(),
            )

        # ------------------------------------------------------------------
        # Inter-instruction dependencies (Eqs. 11, 12, 16).
        # ------------------------------------------------------------------
        if self.include_dependency_penalty:
            deps = program.dependencies
            stack.add(
                CPIComponent.DEP_UNIT,
                penalties.unit_dependency_total(deps.unit, width),
            )
            stack.add(
                CPIComponent.DEP_LONG,
                penalties.long_dependency_total(deps.long, width),
            )
            stack.add(
                CPIComponent.DEP_LOAD,
                penalties.load_dependency_total(deps.load, width),
            )

        return ModelResult(
            name=program.name,
            machine=machine,
            instructions=program.instructions,
            stack=stack,
        )

    # ------------------------------------------------------------------
    def predict_trace(self, trace) -> ModelResult:
        """Profile ``trace`` for this machine and evaluate the model."""
        program = profile_program(trace)
        misses = profile_machine(trace, self.machine)
        return self.predict(program, misses)


def predict_workload(workload, machine: MachineConfig,
                     program: ProgramProfile | None = None) -> ModelResult:
    """Convenience wrapper: profile a workload (if needed) and run the model.

    ``program`` may be passed in to reuse a machine-independent profile across
    many machine configurations, which is exactly the paper's use case: profile
    once, explore the design space analytically.
    """
    trace = workload.trace()
    if program is None:
        program = profile_program(trace)
    misses = profile_machine(trace, machine)
    model = InOrderMechanisticModel(machine)
    return model.predict(program, misses)
