"""The paper's primary contribution: mechanistic in-order performance model.

* :mod:`repro.core.penalties` — the per-event penalty formulas (Eqs. 2-16).
* :mod:`repro.core.cpi_stack` — CPI stack representation and grouping.
* :mod:`repro.core.model` — :class:`InOrderMechanisticModel`, which combines
  program statistics, program-machine statistics and machine parameters into
  a predicted cycle count and CPI stack.
* :mod:`repro.core.ooo` — the out-of-order interval model of Eyerman et al.
  used for the in-order versus out-of-order comparison (Figure 7).
"""

from repro.core.cpi_stack import CPIComponent, CPIStack
from repro.core.model import InOrderMechanisticModel, ModelResult, predict_workload
from repro.core.ooo import OutOfOrderIntervalModel

__all__ = [
    "CPIComponent",
    "CPIStack",
    "InOrderMechanisticModel",
    "ModelResult",
    "predict_workload",
    "OutOfOrderIntervalModel",
]
