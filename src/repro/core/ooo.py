"""Out-of-order interval model (Eyerman, Eeckhout, Karkhanis & Smith).

The paper's first case study (Figure 7) compares in-order CPI stacks from the
new model against out-of-order CPI stacks obtained with the interval model
for out-of-order processors [8].  This module implements that interval model
at the level of detail the comparison needs:

* the balanced out-of-order core sustains its designed width W between miss
  events, hiding inter-instruction dependencies, non-unit execution latencies
  and L1 data misses that hit in the L2;
* instruction cache misses cost their miss latency (same as in-order);
* branch mispredictions cost the front-end refill *plus* the branch
  resolution time (the window drain), which is why the per-branch cost is
  higher than on an in-order core;
* long data misses (to memory) expose memory-level parallelism: misses whose
  reorder-buffer windows overlap are served in parallel, so only the first
  miss of each overlapping run pays the full memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIComponent, CPIStack
from repro.core.model import ModelResult
from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile
from repro.profiler.program import ProgramProfile


@dataclass(frozen=True)
class OutOfOrderModelConfig:
    """Parameters specific to the out-of-order interval model."""

    rob_size: int = 64
    #: Average branch resolution time in cycles (time between a mispredicted
    #: branch entering the window and being resolved).  The default follows
    #: the usual interval-model estimate of half the window drain time.
    branch_resolution_cycles: float | None = None

    def resolution(self, width: int) -> float:
        if self.branch_resolution_cycles is not None:
            return self.branch_resolution_cycles
        return self.rob_size / (2.0 * width)


class OutOfOrderIntervalModel:
    """Interval-analysis CPI model for a balanced out-of-order processor."""

    def __init__(self, machine: MachineConfig,
                 config: OutOfOrderModelConfig | None = None):
        self.machine = machine
        self.config = config if config is not None else OutOfOrderModelConfig()

    def predict(self, program: ProgramProfile, misses: MissProfile) -> ModelResult:
        machine = self.machine
        width = machine.width
        stack = CPIStack(name=program.name, instructions=program.instructions)

        # Balanced steady state: the window keeps the back end fed at width W.
        stack.add(CPIComponent.BASE, program.instructions / width)

        # Front-end miss events behave as on the in-order core.
        stack.add(CPIComponent.IL1_MISS, misses.l1i_misses * machine.l2_hit_cycles)
        stack.add(CPIComponent.IL2_MISS, misses.il2_misses * machine.memory_cycles)
        stack.add(CPIComponent.ITLB_MISS, misses.itlb_misses * machine.tlb_miss_cycles)
        stack.add(CPIComponent.DTLB_MISS, misses.dtlb_misses * machine.tlb_miss_cycles)

        # Branch mispredictions: front-end refill plus branch resolution time.
        per_branch = machine.frontend_depth + self.config.resolution(width)
        stack.add(CPIComponent.BPRED_MISS, misses.mispredictions * per_branch)

        # Long data misses: only the leading miss of each overlapping run is
        # exposed; the rest are hidden by memory-level parallelism.
        serialized = misses.dl2_miss_runs if misses.dl2_miss_runs else misses.dl2_misses
        stack.add(CPIComponent.DL2_MISS, serialized * machine.memory_cycles)

        # Short data misses (L2 hits), non-unit latencies and dependencies are
        # hidden by out-of-order execution; they contribute no cycles, so the
        # corresponding stack components are simply absent.
        return ModelResult(
            name=program.name,
            machine=machine,
            instructions=program.instructions,
            stack=stack,
        )
