"""Penalty formulas of the mechanistic in-order model (Section 3 of the paper).

Every function implements one numbered equation and is written to be directly
testable against the paper's closed forms.  ``width`` is the superscalar
width W; penalties are expressed in cycles (possibly fractional, because a
partially filled issue group costs a fraction of a cycle — Section 3.2).
"""

from __future__ import annotations


def slot_correction(width: int) -> float:
    """The uniform-placement correction (W - 1) / (2 W).

    A miss or long-latency instruction can fall anywhere inside a W-wide
    instruction group; on average (W-1)/2 older instructions execute
    underneath it, hiding (W-1)/(2W) of a cycle (Section 3.3).
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    return (width - 1) / (2.0 * width)


def cache_miss_penalty(miss_latency: float, width: int) -> float:
    """Eq. 3: penalty of a cache or TLB miss."""
    return max(0.0, miss_latency - slot_correction(width))


def branch_misprediction_penalty(frontend_depth: int, width: int) -> float:
    """Eq. 4: penalty of a mispredicted branch (front-end flush + partial group)."""
    if frontend_depth < 1:
        raise ValueError("front-end depth must be at least 1")
    return frontend_depth + slot_correction(width)


def taken_branch_penalty() -> float:
    """Section 3.3: one fetch bubble per (correctly) predicted-taken branch."""
    return 1.0


def long_latency_penalty(latency: float, width: int) -> float:
    """Eq. 6: penalty of a non-unit latency instruction (multiply, divide, ...)."""
    if latency < 1:
        raise ValueError("execution latency must be at least 1 cycle")
    return max(0.0, (latency - 1.0) - slot_correction(width))


def probability_same_stage(distance: int, width: int) -> float:
    """Eq. 9: probability that producer and consumer share a pipeline stage."""
    if distance < 1:
        raise ValueError("dependency distance starts at 1")
    if distance >= width:
        return 0.0
    return (width - distance) / width


def unit_dependency_penalty(distance: int, width: int) -> float:
    """Eq. 11 (single term): penalty per dependency on a unit-latency producer."""
    probability = probability_same_stage(distance, width)
    lost_slots = probability           # Eq. 10 has the same (W - d)/W form
    return probability * lost_slots


def long_dependency_penalty(distance: int, width: int) -> float:
    """Eq. 12 (single term): penalty per dependency on a long-latency producer."""
    if distance < 1:
        raise ValueError("dependency distance starts at 1")
    if distance >= width:
        return 0.0
    return (width - distance) / width


def load_dependency_penalty(distance: int, width: int) -> float:
    """Eq. 16 (single term): penalty per dependency on a load producer.

    Two placements matter (Section 3.5.3): the load and its consumer share the
    decode stage (possible for d < W), or the consumer sits one stage behind
    the load (possible for d < 2W).
    """
    if distance < 1:
        raise ValueError("dependency distance starts at 1")
    if distance >= 2 * width:
        return 0.0
    if distance < width:
        same_stage_probability = (width - distance) / width
        same_stage_penalty = (2 * width - distance) / width      # Eq. 13
        next_stage_probability = distance / width                # Eq. 15, d < W
        next_stage_penalty = 1.0                                 # Eq. 14, d < W
        return (same_stage_probability * same_stage_penalty
                + next_stage_probability * next_stage_penalty)
    # W <= d < 2W: only the consecutive-stage case remains.
    probability = (2 * width - distance) / width                 # Eq. 15
    penalty = (2 * width - distance) / width                     # Eq. 14
    return probability * penalty


def unit_dependency_total(histogram: dict[int, int], width: int) -> float:
    """Eq. 11: total penalty from dependencies on unit-latency producers."""
    return sum(
        count * unit_dependency_penalty(distance, width)
        for distance, count in histogram.items()
        if 1 <= distance < width
    )


def long_dependency_total(histogram: dict[int, int], width: int) -> float:
    """Eq. 12: total penalty from dependencies on long-latency producers."""
    return sum(
        count * long_dependency_penalty(distance, width)
        for distance, count in histogram.items()
        if 1 <= distance < width
    )


def load_dependency_total(histogram: dict[int, int], width: int) -> float:
    """Eq. 16: total penalty from dependencies on load producers."""
    return sum(
        count * load_dependency_penalty(distance, width)
        for distance, count in histogram.items()
        if 1 <= distance < 2 * width
    )
