"""Single source of truth for the columnar trace layout.

Every component that serializes, ships or memory-maps trace columns — the
payload transport in :mod:`repro.trace.trace`, the shared-memory data plane in
:mod:`repro.runtime.dataplane`, the on-disk spill store and the portable
ingestion format in :mod:`repro.trace.store` — consumes :data:`TRACE_COLUMNS`
from here, so the column set and element types cannot drift between layers.
"""

from __future__ import annotations

#: Version of the columnar trace layout.  The on-disk artifact cache
#: (:mod:`repro.runtime.artifacts`), the spill store manifest and the portable
#: ingestion header all key on this number, so bump it whenever the column
#: set, the sentinel conventions or the functional simulator's observable
#: output change.
TRACE_SCHEMA_VERSION = 1

#: Column sentinel for "no value" (``mem_addr``/``next_pc``/``taken`` None).
NO_VALUE = -1

#: The packed columns of a trace, in canonical serialization order, as
#: ``(name, array typecode)`` pairs.  ``q`` is a signed 64-bit integer,
#: ``b`` a signed byte.
TRACE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("pcs", "q"),
    ("next_pcs", "q"),
    ("mem_addrs", "q"),
    ("op_classes", "b"),
    ("taken", "b"),
    ("static_index", "q"),
)

#: Column names only, in canonical order.
COLUMN_NAMES: tuple[str, ...] = tuple(name for name, _ in TRACE_COLUMNS)

#: ``name -> typecode`` for every packed column.
COLUMN_TYPECODES: dict[str, str] = dict(TRACE_COLUMNS)


def column_typecode(column) -> str:
    """``array.typecode``, or the format of a ``memoryview`` column.

    Traces attached through the shared-memory data plane or mapped from a
    spill store carry ``memoryview`` casts of a mapped buffer instead of
    ``array`` objects; both expose the same element type, under different
    attribute names.
    """
    typecode = getattr(column, "typecode", None)
    return typecode if typecode is not None else column.format
