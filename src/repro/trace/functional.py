"""Functional (instruction-set level) simulator.

The functional simulator executes programs of the reproduction ISA on
concrete data and produces the dynamic instruction trace used everywhere
else.  It plays the role of M5's functional simulator in the paper's
profiling flow (Figure 2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_INT_REGS, ZERO_REG
from repro.trace.trace import INSTR_BYTES, DynamicInstruction, Trace

#: Values are kept as 64-bit signed integers.
_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63


class SimulationLimitError(Exception):
    """Raised when a program exceeds the dynamic instruction budget."""


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        value -= 1 << 64
    return value


class MemoryImage:
    """Sparse word-granular data memory.

    Addresses are byte addresses; storage is per 4-byte word.  ``LB``/``SB``
    address individual bytes within a word.  The image also provides helpers
    to lay out arrays, which the workload kernels use to build their inputs.
    """

    WORD_BYTES = 4

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load_word(self, address: int) -> int:
        return self._words.get(address // self.WORD_BYTES, 0)

    def store_word(self, address: int, value: int) -> None:
        self._words[address // self.WORD_BYTES] = _to_signed(value)

    def load_byte(self, address: int) -> int:
        word = self.load_word(address)
        shift = (address % self.WORD_BYTES) * 8
        return (word >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        word_index = address // self.WORD_BYTES
        shift = (address % self.WORD_BYTES) * 8
        word = self._words.get(word_index, 0) & _WORD_MASK
        word &= ~(0xFF << shift)
        word |= (value & 0xFF) << shift
        self._words[word_index] = _to_signed(word)

    # ------------------------------------------------------------------
    # Layout helpers used by workload kernels.
    # ------------------------------------------------------------------
    def write_array(self, base: int, values: Iterable[int]) -> int:
        """Store ``values`` as consecutive words at byte address ``base``.

        Returns the byte address just past the array.
        """
        address = base
        for value in values:
            self.store_word(address, value)
            address += self.WORD_BYTES
        return address

    def read_array(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [
            self.load_word(base + index * self.WORD_BYTES) for index in range(count)
        ]

    def copy(self) -> "MemoryImage":
        clone = MemoryImage()
        clone._words = dict(self._words)
        return clone

    def __len__(self) -> int:
        return len(self._words)


class FunctionalSimulator:
    """Executes a program and records the dynamic instruction stream."""

    def __init__(self, program: Program, memory: MemoryImage | None = None,
                 max_instructions: int = 2_000_000):
        program.validate()
        self.program = program
        self.memory = memory if memory is not None else MemoryImage()
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_INT_REGS

    # ------------------------------------------------------------------
    def _read(self, reg: int | None) -> int:
        if reg is None or reg == ZERO_REG:
            return 0
        return self.registers[reg]

    def _write(self, reg: int | None, value: int) -> None:
        if reg is None or reg == ZERO_REG:
            return
        self.registers[reg] = _to_signed(value)

    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Execute the program to completion and return the trace."""
        return Trace(list(self.step()), name=self.program.name)

    def step(self) -> Iterator[DynamicInstruction]:
        """Generator form of :meth:`run`, yielding one record per instruction."""
        program = self.program
        pc_index = 0
        executed = 0
        n_static = len(program)

        while 0 <= pc_index < n_static:
            if executed >= self.max_instructions:
                raise SimulationLimitError(
                    f"{program.name}: exceeded {self.max_instructions} dynamic "
                    "instructions; likely an infinite loop"
                )
            instruction = program[pc_index]
            opcode = instruction.opcode
            next_index = pc_index + 1
            mem_addr: int | None = None
            taken: bool | None = None

            a = self._read(instruction.src1)
            b = self._read(instruction.src2)
            imm = instruction.imm

            if opcode is Opcode.HALT:
                yield DynamicInstruction(
                    seq=executed,
                    pc=pc_index * INSTR_BYTES,
                    instruction=instruction,
                    next_pc=pc_index * INSTR_BYTES,
                )
                return
            elif opcode is Opcode.NOP:
                pass
            elif opcode is Opcode.ADD:
                self._write(instruction.dest, a + b)
            elif opcode is Opcode.SUB:
                self._write(instruction.dest, a - b)
            elif opcode is Opcode.AND:
                self._write(instruction.dest, a & b)
            elif opcode is Opcode.OR:
                self._write(instruction.dest, a | b)
            elif opcode is Opcode.XOR:
                self._write(instruction.dest, a ^ b)
            elif opcode is Opcode.SLL:
                self._write(instruction.dest, a << (b & 63))
            elif opcode is Opcode.SRL:
                self._write(instruction.dest, (a & _WORD_MASK) >> (b & 63))
            elif opcode is Opcode.SLT:
                self._write(instruction.dest, 1 if a < b else 0)
            elif opcode is Opcode.ADDI:
                self._write(instruction.dest, a + imm)
            elif opcode is Opcode.ANDI:
                self._write(instruction.dest, a & imm)
            elif opcode is Opcode.ORI:
                self._write(instruction.dest, a | imm)
            elif opcode is Opcode.XORI:
                self._write(instruction.dest, a ^ imm)
            elif opcode is Opcode.SLLI:
                self._write(instruction.dest, a << (imm & 63))
            elif opcode is Opcode.SRLI:
                self._write(instruction.dest, (a & _WORD_MASK) >> (imm & 63))
            elif opcode is Opcode.SLTI:
                self._write(instruction.dest, 1 if a < imm else 0)
            elif opcode is Opcode.LI:
                self._write(instruction.dest, imm)
            elif opcode is Opcode.MOV:
                self._write(instruction.dest, a)
            elif opcode is Opcode.MUL:
                self._write(instruction.dest, a * b)
            elif opcode is Opcode.MULI:
                self._write(instruction.dest, a * imm)
            elif opcode is Opcode.DIV:
                self._write(instruction.dest, 0 if b == 0 else int(a / b))
            elif opcode is Opcode.DIVI:
                self._write(instruction.dest, 0 if imm == 0 else int(a / imm))
            elif opcode is Opcode.REM:
                self._write(instruction.dest, 0 if b == 0 else int(a - int(a / b) * b))
            elif opcode is Opcode.LW:
                mem_addr = a + imm
                self._write(instruction.dest, self.memory.load_word(mem_addr))
            elif opcode is Opcode.LB:
                mem_addr = a + imm
                self._write(instruction.dest, self.memory.load_byte(mem_addr))
            elif opcode is Opcode.SW:
                mem_addr = a + imm
                self.memory.store_word(mem_addr, b)
            elif opcode is Opcode.SB:
                mem_addr = a + imm
                self.memory.store_byte(mem_addr, b)
            elif opcode is Opcode.BEQ:
                taken = a == b
            elif opcode is Opcode.BNE:
                taken = a != b
            elif opcode is Opcode.BLT:
                taken = a < b
            elif opcode is Opcode.BGE:
                taken = a >= b
            elif opcode is Opcode.J:
                taken = True
            elif opcode is Opcode.JR:
                taken = True
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"unhandled opcode {opcode}")

            if taken:
                if opcode is Opcode.JR:
                    next_index = self._read(instruction.src1) // INSTR_BYTES
                else:
                    next_index = program.label_address(instruction.target)

            yield DynamicInstruction(
                seq=executed,
                pc=pc_index * INSTR_BYTES,
                instruction=instruction,
                mem_addr=mem_addr,
                taken=taken,
                next_pc=next_index * INSTR_BYTES,
            )
            executed += 1
            pc_index = next_index
