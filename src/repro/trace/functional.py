"""Functional (instruction-set level) simulator.

The functional simulator executes programs of the reproduction ISA on
concrete data and produces the dynamic instruction trace used everywhere
else.  It plays the role of M5's functional simulator in the paper's
profiling flow (Figure 2).

The interpreter is a dispatch table: every static instruction is compiled
once into a closure with its operands, branch target and register/memory
cells pre-bound, and the run loop just calls ``handlers[pc_index]`` and
appends to the packed trace columns.  No per-instruction objects are
allocated while executing; the :class:`~repro.trace.trace.Trace` facade
materializes :class:`~repro.trace.trace.DynamicInstruction` records lazily.

Register values are 64-bit signed; effective addresses must also fit in a
signed 64-bit word (the packed ``mem_addrs`` column enforces this), which
covers the entire address range the workload kernels and the memory models
use.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Iterator

from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_INT_REGS, ZERO_REG
from repro.trace.trace import (
    INSTR_BYTES,
    NO_VALUE,
    OP_CLASS_IDS,
    DynamicInstruction,
    Trace,
)

#: Values are kept as 64-bit signed integers.
_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_WRAP = 1 << 64


class SimulationLimitError(Exception):
    """Raised when a program exceeds the dynamic instruction budget."""


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        value -= 1 << 64
    return value


class MemoryImage:
    """Sparse word-granular data memory.

    Addresses are byte addresses; storage is per 4-byte word.  ``LB``/``SB``
    address individual bytes within a word.  The image also provides helpers
    to lay out arrays, which the workload kernels use to build their inputs.
    """

    WORD_BYTES = 4

    def __init__(self) -> None:
        self._words: dict[int, int] = {}

    def load_word(self, address: int) -> int:
        return self._words.get(address // self.WORD_BYTES, 0)

    def store_word(self, address: int, value: int) -> None:
        self._words[address // self.WORD_BYTES] = _to_signed(value)

    def load_byte(self, address: int) -> int:
        word = self.load_word(address)
        shift = (address % self.WORD_BYTES) * 8
        return (word >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        word_index = address // self.WORD_BYTES
        shift = (address % self.WORD_BYTES) * 8
        word = self._words.get(word_index, 0) & _WORD_MASK
        word &= ~(0xFF << shift)
        word |= (value & 0xFF) << shift
        self._words[word_index] = _to_signed(word)

    # ------------------------------------------------------------------
    # Layout helpers used by workload kernels.
    # ------------------------------------------------------------------
    def write_array(self, base: int, values: Iterable[int]) -> int:
        """Store ``values`` as consecutive words at byte address ``base``.

        Returns the byte address just past the array.
        """
        address = base
        for value in values:
            self.store_word(address, value)
            address += self.WORD_BYTES
        return address

    def read_array(self, base: int, count: int) -> list[int]:
        """Read ``count`` consecutive words starting at ``base``."""
        return [
            self.load_word(base + index * self.WORD_BYTES) for index in range(count)
        ]

    def copy(self) -> "MemoryImage":
        clone = MemoryImage()
        clone._words = dict(self._words)
        return clone

    def __len__(self) -> int:
        return len(self._words)


#: A compiled instruction: () -> (next static index, mem_addr, taken), with
#: ``NO_VALUE`` standing in for "not a memory access" / "not control flow".
_Handler = Callable[[], tuple[int, int, int]]


class FunctionalSimulator:
    """Executes a program and records the dynamic instruction stream."""

    def __init__(self, program: Program, memory: MemoryImage | None = None,
                 max_instructions: int = 2_000_000):
        program.validate()
        self.program = program
        self.memory = memory if memory is not None else MemoryImage()
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_INT_REGS

    # ------------------------------------------------------------------
    # Instruction compilation (one closure per static instruction).
    # ------------------------------------------------------------------
    def _compile(self, index: int, instruction) -> _Handler:
        opcode = instruction.opcode
        regs = self.registers
        nxt = index + 1
        d = instruction.dest
        s1 = instruction.src1 if instruction.src1 is not None else ZERO_REG
        s2 = instruction.src2 if instruction.src2 is not None else ZERO_REG
        imm = instruction.imm
        writes = d is not None and d != ZERO_REG
        N = NO_VALUE
        M, S, W = _WORD_MASK, _SIGN_BIT, _WRAP

        # --- control flow -------------------------------------------------
        if opcode is Opcode.HALT or opcode is Opcode.NOP:
            return lambda: (nxt, N, N)
        if opcode is Opcode.J:
            tgt = self.program.label_address(instruction.target)
            return lambda: (tgt, N, 1)
        if opcode is Opcode.JR:
            return lambda: (regs[s1] // INSTR_BYTES, N, 1)
        if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            tgt = self.program.label_address(instruction.target)
            if opcode is Opcode.BEQ:
                return lambda: (tgt, N, 1) if regs[s1] == regs[s2] else (nxt, N, 0)
            if opcode is Opcode.BNE:
                return lambda: (tgt, N, 1) if regs[s1] != regs[s2] else (nxt, N, 0)
            if opcode is Opcode.BLT:
                return lambda: (tgt, N, 1) if regs[s1] < regs[s2] else (nxt, N, 0)
            return lambda: (tgt, N, 1) if regs[s1] >= regs[s2] else (nxt, N, 0)

        # --- memory -------------------------------------------------------
        # The word store is inlined for speed: the sparse dict and the word
        # size are MemoryImage's layout (load_word/store_word), and stored
        # register values are already 64-bit-signed so store_word's wrap is
        # a no-op here.
        words = self.memory._words
        word_bytes = self.memory.WORD_BYTES
        if opcode is Opcode.LW:
            if writes:
                def lw() -> tuple[int, int, int]:
                    addr = regs[s1] + imm
                    regs[d] = words.get(addr // word_bytes, 0)
                    return (nxt, addr, N)
                return lw
            return lambda: (nxt, regs[s1] + imm, N)
        if opcode is Opcode.SW:
            def sw() -> tuple[int, int, int]:
                addr = regs[s1] + imm
                words[addr // word_bytes] = regs[s2]
                return (nxt, addr, N)
            return sw
        if opcode is Opcode.LB:
            load_byte = self.memory.load_byte
            if writes:
                def lb() -> tuple[int, int, int]:
                    addr = regs[s1] + imm
                    regs[d] = load_byte(addr)
                    return (nxt, addr, N)
                return lb
            return lambda: (nxt, regs[s1] + imm, N)
        if opcode is Opcode.SB:
            store_byte = self.memory.store_byte
            def sb() -> tuple[int, int, int]:
                addr = regs[s1] + imm
                store_byte(addr, regs[s2])
                return (nxt, addr, N)
            return sb

        # --- arithmetic / logic -------------------------------------------
        # Results are wrapped to 64-bit signed exactly like ``_to_signed``.
        if not writes:
            # The destination is r0 (or absent): the result is discarded and
            # there are no side effects, so the instruction degenerates.
            return lambda: (nxt, N, N)
        if opcode is Opcode.ADD:
            def h():
                v = (regs[s1] + regs[s2]) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SUB:
            def h():
                v = (regs[s1] - regs[s2]) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.AND:
            def h():
                regs[d] = regs[s1] & regs[s2]
                return (nxt, N, N)
        elif opcode is Opcode.OR:
            def h():
                regs[d] = regs[s1] | regs[s2]
                return (nxt, N, N)
        elif opcode is Opcode.XOR:
            def h():
                regs[d] = regs[s1] ^ regs[s2]
                return (nxt, N, N)
        elif opcode is Opcode.SLL:
            def h():
                v = (regs[s1] << (regs[s2] & 63)) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SRL:
            def h():
                v = (regs[s1] & M) >> (regs[s2] & 63)
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SLT:
            def h():
                regs[d] = 1 if regs[s1] < regs[s2] else 0
                return (nxt, N, N)
        elif opcode is Opcode.ADDI:
            def h():
                v = (regs[s1] + imm) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.ANDI:
            def h():
                v = (regs[s1] & imm) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.ORI:
            def h():
                v = (regs[s1] | imm) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.XORI:
            def h():
                v = (regs[s1] ^ imm) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SLLI:
            shift = imm & 63
            def h():
                v = (regs[s1] << shift) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SRLI:
            shift = imm & 63
            def h():
                v = (regs[s1] & M) >> shift
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.SLTI:
            def h():
                regs[d] = 1 if regs[s1] < imm else 0
                return (nxt, N, N)
        elif opcode is Opcode.LI:
            value = _to_signed(imm)
            def h():
                regs[d] = value
                return (nxt, N, N)
        elif opcode is Opcode.MOV:
            def h():
                regs[d] = regs[s1]
                return (nxt, N, N)
        elif opcode is Opcode.MUL:
            def h():
                v = (regs[s1] * regs[s2]) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.MULI:
            def h():
                v = (regs[s1] * imm) & M
                regs[d] = v - W if v & S else v
                return (nxt, N, N)
        elif opcode is Opcode.DIV:
            def h():
                b = regs[s2]
                regs[d] = 0 if b == 0 else _to_signed(int(regs[s1] / b))
                return (nxt, N, N)
        elif opcode is Opcode.DIVI:
            if imm == 0:
                def h():
                    regs[d] = 0
                    return (nxt, N, N)
            else:
                def h():
                    regs[d] = _to_signed(int(regs[s1] / imm))
                    return (nxt, N, N)
        elif opcode is Opcode.REM:
            def h():
                a, b = regs[s1], regs[s2]
                regs[d] = 0 if b == 0 else _to_signed(a - int(a / b) * b)
                return (nxt, N, N)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"unhandled opcode {opcode}")
        return h

    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Execute the program to completion and return the columnar trace."""
        program = self.program
        statics = program.instructions
        n_static = len(statics)
        handlers = [self._compile(i, ins) for i, ins in enumerate(statics)]
        halts = [ins.opcode is Opcode.HALT for ins in statics]
        class_ids = bytes(OP_CLASS_IDS[ins.op_class] for ins in statics)

        pcs = array("q")
        next_pcs = array("q")
        mem_addrs = array("q")
        op_classes = array("b")
        taken = array("b")
        static_index = array("q")
        append_pc = pcs.append
        append_next = next_pcs.append
        append_mem = mem_addrs.append
        append_op = op_classes.append
        append_taken = taken.append
        append_static = static_index.append

        pc_index = 0
        executed = 0
        limit = self.max_instructions
        while 0 <= pc_index < n_static:
            if executed >= limit:
                raise SimulationLimitError(
                    f"{program.name}: exceeded {self.max_instructions} dynamic "
                    "instructions; likely an infinite loop"
                )
            nxt, mem, tk = handlers[pc_index]()
            append_pc(pc_index * INSTR_BYTES)
            append_static(pc_index)
            append_op(class_ids[pc_index])
            append_mem(mem)
            append_taken(tk)
            if halts[pc_index]:
                append_next(pc_index * INSTR_BYTES)
                break
            append_next(nxt * INSTR_BYTES)
            executed += 1
            pc_index = nxt

        return Trace.from_columns(
            statics=statics,
            pcs=pcs,
            next_pcs=next_pcs,
            mem_addrs=mem_addrs,
            op_classes=op_classes,
            taken=taken,
            static_index=static_index,
            name=program.name,
        )

    def step(self) -> Iterator[DynamicInstruction]:
        """Generator form of :meth:`run`, yielding one record per instruction.

        Compatibility shim: the program is executed eagerly by :meth:`run`
        (register and memory state are mutated exactly once), then the
        materialized records are yielded in order.
        """
        yield from self.run()
