"""Dynamic instruction records and traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass


#: Size of one instruction in bytes; fetch addresses are ``index * INSTR_BYTES``.
INSTR_BYTES = 4


@dataclass(frozen=True)
class DynamicInstruction:
    """One committed instruction of a dynamic execution.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    pc:
        Byte address of the instruction (static index times 4).
    instruction:
        The static :class:`~repro.isa.instructions.Instruction`.
    mem_addr:
        Effective byte address for loads/stores, otherwise ``None``.
    taken:
        Branch outcome for control instructions, otherwise ``None``.
    next_pc:
        Byte address of the next dynamic instruction.
    """

    seq: int
    pc: int
    instruction: Instruction
    mem_addr: int | None = None
    taken: bool | None = None
    next_pc: int | None = None

    @property
    def op_class(self) -> OpClass:
        return self.instruction.op_class

    @property
    def is_load(self) -> bool:
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        return self.instruction.is_store

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_control(self) -> bool:
        return self.instruction.is_control

    @property
    def is_long_latency(self) -> bool:
        return self.instruction.is_long_latency

    def dest_regs(self) -> tuple[int, ...]:
        return self.instruction.dest_regs()

    def src_regs(self) -> tuple[int, ...]:
        return self.instruction.src_regs()


class Trace:
    """A materialized dynamic instruction trace.

    The trace also remembers the workload name so that downstream reports
    (figures, CPI stacks) can label their rows.
    """

    def __init__(self, instructions: Iterable[DynamicInstruction], name: str = "trace"):
        self._instructions = list(instructions)
        self.name = name

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self._instructions[index]

    @property
    def instructions(self) -> list[DynamicInstruction]:
        return self._instructions

    def count(self, op_class: OpClass) -> int:
        """Number of dynamic instructions of the given class."""
        return sum(1 for dyn in self._instructions if dyn.op_class is op_class)

    def instruction_mix(self) -> dict[OpClass, int]:
        """Histogram of dynamic instruction classes."""
        mix: dict[OpClass, int] = {}
        for dyn in self._instructions:
            mix[dyn.op_class] = mix.get(dyn.op_class, 0) + 1
        return mix

    def memory_accesses(self) -> Iterator[DynamicInstruction]:
        """Iterate over loads and stores only."""
        return (dyn for dyn in self._instructions if dyn.instruction.is_memory)

    def branches(self) -> Iterator[DynamicInstruction]:
        """Iterate over control-flow instructions only."""
        return (dyn for dyn in self._instructions if dyn.is_control)
