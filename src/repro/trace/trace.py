"""Dynamic instruction records and traces.

Storage is columnar (struct of arrays): a :class:`Trace` keeps one packed
``array`` per field of the dynamic stream (``pcs``, ``next_pcs``,
``mem_addrs``, ``op_classes``, ``taken``, ``static_index``) plus the tuple of
distinct static :class:`~repro.isa.instructions.Instruction` objects the
``static_index`` column points into.  The profilers and the design-space
engine walk these arrays directly; the per-instruction
:class:`DynamicInstruction` dataclass survives as a lazily materialized
compatibility facade for the pipeline simulators and the tests.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace_schema import (  # noqa: F401  (re-exported legacy names)
    COLUMN_NAMES,
    NO_VALUE,
    TRACE_COLUMNS,
    TRACE_SCHEMA_VERSION,
    column_typecode as _typecode,
)

#: Size of one instruction in bytes; fetch addresses are ``index * INSTR_BYTES``.
INSTR_BYTES = 4

#: Stable ordinal assigned to each :class:`OpClass` in the packed
#: ``op_classes`` column (and its inverse mapping).
OP_CLASS_BY_ID: tuple[OpClass, ...] = tuple(OpClass)
OP_CLASS_IDS: dict[OpClass, int] = {op: i for i, op in enumerate(OP_CLASS_BY_ID)}

_LOAD_ID = OP_CLASS_IDS[OpClass.LOAD]
_STORE_ID = OP_CLASS_IDS[OpClass.STORE]
_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]


@dataclass(frozen=True)
class DynamicInstruction:
    """One committed instruction of a dynamic execution.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    pc:
        Byte address of the instruction (static index times 4).
    instruction:
        The static :class:`~repro.isa.instructions.Instruction`.
    mem_addr:
        Effective byte address for loads/stores, otherwise ``None``.
    taken:
        Branch outcome for control instructions, otherwise ``None``.
    next_pc:
        Byte address of the next dynamic instruction.
    """

    seq: int
    pc: int
    instruction: Instruction
    mem_addr: int | None = None
    taken: bool | None = None
    next_pc: int | None = None

    @property
    def op_class(self) -> OpClass:
        return self.instruction.op_class

    @property
    def is_load(self) -> bool:
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        return self.instruction.is_store

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_control(self) -> bool:
        return self.instruction.is_control

    @property
    def is_long_latency(self) -> bool:
        return self.instruction.is_long_latency

    def dest_regs(self) -> tuple[int, ...]:
        return self.instruction.dest_regs()

    def src_regs(self) -> tuple[int, ...]:
        return self.instruction.src_regs()


class Trace:
    """A materialized dynamic instruction trace (columnar storage).

    The trace also remembers the workload name so that downstream reports
    (figures, CPI stacks) can label their rows.

    Columns
    -------
    ``pcs``, ``next_pcs``:
        Byte addresses (``next_pcs`` holds :data:`NO_VALUE` for ``None``).
    ``mem_addrs``:
        Effective address for loads/stores, :data:`NO_VALUE` otherwise.
    ``op_classes``:
        :data:`OP_CLASS_IDS` ordinal of every instruction's class.
    ``taken``:
        ``1``/``0`` for resolved control flow, :data:`NO_VALUE` otherwise.
    ``static_index``:
        Index into :attr:`statics` of the executing static instruction.
    ``seqs``:
        Dynamic sequence numbers (a ``range`` for simulator-built traces).
    """

    def __init__(self, instructions: Iterable[DynamicInstruction] = (),
                 name: str = "trace"):
        self.name = name
        items = list(instructions)
        self._materialized: list[DynamicInstruction] | None = items
        statics: list[Instruction] = []
        static_ids: dict[int, int] = {}
        pcs = array("q")
        next_pcs = array("q")
        mem_addrs = array("q")
        op_classes = array("b")
        taken = array("b")
        static_index = array("q")
        seqs = array("q")
        for dyn in items:
            instruction = dyn.instruction
            slot = static_ids.get(id(instruction))
            if slot is None:
                slot = len(statics)
                static_ids[id(instruction)] = slot
                statics.append(instruction)
            pcs.append(dyn.pc)
            next_pcs.append(NO_VALUE if dyn.next_pc is None else dyn.next_pc)
            if dyn.mem_addr is not None:
                mem_addrs.append(dyn.mem_addr)
            elif instruction.is_memory:
                # A memory record without an address: store the address the
                # memory system would see (the replay path uses ``addr or 0``),
                # so profilers reading the column agree with the replay.
                mem_addrs.append(0)
            else:
                mem_addrs.append(NO_VALUE)
            op_classes.append(OP_CLASS_IDS[instruction.op_class])
            taken.append(NO_VALUE if dyn.taken is None else int(dyn.taken))
            static_index.append(slot)
            seqs.append(dyn.seq)
        self.statics: tuple[Instruction, ...] = tuple(statics)
        self.pcs = pcs
        self.next_pcs = next_pcs
        self.mem_addrs = mem_addrs
        self.op_classes = op_classes
        self.taken = taken
        self.static_index = static_index
        self.seqs: Sequence[int] = seqs

    @classmethod
    def from_columns(cls, *, statics: Sequence[Instruction], pcs: array,
                     next_pcs: array, mem_addrs: array, op_classes: array,
                     taken: array, static_index: array,
                     name: str = "trace", seq_start: int = 0) -> "Trace":
        """Build a trace directly from packed columns (no facade objects).

        ``seq_start`` offsets the dynamic sequence numbers: chunk views of a
        longer stream (:class:`repro.trace.store.ChunkedTrace`) pass the
        chunk's global start position so dependency distances and L2
        interleave ordering stay global.
        """
        trace = cls.__new__(cls)
        trace.name = name
        trace._materialized = None
        trace.statics = tuple(statics)
        trace.pcs = pcs
        trace.next_pcs = next_pcs
        trace.mem_addrs = mem_addrs
        trace.op_classes = op_classes
        trace.taken = taken
        trace.static_index = static_index
        trace.seqs = range(seq_start, seq_start + len(pcs))
        return trace

    def columns(self) -> dict:
        """The packed columns plus statics, as accepted by :meth:`from_columns`.

        This is the trace's serialization surface: everything derived (facade
        objects, attached profiling engines) is excluded, so pickling the
        returned mapping captures exactly the dynamic execution.
        """
        return {
            "statics": self.statics,
            "pcs": self.pcs,
            "next_pcs": self.next_pcs,
            "mem_addrs": self.mem_addrs,
            "op_classes": self.op_classes,
            "taken": self.taken,
            "static_index": self.static_index,
            "name": self.name,
        }

    # ------------------------------------------------------------------
    # Zero-copy column shipping (process-pool transport).
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The trace as raw column bytes plus statics.

        The packed columns travel as ``(typecode, bytes)`` pairs produced by
        ``array.tobytes`` — a flat buffer copy instead of a pickled object
        graph — which is how the sweep planner ships an already-generated
        trace to pool workers.  :meth:`from_payload` is the inverse.
        """
        payload = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "statics": self.statics,
            "columns": {
                name: (_typecode(getattr(self, name)), getattr(self, name).tobytes())
                for name in COLUMN_NAMES
            },
        }
        seq_start = self.seqs.start if isinstance(self.seqs, range) else (
            self.seqs[0] if len(self.seqs) else 0)
        if seq_start:
            payload["seq_start"] = seq_start
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_payload` output (frombytes)."""
        if payload.get("schema_version") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace payload schema {payload.get('schema_version')!r} "
                f"does not match {TRACE_SCHEMA_VERSION}"
            )
        columns = {}
        for name, (typecode, raw) in payload["columns"].items():
            column = array(typecode)
            column.frombytes(raw)
            columns[name] = column
        return cls.from_columns(statics=payload["statics"],
                                name=payload["name"],
                                seq_start=payload.get("seq_start", 0),
                                **columns)

    # ------------------------------------------------------------------
    # Facade materialization.
    # ------------------------------------------------------------------
    def _make(self, index: int) -> DynamicInstruction:
        instruction = self.statics[self.static_index[index]]
        taken = self.taken[index]
        next_pc = self.next_pcs[index]
        return DynamicInstruction(
            seq=self.seqs[index],
            pc=self.pcs[index],
            instruction=instruction,
            # Memory instructions always carry an effective address (so even
            # a raw -1 is an address, not the sentinel); nothing else does.
            mem_addr=self.mem_addrs[index] if instruction.is_memory else None,
            taken=None if taken == NO_VALUE else bool(taken),
            next_pc=None if next_pc == NO_VALUE else next_pc,
        )

    def _materialize(self) -> list[DynamicInstruction]:
        if self._materialized is None:
            self._materialized = [self._make(i) for i in range(len(self.pcs))]
        return self._materialized

    # ------------------------------------------------------------------
    # Sequence protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self._materialize())

    def __getitem__(self, index):
        if self._materialized is not None:
            return self._materialized[index]
        if isinstance(index, slice):
            # Materialize only the requested rows, not the whole trace.
            return [self._make(i) for i in range(*index.indices(len(self.pcs)))]
        length = len(self.pcs)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("trace index out of range")
        return self._make(index)

    @property
    def instructions(self) -> list[DynamicInstruction]:
        return self._materialize()

    # ------------------------------------------------------------------
    # Columnar queries (no facade objects involved).
    # ------------------------------------------------------------------
    def count(self, op_class: OpClass) -> int:
        """Number of dynamic instructions of the given class."""
        column = self.op_classes
        target = OP_CLASS_IDS[op_class]
        counter = getattr(column, "count", None)
        if counter is not None:
            return counter(target)
        # memoryview column (shared-memory attached trace): one byte per
        # element, so counting the raw bytes counts the elements.
        return column.tobytes().count(target.to_bytes(1, "little"))

    def instruction_mix(self) -> dict[OpClass, int]:
        """Histogram of dynamic instruction classes (first-seen order)."""
        return {
            OP_CLASS_BY_ID[class_id]: count
            for class_id, count in Counter(self.op_classes).items()
        }

    def memory_accesses(self) -> Iterator[DynamicInstruction]:
        """Iterate over loads and stores only."""
        materialized = self._materialized
        for index, class_id in enumerate(self.op_classes):
            if class_id == _LOAD_ID or class_id == _STORE_ID:
                yield materialized[index] if materialized is not None else self._make(index)

    def branches(self) -> Iterator[DynamicInstruction]:
        """Iterate over control-flow instructions only."""
        materialized = self._materialized
        for index, class_id in enumerate(self.op_classes):
            if class_id == _BRANCH_ID or class_id == _JUMP_ID:
                yield materialized[index] if materialized is not None else self._make(index)


class ChunkedTrace:
    """A long dynamic trace as a sequence of fixed-size packed-column chunks.

    Each chunk is an ordinary :class:`Trace` sharing the stream's statics
    tuple, with **global** sequence numbers (``seqs = range(start, stop)``),
    so every existing profiler sees exactly the rows it would see in the
    monolithic trace.  Chunks are produced lazily through a loader callable:
    an in-memory chunked trace serves zero-copy ``memoryview`` slices of the
    parent's columns, a spill-store-backed one (:class:`repro.trace.store.TraceStore`)
    memory-maps one file per column per chunk — either way only one chunk
    needs to be resident while streaming.
    """

    def __init__(self, *, name: str, statics: Sequence[Instruction],
                 lengths: Sequence[int], chunk_length: int, loader,
                 digests: "list[str | None] | None" = None):
        if chunk_length <= 0:
            raise ValueError("chunk_length must be positive")
        self.name = name
        self.statics: tuple[Instruction, ...] = tuple(statics)
        self.chunk_length = chunk_length
        self._lengths = list(lengths)
        starts = [0]
        for length in self._lengths:
            starts.append(starts[-1] + length)
        self._starts = starts
        self._loader = loader
        #: Per-chunk content digests (``None`` until computed); spill stores
        #: record them in the manifest, in-memory chunks compute on demand
        #: (see :func:`repro.trace.store.chunk_digest`).
        self.digests: list[str | None] = (
            list(digests) if digests is not None else [None] * len(self._lengths)
        )

    # -- geometry ------------------------------------------------------
    def __len__(self) -> int:
        return self._starts[-1]

    @property
    def num_chunks(self) -> int:
        return len(self._lengths)

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        """Global ``(start, stop)`` row range of one chunk."""
        return self._starts[index], self._starts[index + 1]

    # -- chunk access --------------------------------------------------
    def chunk(self, index: int) -> Trace:
        """Materialize one chunk as a :class:`Trace` with global seqs."""
        if not 0 <= index < len(self._lengths):
            raise IndexError("chunk index out of range")
        trace = self._loader(index)
        if len(trace) != self._lengths[index]:
            raise ValueError(
                f"chunk {index} of {self.name!r} has {len(trace)} rows, "
                f"manifest says {self._lengths[index]}"
            )
        return trace

    def chunks(self) -> Iterator[Trace]:
        """Iterate chunks in stream order (one resident at a time)."""
        for index in range(len(self._lengths)):
            yield self.chunk(index)

    def to_trace(self) -> Trace:
        """Concatenate every chunk into one in-memory :class:`Trace`."""
        columns = {name: array(code) for name, code in TRACE_COLUMNS}
        for chunk in self.chunks():
            for name in COLUMN_NAMES:
                columns[name].frombytes(getattr(chunk, name).tobytes())
        return Trace.from_columns(statics=self.statics, name=self.name,
                                  **columns)

    # -- construction --------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace, chunk_length: int) -> "ChunkedTrace":
        """Split an in-memory trace into zero-copy chunk views."""
        if chunk_length <= 0:
            raise ValueError("chunk_length must be positive")
        total = len(trace)
        bounds = [(start, min(start + chunk_length, total))
                  for start in range(0, total, chunk_length)] or [(0, 0)]
        views = {name: memoryview(getattr(trace, name))
                 for name in COLUMN_NAMES}

        def load(index: int) -> Trace:
            start, stop = bounds[index]
            return Trace.from_columns(
                statics=trace.statics, name=trace.name, seq_start=start,
                **{name: views[name][start:stop] for name in COLUMN_NAMES},
            )

        return cls(name=trace.name, statics=trace.statics,
                   lengths=[stop - start for start, stop in bounds],
                   chunk_length=chunk_length, loader=load)
