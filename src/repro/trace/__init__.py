"""Dynamic instruction traces and the functional simulator that produces them.

The profiling flow of the paper (Figure 2) starts from a functional run of the
program binary.  Here the :class:`~repro.trace.functional.FunctionalSimulator`
executes a :class:`~repro.isa.program.Program` on concrete input data and
emits a :class:`~repro.trace.trace.Trace` of
:class:`~repro.trace.trace.DynamicInstruction` records.  The same trace feeds

* the program profiler (instruction mix, dependency distances),
* the cache / TLB / branch-predictor simulators, and
* the cycle-accurate pipeline simulators,

so every consumer sees exactly the same dynamic instruction stream.
"""

from repro.trace.trace import ChunkedTrace, DynamicInstruction, Trace
from repro.trace.functional import FunctionalSimulator, MemoryImage, SimulationLimitError

__all__ = [
    "ChunkedTrace",
    "DynamicInstruction",
    "Trace",
    "FunctionalSimulator",
    "MemoryImage",
    "SimulationLimitError",
]
