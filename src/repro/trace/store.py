"""On-disk trace spilling and the portable trace ingestion format.

Two persistence layers for :class:`~repro.trace.trace.ChunkedTrace`:

``TraceStore`` — the **spill format**.  A directory holding one raw
little-endian file per column per chunk (``chunk000042.pcs.bin``), a JSON
manifest and a JSON statics table.  Generation appends chunks as they are
produced (never holding more than one in memory) and profiling memory-maps
them back one at a time, so a workload 100–1000x longer than RAM-resident
traces streams through the single-pass engine at bounded memory.  The
per-chunk layout is exactly the ``to_payload`` column layout, versioned by
:data:`~repro.trace.trace_schema.TRACE_SCHEMA_VERSION`, and every chunk
records a SHA-256 content digest so per-chunk profiles can be cached
content-addressed (re-sampling at a different rate reuses them).

``write_portable`` / ``import_portable`` — the **ingestion format**.  One
flat file with a magic line, a JSON header (schema version, column table,
statics) and the raw column bytes, column-major.  It is the documented
surface for evaluating traces produced by outside tooling: ``repro trace
import`` converts such a file into a spill store chunk by chunk, without
materializing the trace.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import sys
from array import array
from pathlib import Path
from typing import Iterable

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.trace import ChunkedTrace, Trace
from repro.trace.trace_schema import (
    COLUMN_NAMES,
    COLUMN_TYPECODES,
    TRACE_COLUMNS,
    TRACE_SCHEMA_VERSION,
)

#: Version of the spill-store directory layout (manifest + chunk files).
STORE_FORMAT_VERSION = 1

#: Magic first line of the portable ingestion format, with its version.
PORTABLE_MAGIC = "#REPRO-TRACE 1"

_MANIFEST = "manifest.json"
_STATICS = "statics.json"

_ITEMSIZE = {code: array(code).itemsize for _, code in TRACE_COLUMNS}


def _require_little_endian() -> None:
    if sys.byteorder != "little":
        raise NotImplementedError(
            "trace stores and portable trace files are little-endian; "
            "this platform is big-endian"
        )


# ----------------------------------------------------------------------
# Statics (de)serialization — shared by the store and the portable format.
# ----------------------------------------------------------------------
def encode_statics(statics: Iterable[Instruction]) -> list[dict]:
    """Static instructions as plain JSON-able dicts (stable field set)."""
    return [
        {
            "opcode": ins.opcode.name,
            "dest": ins.dest,
            "src1": ins.src1,
            "src2": ins.src2,
            "imm": ins.imm,
            "target": ins.target,
            "tag": ins.tag,
        }
        for ins in statics
    ]


def decode_statics(encoded: Iterable[dict]) -> tuple[Instruction, ...]:
    return tuple(
        Instruction(
            opcode=Opcode[item["opcode"]],
            dest=item.get("dest"),
            src1=item.get("src1"),
            src2=item.get("src2"),
            imm=item.get("imm", 0),
            target=item.get("target"),
            tag=item.get("tag"),
        )
        for item in encoded
    )


def statics_digest(statics: Iterable[Instruction]) -> str:
    """SHA-256 over the canonical JSON encoding of the statics table."""
    encoded = json.dumps(encode_statics(statics), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def trace_digest(chunk: Trace, statics_hex: str) -> str:
    """Content digest of one chunk: statics digest + raw column bytes.

    Sequence numbers are deliberately excluded: an isolated chunk profile
    depends only on the rows and the statics (distances and interleave gaps
    are seq *differences*), so the same chunk content addresses the same
    cached profile wherever it sits in the stream.
    """
    digest = hashlib.sha256(bytes.fromhex(statics_hex))
    for name in COLUMN_NAMES:
        digest.update(getattr(chunk, name).tobytes())
    return digest.hexdigest()


def chunk_digest(chunked: ChunkedTrace, index: int) -> str:
    """The content digest of one chunk, computed at most once."""
    cached = chunked.digests[index]
    if cached is not None:
        return cached
    statics_hex = getattr(chunked, "_statics_digest", None)
    if statics_hex is None:
        statics_hex = statics_digest(chunked.statics)
        chunked._statics_digest = statics_hex
    digest = trace_digest(chunked.chunk(index), statics_hex)
    chunked.digests[index] = digest
    return digest


# ----------------------------------------------------------------------
# Spill store.
# ----------------------------------------------------------------------
def _chunk_file(index: int, column: str) -> str:
    return f"chunk{index:06d}.{column}.bin"


class TraceStoreWriter:
    """Appends chunks to a spill store directory, one at a time.

    ``append`` writes the chunk's column files and records its digest;
    ``finalize`` writes the statics table and the manifest (the manifest
    is written last, so a store without one is recognizably incomplete).
    """

    def __init__(self, path: str | Path, *, name: str, chunk_length: int):
        _require_little_endian()
        if chunk_length <= 0:
            raise ValueError("chunk_length must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / _MANIFEST).exists():
            raise FileExistsError(f"{self.path} already holds a trace store")
        self.name = name
        self.chunk_length = chunk_length
        self._rows: list[int] = []
        self._statics: tuple[Instruction, ...] = ()
        self._finalized = False

    def append(self, chunk: Trace) -> None:
        if self._finalized:
            raise RuntimeError("store already finalized")
        index = len(self._rows)
        for column in COLUMN_NAMES:
            data = getattr(chunk, column)
            with open(self.path / _chunk_file(index, column), "wb") as fh:
                fh.write(data.tobytes())
        # Streamed generators intern statics into one growing table; each
        # chunk carries the table as of its flush, so the longest one wins.
        if len(chunk.statics) >= len(self._statics):
            self._statics = chunk.statics
        self._rows.append(len(chunk))

    def finalize(self) -> "ChunkedTrace":
        if self._finalized:
            raise RuntimeError("store already finalized")
        self._finalized = True
        statics_hex = statics_digest(self._statics)
        with open(self.path / _STATICS, "w", encoding="utf-8") as fh:
            json.dump(encode_statics(self._statics), fh)
        manifest = {
            "store_version": STORE_FORMAT_VERSION,
            "schema_version": TRACE_SCHEMA_VERSION,
            "byte_order": "little",
            "name": self.name,
            "length": sum(self._rows),
            "chunk_length": self.chunk_length,
            "columns": [[name, code] for name, code in TRACE_COLUMNS],
            "statics_digest": statics_hex,
            "chunks": [{"rows": rows} for rows in self._rows],
        }
        # Digest each chunk from its on-disk bytes (they are already raw
        # column payloads), so the recorded digest describes the files.
        opened = TraceStore.open(self.path, _manifest=manifest,
                                 _statics=self._statics)
        for index in range(opened.num_chunks):
            manifest["chunks"][index]["digest"] = trace_digest(
                opened.chunk(index), statics_hex)
        tmp = self.path / (_MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
        tmp.replace(self.path / _MANIFEST)
        return TraceStore.open(self.path)


class TraceStore:
    """Namespace for opening and writing spill stores."""

    @staticmethod
    def write(trace: "Trace | ChunkedTrace", path: str | Path,
              chunk_length: int = 65536) -> ChunkedTrace:
        """Spill a trace to disk, one chunk at a time; returns the opened store."""
        if isinstance(trace, Trace):
            trace = ChunkedTrace.from_trace(trace, chunk_length)
        writer = TraceStoreWriter(path, name=trace.name,
                                  chunk_length=trace.chunk_length)
        for chunk in trace.chunks():
            writer.append(chunk)
        return writer.finalize()

    @staticmethod
    def open(path: str | Path, *, _manifest: dict | None = None,
             _statics: tuple | None = None) -> ChunkedTrace:
        """A :class:`ChunkedTrace` whose chunks memory-map the store's files."""
        _require_little_endian()
        root = Path(path)
        if _manifest is None:
            try:
                with open(root / _MANIFEST, encoding="utf-8") as fh:
                    manifest = json.load(fh)
            except FileNotFoundError:
                raise FileNotFoundError(
                    f"{root} is not a trace store (no {_MANIFEST})"
                ) from None
        else:
            manifest = _manifest
        if manifest.get("store_version") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"trace store {root} has format "
                f"{manifest.get('store_version')!r}, expected "
                f"{STORE_FORMAT_VERSION}"
            )
        if manifest.get("schema_version") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace store {root} carries trace schema "
                f"{manifest.get('schema_version')!r}, expected "
                f"{TRACE_SCHEMA_VERSION}"
            )
        if manifest.get("byte_order", "little") != "little":
            raise NotImplementedError("big-endian trace stores are not supported")
        columns = [tuple(entry) for entry in manifest["columns"]]
        if tuple(columns) != TRACE_COLUMNS:
            raise ValueError(
                f"trace store {root} column table {columns!r} does not "
                f"match the schema {TRACE_COLUMNS!r}"
            )
        if _statics is None:
            with open(root / _STATICS, encoding="utf-8") as fh:
                statics = decode_statics(json.load(fh))
        else:
            statics = tuple(_statics)
        rows = [entry["rows"] for entry in manifest["chunks"]]
        starts = [0]
        for count in rows:
            starts.append(starts[-1] + count)
        name = manifest["name"]

        def load(index: int) -> Trace:
            loaded = {}
            for column, typecode in TRACE_COLUMNS:
                file_path = root / _chunk_file(index, column)
                expected = rows[index] * _ITEMSIZE[typecode]
                if rows[index] == 0:
                    loaded[column] = array(typecode)
                    continue
                with open(file_path, "rb") as fh:
                    mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                if mapped.size() != expected:
                    raise ValueError(
                        f"{file_path} holds {mapped.size()} bytes, manifest "
                        f"says {expected}"
                    )
                # The memoryview keeps the mapping alive for the chunk's
                # lifetime; dropping the chunk unmaps it.
                loaded[column] = memoryview(mapped).cast(typecode)
            return Trace.from_columns(statics=statics, name=name,
                                      seq_start=starts[index], **loaded)

        chunked = ChunkedTrace(
            name=name, statics=statics, lengths=rows,
            chunk_length=manifest["chunk_length"], loader=load,
            digests=[entry.get("digest") for entry in manifest["chunks"]],
        )
        chunked._statics_digest = manifest.get("statics_digest")
        chunked.store_path = root
        return chunked


def store_info(path: str | Path) -> dict:
    """The manifest of a spill store, with derived size figures."""
    root = Path(path)
    with open(root / _MANIFEST, encoding="utf-8") as fh:
        manifest = json.load(fh)
    row_bytes = sum(_ITEMSIZE[code] for _, code in TRACE_COLUMNS)
    manifest["bytes_per_row"] = row_bytes
    manifest["total_column_bytes"] = row_bytes * manifest["length"]
    manifest["num_chunks"] = len(manifest["chunks"])
    return manifest


# ----------------------------------------------------------------------
# Portable ingestion format.
# ----------------------------------------------------------------------
def write_portable(trace: "Trace | ChunkedTrace", path: str | Path) -> None:
    """Serialize a trace into the portable ingestion format.

    Layout: the magic line, one JSON header line (schema version, length,
    column table, statics), then each column's raw little-endian bytes in
    canonical column order (column-major over the whole stream).
    """
    _require_little_endian()
    if isinstance(trace, Trace):
        chunked = ChunkedTrace.from_trace(trace, max(1, len(trace)))
    else:
        chunked = trace
    header = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "byte_order": "little",
        "name": chunked.name,
        "length": len(chunked),
        "columns": [[name, code] for name, code in TRACE_COLUMNS],
        "statics": encode_statics(chunked.statics),
    }
    with open(path, "wb") as fh:
        fh.write((PORTABLE_MAGIC + "\n").encode("ascii"))
        fh.write((json.dumps(header, separators=(",", ":")) + "\n")
                 .encode("utf-8"))
        for column in COLUMN_NAMES:
            for chunk in chunked.chunks():
                fh.write(getattr(chunk, column).tobytes())


def _read_portable_header(fh) -> tuple[dict, int]:
    magic = fh.readline().decode("ascii", "replace").rstrip("\n")
    if magic != PORTABLE_MAGIC:
        raise ValueError(
            f"not a portable trace file (first line {magic!r}, expected "
            f"{PORTABLE_MAGIC!r})"
        )
    header = json.loads(fh.readline().decode("utf-8"))
    if header.get("schema_version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"portable trace carries schema "
            f"{header.get('schema_version')!r}, expected "
            f"{TRACE_SCHEMA_VERSION}"
        )
    if header.get("byte_order", "little") != "little":
        raise NotImplementedError("big-endian portable traces are not supported")
    if [tuple(entry) for entry in header["columns"]] != list(TRACE_COLUMNS):
        raise ValueError(
            f"portable trace column table {header['columns']!r} does not "
            f"match the schema {TRACE_COLUMNS!r}"
        )
    return header, fh.tell()


def portable_info(path: str | Path) -> dict:
    """The header of a portable trace file (statics replaced by a count)."""
    _require_little_endian()
    with open(path, "rb") as fh:
        header, _ = _read_portable_header(fh)
    header["num_statics"] = len(header.pop("statics"))
    return header


def import_portable(path: str | Path, store_path: str | Path, *,
                    chunk_length: int = 65536,
                    name: str | None = None) -> ChunkedTrace:
    """Convert a portable trace file into a spill store, chunk by chunk.

    Reads one chunk's worth of every column per step (seeking within the
    column-major body), validates it, and appends it to the store — the
    imported trace is never resident in full.
    """
    _require_little_endian()
    with open(path, "rb") as fh:
        header, body_start = _read_portable_header(fh)
        statics = decode_statics(header["statics"])
        length = int(header["length"])
        if length < 0:
            raise ValueError("portable trace header declares negative length")
        offsets = {}
        offset = body_start
        for column, typecode in TRACE_COLUMNS:
            offsets[column] = offset
            offset += length * _ITEMSIZE[typecode]
        fh.seek(0, 2)
        if fh.tell() < offset:
            raise ValueError(
                f"portable trace file is truncated: {fh.tell()} bytes, "
                f"header implies {offset}"
            )
        writer = TraceStoreWriter(
            store_path, name=name or header["name"], chunk_length=chunk_length
        )
        for start in range(0, length, chunk_length) or (0,):
            stop = min(start + chunk_length, length)
            loaded = {}
            for column, typecode in TRACE_COLUMNS:
                fh.seek(offsets[column] + start * _ITEMSIZE[typecode])
                raw = fh.read((stop - start) * _ITEMSIZE[typecode])
                data = array(typecode)
                data.frombytes(raw)
                loaded[column] = data
            if loaded["static_index"]:
                low = min(loaded["static_index"])
                high = max(loaded["static_index"])
                if low < 0 or high >= len(statics):
                    raise ValueError(
                        f"static_index {low if low < 0 else high} out of "
                        f"range for {len(statics)} statics "
                        f"(rows {start}..{stop})"
                    )
            writer.append(Trace.from_columns(
                statics=statics, name=name or header["name"],
                seq_start=start, **loaded,
            ))
        return writer.finalize()
