"""Opcodes and operation classes of the reproduction ISA.

The mechanistic model cares about the *class* of an instruction (unit-latency
ALU operation, long-latency multiply/divide, load, store, branch) rather than
its precise semantics, so every opcode maps onto an :class:`OpClass`.  The
functional simulator implements the semantics; the pipeline simulators and the
model only look at the class plus the register/memory operands.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse operation classes used by the performance models."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)


class Opcode(enum.Enum):
    """Concrete opcodes understood by the functional simulator."""

    # Unit-latency integer ALU operations.
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SLT = enum.auto()
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SLTI = enum.auto()
    LI = enum.auto()
    MOV = enum.auto()

    # Long-latency arithmetic.
    MUL = enum.auto()
    MULI = enum.auto()
    DIV = enum.auto()
    DIVI = enum.auto()
    REM = enum.auto()

    # Memory operations (word granularity, byte addressed).
    LW = enum.auto()
    SW = enum.auto()
    LB = enum.auto()
    SB = enum.auto()

    # Control flow.
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    J = enum.auto()
    JR = enum.auto()
    HALT = enum.auto()
    NOP = enum.auto()


#: Map every opcode onto its operation class.
OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SLL: OpClass.INT_ALU,
    Opcode.SRL: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.ADDI: OpClass.INT_ALU,
    Opcode.ANDI: OpClass.INT_ALU,
    Opcode.ORI: OpClass.INT_ALU,
    Opcode.XORI: OpClass.INT_ALU,
    Opcode.SLLI: OpClass.INT_ALU,
    Opcode.SRLI: OpClass.INT_ALU,
    Opcode.SLTI: OpClass.INT_ALU,
    Opcode.LI: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.MULI: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.DIVI: OpClass.INT_DIV,
    Opcode.REM: OpClass.INT_DIV,
    Opcode.LW: OpClass.LOAD,
    Opcode.LB: OpClass.LOAD,
    Opcode.SW: OpClass.STORE,
    Opcode.SB: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.J: OpClass.JUMP,
    Opcode.JR: OpClass.JUMP,
    Opcode.HALT: OpClass.NOP,
    Opcode.NOP: OpClass.NOP,
}

#: Conditional branch opcodes (excluding unconditional jumps).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

#: Opcodes whose second operand is an immediate rather than a register.
IMMEDIATE_OPCODES = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SLTI,
        Opcode.LI,
        Opcode.MULI,
        Opcode.DIVI,
    }
)


def op_class(opcode: Opcode) -> OpClass:
    """Return the :class:`OpClass` of ``opcode``."""
    return OPCODE_CLASS[opcode]
