"""A small RISC-style instruction set used by the workload kernels.

The paper profiles ARM binaries produced by a cross compiler and executed by
the M5 functional simulator.  This reproduction ships its own register-based
RISC ISA (:mod:`repro.isa.opcodes`), an in-memory program representation
(:mod:`repro.isa.program`) and a builder API used by the workload kernels in
:mod:`repro.workloads`.  The functional simulator in :mod:`repro.trace`
executes these programs to produce the dynamic instruction traces consumed by
both the profiler and the cycle-accurate pipeline simulators.
"""

from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_INT_REGS, Register, ZERO_REG
from repro.isa.instructions import Instruction
from repro.isa.program import BasicBlock, Program, ProgramBuilder

__all__ = [
    "OpClass",
    "Opcode",
    "Register",
    "NUM_INT_REGS",
    "ZERO_REG",
    "Instruction",
    "Program",
    "BasicBlock",
    "ProgramBuilder",
]
