"""Static instruction representation.

An :class:`Instruction` is one entry of a :class:`repro.isa.program.Program`.
It records the opcode, destination/source registers, an optional immediate
and an optional control-flow target label.  Operand extraction helpers
(``dest_regs`` / ``src_regs``) are used by the functional simulator, the
dependency profiler and the pipeline simulators, so they are defined exactly
once here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    OpClass,
    Opcode,
    op_class,
)
from repro.isa.registers import ZERO_REG


@dataclass(frozen=True)
class Instruction:
    """A static instruction of the reproduction ISA.

    Parameters
    ----------
    opcode:
        The concrete operation.
    dest:
        Destination register index, or ``None`` for stores, branches and NOPs.
    src1, src2:
        Source register indices (``None`` when unused).
    imm:
        Immediate operand (shift amounts, address offsets, constants).
    target:
        Label name for control-flow instructions.
    """

    opcode: Opcode
    dest: int | None = None
    src1: int | None = None
    src2: int | None = None
    imm: int = 0
    target: str | None = None
    #: Free-form annotation used by compiler passes (e.g. "induction").
    tag: str | None = field(default=None, compare=False)

    @property
    def op_class(self) -> OpClass:
        """Operation class (ALU / MUL / DIV / LOAD / STORE / BRANCH / ...)."""
        return op_class(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.op_class.is_memory

    @property
    def is_branch(self) -> bool:
        """True for conditional branches only."""
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_control(self) -> bool:
        """True for conditional branches and unconditional jumps."""
        return self.op_class.is_control

    @property
    def is_long_latency(self) -> bool:
        """True for multi-cycle arithmetic (multiply / divide)."""
        return self.op_class in (OpClass.INT_MUL, OpClass.INT_DIV)

    def dest_regs(self) -> tuple[int, ...]:
        """Registers written by this instruction (writes to r0 are dropped)."""
        if self.dest is None or self.dest == ZERO_REG:
            return ()
        return (self.dest,)

    def src_regs(self) -> tuple[int, ...]:
        """Registers read by this instruction (reads of r0 are dropped)."""
        sources = []
        for src in (self.src1, self.src2):
            if src is not None and src != ZERO_REG:
                sources.append(src)
        return tuple(sources)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.opcode.name.lower()]
        if self.dest is not None:
            parts.append(f"r{self.dest}")
        if self.src1 is not None:
            parts.append(f"r{self.src1}")
        if self.src2 is not None:
            parts.append(f"r{self.src2}")
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(self.target)
        return " ".join(parts)
