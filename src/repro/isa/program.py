"""Programs, basic blocks and the program builder.

A :class:`Program` is an ordered list of :class:`~repro.isa.instructions.Instruction`
objects plus a label table.  Programs are produced by the workload kernels
through :class:`ProgramBuilder` (a tiny assembler-like API) and are consumed
by the functional simulator and by the compiler passes in
:mod:`repro.workloads.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.instructions import Instruction
from repro.isa.opcodes import IMMEDIATE_OPCODES, Opcode


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad operands)."""


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions.

    ``start`` and ``end`` are instruction indices into the owning program;
    ``end`` is exclusive.  ``label`` is the label of the first instruction if
    one exists.
    """

    start: int
    end: int
    label: str | None = None

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class Program:
    """A static program: instructions, labels and an entry point."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def label_address(self, label: str) -> int:
        """Return the instruction index a label refers to."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise ProgramError(f"unknown label {label!r}") from exc

    def validate(self) -> None:
        """Check that every control-flow target resolves to a label."""
        for position, instruction in enumerate(self.instructions):
            if instruction.is_control and instruction.opcode is not Opcode.JR:
                if instruction.target is None:
                    raise ProgramError(
                        f"control instruction without target at {position}: "
                        f"{instruction}"
                    )
                self.label_address(instruction.target)

    def basic_blocks(self) -> list[BasicBlock]:
        """Partition the program into basic blocks.

        Block leaders are the program entry, every label target and every
        instruction that follows a control-flow instruction.
        """
        if not self.instructions:
            return []
        leaders = {0}
        leaders.update(self.labels.values())
        for position, instruction in enumerate(self.instructions):
            if instruction.is_control and position + 1 < len(self.instructions):
                leaders.add(position + 1)
        ordered = sorted(leaders)
        index_to_label = {index: label for label, index in self.labels.items()}
        blocks = []
        for block_number, start in enumerate(ordered):
            end = (
                ordered[block_number + 1]
                if block_number + 1 < len(ordered)
                else len(self.instructions)
            )
            blocks.append(
                BasicBlock(start=start, end=end, label=index_to_label.get(start))
            )
        return blocks

    def copy(self) -> "Program":
        """Return a deep-enough copy (instructions are immutable)."""
        return Program(
            instructions=list(self.instructions),
            labels=dict(self.labels),
            name=self.name,
        )


class ProgramBuilder:
    """Assembler-like builder used by the workload kernels.

    Example
    -------
    >>> from repro.isa import ProgramBuilder
    >>> b = ProgramBuilder("sum")
    >>> b.li(1, 0)          # r1 = 0 (accumulator)
    >>> b.li(2, 10)         # r2 = 10 (trip count)
    >>> b.label("loop")
    >>> b.add(1, 1, 2)
    >>> b.addi(2, 2, -1)
    >>> b.bne(2, 0, "loop")
    >>> b.halt()
    >>> program = b.build()
    """

    def __init__(self, name: str = "program"):
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Core emission API.
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> Instruction:
        """Append an already-constructed instruction."""
        self._instructions.append(instruction)
        return instruction

    def label(self, name: str) -> str:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def unique_label(self, stem: str) -> str:
        """Return a label name derived from ``stem`` that is not yet defined."""
        if stem not in self._labels:
            return stem
        suffix = 1
        while f"{stem}_{suffix}" in self._labels:
            suffix += 1
        return f"{stem}_{suffix}"

    def build(self) -> Program:
        """Finalize and validate the program."""
        program = Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            name=self._name,
        )
        program.validate()
        return program

    @property
    def position(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # ------------------------------------------------------------------
    # Three-operand ALU helpers.
    # ------------------------------------------------------------------
    def _alu(self, opcode: Opcode, dest: int, src1: int, src2: int) -> Instruction:
        return self.emit(Instruction(opcode, dest=dest, src1=src1, src2=src2))

    def _alu_imm(self, opcode: Opcode, dest: int, src1: int, imm: int) -> Instruction:
        if opcode not in IMMEDIATE_OPCODES:
            raise ProgramError(f"{opcode} is not an immediate opcode")
        return self.emit(Instruction(opcode, dest=dest, src1=src1, imm=imm))

    def add(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.ADD, dest, src1, src2)

    def sub(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.SUB, dest, src1, src2)

    def and_(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.AND, dest, src1, src2)

    def or_(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.OR, dest, src1, src2)

    def xor(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.XOR, dest, src1, src2)

    def sll(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.SLL, dest, src1, src2)

    def srl(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.SRL, dest, src1, src2)

    def slt(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.SLT, dest, src1, src2)

    def mul(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.MUL, dest, src1, src2)

    def div(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.DIV, dest, src1, src2)

    def rem(self, dest: int, src1: int, src2: int) -> Instruction:
        return self._alu(Opcode.REM, dest, src1, src2)

    # ------------------------------------------------------------------
    # Immediate helpers.
    # ------------------------------------------------------------------
    def addi(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.ADDI, dest, src1, imm)

    def andi(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.ANDI, dest, src1, imm)

    def ori(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.ORI, dest, src1, imm)

    def xori(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.XORI, dest, src1, imm)

    def slli(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.SLLI, dest, src1, imm)

    def srli(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.SRLI, dest, src1, imm)

    def slti(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.SLTI, dest, src1, imm)

    def muli(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.MULI, dest, src1, imm)

    def divi(self, dest: int, src1: int, imm: int) -> Instruction:
        return self._alu_imm(Opcode.DIVI, dest, src1, imm)

    def li(self, dest: int, imm: int) -> Instruction:
        return self.emit(Instruction(Opcode.LI, dest=dest, imm=imm))

    def mov(self, dest: int, src: int) -> Instruction:
        return self.emit(Instruction(Opcode.MOV, dest=dest, src1=src))

    # ------------------------------------------------------------------
    # Memory helpers (imm is a byte offset added to the base register).
    # ------------------------------------------------------------------
    def lw(self, dest: int, base: int, offset: int = 0) -> Instruction:
        return self.emit(Instruction(Opcode.LW, dest=dest, src1=base, imm=offset))

    def lb(self, dest: int, base: int, offset: int = 0) -> Instruction:
        return self.emit(Instruction(Opcode.LB, dest=dest, src1=base, imm=offset))

    def sw(self, src: int, base: int, offset: int = 0) -> Instruction:
        return self.emit(Instruction(Opcode.SW, src1=base, src2=src, imm=offset))

    def sb(self, src: int, base: int, offset: int = 0) -> Instruction:
        return self.emit(Instruction(Opcode.SB, src1=base, src2=src, imm=offset))

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------
    def beq(self, src1: int, src2: int, target: str) -> Instruction:
        return self.emit(
            Instruction(Opcode.BEQ, src1=src1, src2=src2, target=target)
        )

    def bne(self, src1: int, src2: int, target: str) -> Instruction:
        return self.emit(
            Instruction(Opcode.BNE, src1=src1, src2=src2, target=target)
        )

    def blt(self, src1: int, src2: int, target: str) -> Instruction:
        return self.emit(
            Instruction(Opcode.BLT, src1=src1, src2=src2, target=target)
        )

    def bge(self, src1: int, src2: int, target: str) -> Instruction:
        return self.emit(
            Instruction(Opcode.BGE, src1=src1, src2=src2, target=target)
        )

    def j(self, target: str) -> Instruction:
        return self.emit(Instruction(Opcode.J, target=target))

    def jr(self, src: int) -> Instruction:
        return self.emit(Instruction(Opcode.JR, src1=src))

    def nop(self) -> Instruction:
        return self.emit(Instruction(Opcode.NOP))

    def halt(self) -> Instruction:
        return self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Convenience for kernels.
    # ------------------------------------------------------------------
    def emit_all(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.emit(instruction)
