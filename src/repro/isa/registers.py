"""Architectural registers of the reproduction ISA.

The ISA exposes 32 general-purpose integer registers ``r0`` .. ``r31``.
Register ``r0`` is hard-wired to zero, mirroring MIPS/RISC-V conventions,
which keeps the kernels compact (a zero source is always available) and keeps
the dependency profiles honest (writes to ``r0`` never create producers).
"""

from __future__ import annotations

NUM_INT_REGS = 32

#: Register index that always reads as zero and ignores writes.
ZERO_REG = 0


class Register(int):
    """An architectural register index with a readable ``repr``.

    ``Register`` is a thin ``int`` subclass: it behaves exactly like the
    register number everywhere (indexing the register file, hashing into
    dependency tables) while printing as ``r7`` in debug output.
    """

    def __new__(cls, index: int) -> "Register":
        if not 0 <= index < NUM_INT_REGS:
            raise ValueError(
                f"register index {index} out of range 0..{NUM_INT_REGS - 1}"
            )
        return super().__new__(cls, index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{int(self)}"

    __str__ = __repr__


def reg(index: int) -> Register:
    """Return the :class:`Register` for ``index`` (convenience constructor)."""
    return Register(index)


#: Pre-constructed register objects, ``R[5]`` is ``r5``.
R = tuple(Register(i) for i in range(NUM_INT_REGS))
