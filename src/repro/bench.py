"""Core hot-path benchmark: writes ``BENCH_core.json``.

Times the paths every PR is expected to keep fast:

* ``trace_generation``     — functional simulation of the Figure 5 fast
  benchmarks (fresh workloads, no cache),
* ``profile_machine``      — miss-event profiling of those traces on the
  default machine (trace generation excluded),
* ``dse_evaluate``         — model-only ``DesignSpaceExplorer.evaluate`` of
  the Figure 5 fast benchmarks across the Figure 5 (reduced) design space,
  including the profiling passes the explorer triggers,
* ``api_batch_evaluate``   — the public ``repro.api`` facade answering all
  19 MiBench workloads x 4 machine presets through ``evaluate_many`` on a
  cold session (trace generation included),
* ``session_cached_rerun`` — a warm :class:`~repro.runtime.session.Session`
  answering the same workload/profile requests purely from the on-disk
  artifact cache (the hit path: zero compilations, zero trace generations),
* ``service_warm_eval``    — 50 warm ``POST /v1/eval`` round trips through
  a running :mod:`repro.service` server (result-cache hits, HTTP included)
  — the served-request latency a repeat API consumer pays, to compare
  against ``api_batch_evaluate``'s cold per-request cost,
* ``sweep_table2``         — the paper's full 192-point Table-2 design
  space x all 19 MiBench workloads through the geometry-grouped sweep
  planner on a warm-trace session (trace generation excluded; profiling
  passes, program profiles and model evaluation included), using the
  active :mod:`repro.accel` kernel backend,
* ``accel_vs_python``      — the identical sweep forced onto the
  pure-Python kernel backend; ``sweep_table2``'s median divided into this
  one is the kernel-layer speedup (reported as ``accel_speedup``),
* ``sharded_evaluate_many`` — all 19 MiBench workloads x 4 machine
  presets through ``evaluate_many`` sharded across a **persistent 4-worker
  pool**, four consecutive batches over parent-held traces on the active
  data plane (shared memory where available), with the per-stage
  ship/attach/profile/model/collect breakdown recorded next to the median,
* ``sharded_evaluate_many_payload`` — the identical sharded run forced
  onto the column-bytes payload plane; the ship/attach stage deltas
  against ``sharded_evaluate_many`` are the data-plane win,
* ``long_workload_sampled`` — a synthetic workload scaled 100x past the
  in-memory default, generated straight into an on-disk spill store and
  evaluated by warmed interval sampling (:mod:`repro.profiler.sampling`)
  in a subprocess; the entry records the sampling rate, the estimated CPI
  error, the child's peak RSS and the exact-streaming wall time the
  sampled evaluation replaces (``speedup_vs_exact``),
* ``obs_overhead``         — the cost of :mod:`repro.obs` tracing on the
  sharded hot path: one ``sharded_evaluate_many``-shaped batch timed with
  tracing disabled (the median) and again with spans appended to a
  scratch file; the entry records ``enabled_seconds``, ``spans_written``,
  the micro-timed no-op ``span()`` cost (``noop_span_ns``) and the
  disabled-instrumentation overhead it implies per batch
  (``overhead_pct``), which the compare gate holds to
  ``overhead_limit_pct`` (2%),
* ``degraded_mode_evaluate`` — the same 19 workloads x 4 presets batch on
  a 4-worker session whose circuit breaker has tripped
  (:mod:`repro.resilience`): every request drains through the serial
  in-process fallback, so this entry is the throughput floor the service
  guarantees while its worker pool is broken — compare against
  ``sharded_evaluate_many`` for the price of degradation,
* ``search_surrogate_dse`` — :mod:`repro.search` surrogate-guided
  optimization: the Table-2 192-point space searched for the minimum-EDP
  configuration under a budget of a third of the space, checked against
  the (untimed) exhaustive front, plus a budgeted search of a >10^6-point
  synthetic space with machine constraints; the entry records
  ``evals_to_front`` (evaluations spent when the returned best was found)
  and ``matched_exhaustive_best``, both of which the compare gate checks.

Each benchmark runs ``--repeat`` times with the garbage collector paused
around the timed region (collector pauses otherwise dominate the variance
of sub-second runs) and the *median* is reported.  The output schema
(``schema_version`` 7) records the Python version, job count, active
kernel backend, resolved data plane and the per-stage gate floor
(``stage_tolerance_ms``) next to the results; benchmarks with a stage
breakdown carry it (from the median run) in their entry:

.. code-block:: json

    {"schema_version": 5, "python_version": "3.11.7", "jobs": 1,
     "repeats": 3, "accel_backend": "numpy", "accel_speedup": 5.3,
     "dataplane": "shm", "stage_tolerance_ms": 50.0,
     "results": {"trace_generation": {"median": ..., "runs": [...]},
                 "long_workload_sampled": {"median": ..., "runs": [...],
                                           "sampling_rate": 32,
                                           "est_error": ...,
                                           "peak_rss_mb": ...},
                 "sharded_evaluate_many": {"median": ..., "runs": [...],
                                           "dataplane": "shm",
                                           "stages": {"ship": ...}}}}

``--compare REFERENCE.json`` turns the run into a regression gate: after
benchmarking, every benchmark present in both files is checked and the
process exits non-zero when a median regressed more than ``--tolerance``
percent (``make bench-compare`` wires this into CI against the committed
``BENCH_core.json``).  Per-stage timings are gated the same way for
stages both files record above the ``--stage-tolerance-ms`` floor
(default 50ms), so older (v3/v4) references still compare cleanly.
Search-quality figures are gated too: ``evals_to_front`` regressing
beyond the tolerance, or ``matched_exhaustive_best`` flipping from true
to false, fails the gate exactly like a wall-clock regression.  So is
observability overhead: ``obs_overhead``'s ``overhead_pct`` exceeding its
recorded ``overhead_limit_pct`` while being worse than the reference
fails the gate.

Run via ``make bench``, ``PYTHONPATH=src python benchmarks/run_bench.py``,
``repro-bench`` or ``repro-experiments bench``.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import reduced_design_space
from repro.experiments.common import FIGURE5_FAST_BENCHMARKS
from repro.machine import DEFAULT_MACHINE
from repro.profiler.machine_stats import profile_machine
from repro.runtime.session import Session
from repro.workloads import get_workload

#: Version of the BENCH_core.json layout.
BENCH_SCHEMA_VERSION = 8

#: Allowed tracing overhead on the sharded hot path, in percent: the
#: ``obs_overhead`` compare gate fails when ``overhead_pct`` exceeds this
#: while also being worse than the reference run's figure.
OBS_OVERHEAD_LIMIT_PCT = 2.0

#: Default --stage-tolerance-ms: per-stage regressions whose reference time
#: is below this many milliseconds are ignored by the gate — sub-50ms stages
#: (handle pickling, result reassembly) are scheduler noise, not signal.
DEFAULT_STAGE_TOLERANCE_MS = 50.0

#: Long-workload benchmark shape: a synthetic workload scaled 100x past the
#: in-memory default, spilled to disk and evaluated by interval sampling.
LONG_WORKLOAD_SCALE = 100
LONG_WORKLOAD_CHUNK_LENGTH = 16384
LONG_WORKLOAD_RATE = 64
LONG_WORKLOAD_WARMUP = 3
LONG_WORKLOAD_WARMING = 2


def _fresh_workloads():
    """Figure 5 fast-benchmark workloads, bypassing the registry cache."""
    return [get_workload(name, use_cache=False) for name in FIGURE5_FAST_BENCHMARKS]


def bench_trace_generation() -> float:
    workloads = _fresh_workloads()
    start = time.perf_counter()
    for workload in workloads:
        workload.trace()
    return time.perf_counter() - start


def bench_profile_machine() -> float:
    traces = [workload.trace() for workload in _fresh_workloads()]
    start = time.perf_counter()
    for trace in traces:
        profile_machine(trace, DEFAULT_MACHINE)
    return time.perf_counter() - start


def bench_dse_evaluate() -> float:
    workloads = _fresh_workloads()
    for workload in workloads:
        workload.trace()
    explorer = DesignSpaceExplorer(reduced_design_space().configurations())
    start = time.perf_counter()
    for workload in workloads:
        explorer.evaluate(workload)
    return time.perf_counter() - start


def bench_api_batch_evaluate(jobs: int = 1) -> float:
    """The public facade's batch path: 19 workloads x 4 machine presets.

    Every MiBench workload crossed with every built-in machine preset is
    answered by the ``analytical`` backend through ``evaluate_many`` on a
    fresh session — the cost a cold API consumer pays for a full suite
    sweep, trace generation included.
    """
    from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
    from repro.machine import MACHINE_PRESETS
    from repro.workloads.registry import suite_names

    machines = [MachineSpec(preset) for preset in MACHINE_PRESETS.names()]
    requests = [
        EvalRequest(workload=WorkloadSpec(name), machine=machine)
        for name in suite_names("mibench")
        for machine in machines
    ]
    with tempfile.TemporaryDirectory() as cache_dir:
        session = Session(cache_dir=cache_dir if jobs > 1 else None, jobs=jobs)
        start = time.perf_counter()
        evaluate_many(requests, session=session)
        return time.perf_counter() - start


def _warm_profile(session: Session, name: str) -> str:
    """Cache-warming work unit (module-level so process pools can pickle it)."""
    session.miss_profile(name, DEFAULT_MACHINE)
    return name


def bench_session_cached_rerun(jobs: int = 1) -> float:
    """Artifact-cache hit path: a second session against a warmed cache dir.

    The (untimed) warm-up shards across ``jobs`` worker processes; the timed
    rerun is the serial hit path every later session enjoys.
    """
    with tempfile.TemporaryDirectory() as cache_dir:
        warmup = Session(cache_dir=cache_dir, jobs=jobs)
        warmup.map(_warm_profile, list(FIGURE5_FAST_BENCHMARKS))

        session = Session(cache_dir=cache_dir)
        start = time.perf_counter()
        for name in FIGURE5_FAST_BENCHMARKS:
            session.miss_profile(name, DEFAULT_MACHINE)
        elapsed = time.perf_counter() - start
        if session.stats.traces_generated or session.stats.workloads_compiled:
            raise RuntimeError(
                "session_cached_rerun regenerated state; the artifact-cache "
                f"hit path is broken: {session.stats.as_dict()}"
            )
    return elapsed


def bench_service_warm_eval() -> float:
    """Warm served-request latency: 50 cache-hit ``POST /v1/eval`` calls.

    An ephemeral :mod:`repro.service` server answers one cold request
    (untimed: compilation, trace generation, profiling), then the same
    request 50 more times — every repeat is a result-cache hit, so the
    timed loop measures the full HTTP round trip plus the cache lookup,
    i.e. the steady-state latency the service exists to provide.
    """
    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread, ServiceConfig

    request = {"workload": "sha", "machine": {"preset": "paper_default"}}
    with tempfile.TemporaryDirectory() as cache_dir:
        with ServerThread(ServiceConfig(port=0, jobs=1,
                                        cache_dir=cache_dir)) as running:
            client = ServiceClient(port=running.port)
            client.evaluate(request)  # cold: pays the whole pipeline
            start = time.perf_counter()
            for _ in range(50):
                client.evaluate(request)
            return time.perf_counter() - start


#: Trace payloads of the Table-2 sweep workloads, generated once per
#: process (trace generation is backend-independent and benchmarked
#: separately by ``trace_generation``).
_TABLE2_PAYLOADS: dict | None = None


def _table2_session() -> Session:
    """A fresh session, warm on everything machine-independent.

    Traces (adopted from column payloads, rebuilt per run so profiling
    passes start cold) and program profiles are pre-computed: both are
    per-workload artifacts the cache persists forever, amortized across
    every sweep — the timed region is the design-space work itself
    (profiling passes, per-configuration assembly, model evaluation and
    the batch facade).
    """
    from repro.trace.trace import Trace
    from repro.workloads.registry import suite_names

    global _TABLE2_PAYLOADS
    names = suite_names("mibench")
    if _TABLE2_PAYLOADS is None:
        builder = Session()
        _TABLE2_PAYLOADS = {
            name: builder.trace(name).to_payload() for name in names
        }
    session = Session()
    for name in names:
        # A fresh Trace per run: profiling passes must start cold.
        workload = session.adopt_trace(
            name, "O3", Trace.from_payload(_TABLE2_PAYLOADS[name])
        )
        session.program_profile(workload)
    return session


def _timed_table2_sweep(backend: str | None) -> float:
    """Best of three full Table-2 x MiBench sweeps through the planner.

    The best-of repetition (after one untimed allocator warmup) is taken
    *inside* the benchmark so scheduler noise on loaded machines cannot
    skew the recorded kernel-backend speedup; the harness median then
    stacks on top of already-stable samples.
    """
    from repro import accel
    from repro.api import evaluate_many
    from repro.dse.space import default_design_space
    from repro.workloads.registry import suite_names

    requests = default_design_space().to_sweep(suite_names("mibench")).expand()
    previous = accel.active_backend()
    if backend is not None:
        accel.set_backend(backend)
    try:
        evaluate_many(requests, session=_table2_session())  # warmup
        best = None
        for _ in range(3):
            session = _table2_session()
            start = time.perf_counter()
            evaluate_many(requests, session=session)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best
    finally:
        accel.set_backend(previous)


def bench_sweep_table2() -> float:
    """Full 192-point x 19-workload Table-2 sweep, active kernel backend."""
    return _timed_table2_sweep(None)


def bench_accel_vs_python() -> float:
    """The identical sweep on the pure-Python kernels (the speedup baseline)."""
    return _timed_table2_sweep("python")


def _timed_sharded_evaluate_many(plane: str) -> tuple[float, dict]:
    """19 workloads x 4 presets, four batches over a persistent 4-way pool.

    The parent session holds every trace before the timed region starts
    (adopted from payloads — trace generation is benchmarked separately),
    so each batch exercises the full data plane: ship from the parent,
    attach in the workers, then the profiling and model work.  Four
    consecutive batches against the *same* pooled session are what the
    persistent pool exists for — batches after the first pay no worker
    spawn and (on ``shm``) re-ship only tiny segment handles.
    """
    from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
    from repro.machine import MACHINE_PRESETS
    from repro.runtime import dataplane
    from repro.runtime.session import pooled_session
    from repro.trace.trace import Trace
    from repro.workloads.registry import suite_names

    names = suite_names("mibench")
    _table2_session()  # populates the shared payload cache
    requests = [
        EvalRequest(workload=WorkloadSpec(name), machine=MachineSpec(preset))
        for name in names
        for preset in MACHINE_PRESETS.names()
    ]
    previous = dataplane.active_mode()
    dataplane.set_mode(plane)
    try:
        with pooled_session(None, 4) as session:
            for name in names:
                session.adopt_trace(
                    name, "O3", Trace.from_payload(_TABLE2_PAYLOADS[name])
                )
            start = time.perf_counter()
            for _ in range(4):
                evaluate_many(requests, session=session)
            elapsed = time.perf_counter() - start
            extras = {"dataplane": session.dataplane_mode(),
                      "stages": session.stages.as_dict()}
    finally:
        dataplane.set_mode(previous)
    return elapsed, extras


def bench_sharded_evaluate_many() -> tuple[float, dict]:
    """Sharded batches on the preferred data plane (shared memory)."""
    return _timed_sharded_evaluate_many("auto")


def bench_sharded_evaluate_many_payload() -> tuple[float, dict]:
    """The identical sharded batches forced onto column-bytes payloads."""
    return _timed_sharded_evaluate_many("payload")


def bench_obs_overhead() -> tuple[float, dict]:
    """Tracing's cost on the sharded hot path — near-free when disabled.

    One ``sharded_evaluate_many``-shaped batch (19 workloads x 4 presets
    over a persistent 4-worker pool, parent-held traces) is timed best-of-3
    with tracing disabled, then again with spans appended to a scratch
    file.  Each phase gets its own pool because workers pick up the span
    sink at spawn through the pool initializer.  The disabled time is the
    reported median.

    The gated figure is ``overhead_pct``: what the instrumentation costs
    when tracing is *disabled* — the per-call price of the ``span()``
    no-op fast path (micro-timed over 100k calls, stable where a wall-time
    diff of two separate runs would be noise) times the spans the batch
    would emit, as a percent of the batch.  ``enabled_seconds`` and
    ``enabled_pct`` (actual span writing, dominated by one ``os.write``
    per span) ride along uncompared.
    """
    import os
    from pathlib import Path as _Path

    from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
    from repro.machine import MACHINE_PRESETS
    from repro.obs import tracing
    from repro.runtime.session import pooled_session
    from repro.trace.trace import Trace
    from repro.workloads.registry import suite_names

    names = suite_names("mibench")
    _table2_session()  # populates the shared payload cache
    requests = [
        EvalRequest(workload=WorkloadSpec(name), machine=MachineSpec(preset))
        for name in names
        for preset in MACHINE_PRESETS.names()
    ]
    timed_rounds = 3

    def timed_batches(session) -> float:
        for name in names:
            session.adopt_trace(
                name, "O3", Trace.from_payload(_TABLE2_PAYLOADS[name])
            )
        evaluate_many(requests, session=session)  # warmup
        best = None
        for _ in range(timed_rounds):
            start = time.perf_counter()
            evaluate_many(requests, session=session)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    previous = tracing.configured_path()
    with tempfile.TemporaryDirectory() as root:
        span_path = os.path.join(root, "spans.jsonl")
        try:
            tracing.configure(None)
            with pooled_session(None, 4) as session:
                disabled = timed_batches(session)
            # The no-op fast path, alone: what every untraced span site
            # costs.  100k iterations make the figure stable enough to
            # gate at single-digit percent.
            calls = 100_000
            start = time.perf_counter()
            for _ in range(calls):
                with tracing.span("bench.noop", probe=1):
                    pass
            noop_seconds = (time.perf_counter() - start) / calls
            tracing.configure(span_path)
            with pooled_session(None, 4) as session:
                enabled = timed_batches(session)
        finally:
            tracing.configure(previous)
        spans_written = len(
            _Path(span_path).read_text().splitlines()
        ) if os.path.exists(span_path) else 0
    # Spans the enabled phase emitted per batch (warmup included in the
    # line count, so this slightly overstates — the cold batch profiles
    # more).  Their no-op cost as a percent of the disabled batch is the
    # disabled-tracing overhead the gate holds to the limit.
    spans_per_batch = spans_written / (timed_rounds + 1)
    overhead_pct = spans_per_batch * noop_seconds / disabled * 100.0
    return disabled, {
        "enabled_seconds": enabled,
        "enabled_pct": round((enabled / disabled - 1.0) * 100.0, 2),
        "noop_span_ns": round(noop_seconds * 1e9),
        "overhead_pct": round(overhead_pct, 4),
        "overhead_limit_pct": OBS_OVERHEAD_LIMIT_PCT,
        "spans_written": spans_written,
    }


def _reset_peak_rss() -> None:
    """Zero the process's peak-RSS watermark where the kernel allows it.

    A freshly spawned child briefly shares the parent's address space
    (fork/vfork before exec), so its ``ru_maxrss`` starts at the parent's
    RSS — 200+ MB mid-benchmark — rather than zero.  Linux resets the
    ``VmHWM`` watermark on writing ``5`` to ``/proc/self/clear_refs``;
    elsewhere the inherited figure stands (and overstates).
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        pass


def _peak_rss_mb() -> float:
    """Peak RSS in MB, honouring a :func:`_reset_peak_rss` watermark."""
    import resource

    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _long_workload_child() -> None:
    """Subprocess body of ``long_workload_sampled`` (clean-RSS measurement).

    Generates a ``LONG_WORKLOAD_SCALE``x synthetic workload straight into a
    spill store, evaluates it by interval sampling and once exactly through
    the streaming engine, and prints one JSON line with both wall times,
    the sampled CPI's estimated error and the process peak RSS.  Runs in
    its own process so the peak reflects the streamed evaluation, not
    whatever the parent benchmarked before.
    """
    import sys as _sys
    import tempfile as _tempfile

    from repro.core.model import InOrderMechanisticModel
    from repro.profiler.sampling import sample_evaluate
    from repro.profiler.streaming import StreamingEngine
    from repro.workloads.synthetic import (
        SyntheticWorkloadSpec,
        generate_synthetic_store,
    )

    from repro.accel import get_kernels

    _reset_peak_rss()
    spec = SyntheticWorkloadSpec(name="synthetic-long")
    with _tempfile.TemporaryDirectory() as root:
        chunked = generate_synthetic_store(
            Path(root) / "store", spec, scale=LONG_WORKLOAD_SCALE,
            chunk_length=LONG_WORKLOAD_CHUNK_LENGTH,
        )
        # Resolve the kernel backend before either timed phase so neither
        # is charged the one-time import of its implementation module.
        get_kernels()
        # Min over inner repeats on both sides: the phases are ~100ms and
        # ~1s, so a single scheduler hiccup otherwise dominates the ratio.
        sampled_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            sampled = sample_evaluate(chunked, DEFAULT_MACHINE,
                                      rate=LONG_WORKLOAD_RATE,
                                      warmup=LONG_WORKLOAD_WARMUP,
                                      warming=LONG_WORKLOAD_WARMING)
            sampled_seconds = min(sampled_seconds,
                                  time.perf_counter() - start)

        exact_seconds = float("inf")
        for _ in range(3):
            # A fresh engine each round: ``for_chunked`` memoizes its walk
            # on the trace, which would make later rounds free.
            start = time.perf_counter()
            engine = StreamingEngine(chunked)
            exact = InOrderMechanisticModel(DEFAULT_MACHINE).predict(
                engine.program_profile(),
                engine.miss_profile(DEFAULT_MACHINE),
            )
            exact_seconds = min(exact_seconds, time.perf_counter() - start)

    peak_rss_mb = _peak_rss_mb()
    print(json.dumps({
        "sampled_seconds": sampled_seconds,
        "exact_seconds": exact_seconds,
        "instructions": len(chunked),
        "sampled_cpi": sampled.cpi,
        "exact_cpi": exact.cpi,
        "est_error": sampled.est_rel_error["cpi"],
        "peak_rss_mb": round(peak_rss_mb, 1),
    }))
    _sys.stdout.flush()


def bench_long_workload_sampled() -> tuple[float, dict]:
    """Interval-sampled evaluation of a 100x spilled synthetic workload.

    The reported time is the sampled evaluation alone; the extras record
    the sampling rate, the estimated CPI error, the exact-streaming wall
    time it replaces (``speedup_vs_exact``) and the child's peak RSS —
    the figure the bounded-memory CI leg asserts against.
    """
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        [sys.executable, "-c",
         "from repro.bench import _long_workload_child; _long_workload_child()"],
        env=env, capture_output=True, text=True, check=True,
    )
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    exact = report["exact_seconds"]
    sampled = report["sampled_seconds"]
    return sampled, {
        "sampling_rate": LONG_WORKLOAD_RATE,
        "warmup": LONG_WORKLOAD_WARMUP,
        "warming": LONG_WORKLOAD_WARMING,
        "scale": LONG_WORKLOAD_SCALE,
        "instructions": report["instructions"],
        "est_error": round(report["est_error"], 6),
        "peak_rss_mb": report["peak_rss_mb"],
        "exact_seconds": exact,
        "speedup_vs_exact": round(exact / sampled, 2) if sampled else None,
    }


def bench_degraded_mode_evaluate() -> tuple[float, dict]:
    """Serial-fallback throughput: the batch path with the breaker open.

    A 4-worker session has its circuit breaker tripped before the timed
    region, so ``evaluate_many`` never touches the pool and every request
    drains through :mod:`repro.resilience`'s serial in-process fallback —
    the degraded-mode answer rate the service still guarantees after
    repeated worker crashes.  Traces are parent-held (adopted from
    payloads) exactly like ``sharded_evaluate_many``, making the two
    medians directly comparable: their ratio is what degradation costs.
    """
    from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
    from repro.machine import MACHINE_PRESETS
    from repro.runtime.session import pooled_session
    from repro.trace.trace import Trace
    from repro.workloads.registry import suite_names

    names = suite_names("mibench")
    _table2_session()  # populates the shared payload cache
    requests = [
        EvalRequest(workload=WorkloadSpec(name), machine=MachineSpec(preset))
        for name in names
        for preset in MACHINE_PRESETS.names()
    ]
    with pooled_session(None, 4) as session:
        for name in names:
            session.adopt_trace(
                name, "O3", Trace.from_payload(_TABLE2_PAYLOADS[name])
            )
        evaluate_many(requests, session=session)  # warmup (pooled)
        session.health.trip_breaker()
        start = time.perf_counter()
        evaluate_many(requests, session=session)
        elapsed = time.perf_counter() - start
        extras = {"breaker_open": session.health.breaker_open,
                  "serial_units": len(requests)}
    return elapsed, extras


#: Search-bench shape: the Table-2 surrogate budget is a third of the
#: 192-point space; the synthetic space must exceed a million points.
SEARCH_TABLE2_BUDGET = 64
SEARCH_SYNTH_BUDGET = 36
SEARCH_BATCH = 8
SEARCH_SEED = 2012
SEARCH_WORKLOAD = "dijkstra"


def _synthetic_search_space():
    """A >10^6-point space the surrogate bench searches under budget.

    Ten axes over cache geometry, core shape and latencies — including a
    coupled depth/frequency axis and an associativity axis conditional on
    L2 size — sized so exhaustive enumeration is out of the question
    (the point of :class:`~repro.search.space.SearchSpace`'s indexed,
    never-materialised representation).
    """
    from repro.search import SearchSpace

    return SearchSpace.make([
        {"axis": "pipeline_stages,frequency_mhz",
         "values": [[5, 600], [6, 700], [7, 800], [8, 900], [9, 1000]]},
        {"axis": "width", "values": [1, 2, 3, 4]},
        {"axis": "l2_size", "values": ["128KB", "256KB", "512KB", "1MB"]},
        {"axis": "l2_associativity", "values": [4, 8, 16],
         "when": "l2_size>=256KB"},
        {"axis": "l1i_size", "values": ["8KB", "16KB", "32KB", "64KB"]},
        {"axis": "l1d_size", "values": ["8KB", "16KB", "32KB", "64KB"]},
        {"axis": "l1i_associativity", "values": [2, 4]},
        {"axis": "l1d_associativity", "values": [2, 4]},
        {"axis": "line_size", "values": [32, 64]},
        {"axis": "l1_hit_cycles", "values": [1, 2]},
        {"axis": "tlb_entries", "values": [16, 32, 64]},
        {"axis": "mul_latency", "values": [2, 4, 6]},
        {"axis": "div_latency", "values": [12, 20, 28]},
        {"axis": "branch_predictor", "values": ["global_1kb", "hybrid_3.5kb"]},
    ])


def bench_search_surrogate_dse() -> tuple[float, dict]:
    """Surrogate-guided search vs the exhaustive Table-2 front.

    The (untimed) exhaustive reference evaluates all 192 Table-2 points
    for the minimum-EDP configuration; the timed region is the surrogate
    search of the same space under a third of that budget plus a budgeted
    search of a >10^6-point synthetic space with an area constraint —
    both on a warm-trace session, so what is timed is the search itself
    (per-geometry profiling passes, model evaluation, surrogate fitting
    and proposal).  ``evals_to_front`` and ``matched_exhaustive_best``
    ride along for the quality gate.
    """
    from repro.dse.space import default_design_space
    from repro.search import OptimizeRequest, optimize

    session = _table2_session()
    space = default_design_space().to_search_space()
    base = {"space": space, "workload": {"name": SEARCH_WORKLOAD},
            "objectives": ["edp"]}
    exhaustive = optimize(
        OptimizeRequest.parse({**base, "strategy": "exhaustive",
                               "budget": len(space)}),
        session=session,
    )
    synthetic_space = _synthetic_search_space()
    start = time.perf_counter()
    surrogate = optimize(
        OptimizeRequest.parse({**base, "strategy": "surrogate",
                               "budget": SEARCH_TABLE2_BUDGET,
                               "batch": SEARCH_BATCH, "seed": SEARCH_SEED}),
        session=session,
    )
    synthetic = optimize(
        OptimizeRequest.parse({
            "space": synthetic_space,
            "workload": {"name": SEARCH_WORKLOAD},
            "objectives": ["edp"],
            "constraints": ["area_proxy<=700"],
            "strategy": "surrogate", "budget": SEARCH_SYNTH_BUDGET,
            "batch": SEARCH_BATCH, "seed": SEARCH_SEED,
        }),
        session=session,
    )
    elapsed = time.perf_counter() - start
    extras = {
        "evals_to_front": surrogate.best_found_at_evaluation,
        "matched_exhaustive_best":
            surrogate.best["index"] == exhaustive.best["index"],
        "surrogate_budget": SEARCH_TABLE2_BUDGET,
        "exhaustive_points": exhaustive.evaluations,
        "synthetic_cardinality": synthetic.cardinality,
        "synthetic_evaluations": synthetic.evaluations,
        "synthetic_infeasible_skipped": synthetic.infeasible_skipped,
        "synthetic_trajectory_rounds": len(synthetic.trajectory),
        # The convergence trajectory itself (compact: per surrogate round,
        # cumulative evaluations and the incumbent's objective value).
        "synthetic_trajectory": [
            {"round": entry["round"], "evaluations": entry["evaluations"],
             "best_edp": entry.get("best", {}).get("edp")}
            for entry in synthetic.trajectory
        ],
    }
    return elapsed, extras


BENCHES = {
    "trace_generation": bench_trace_generation,
    "profile_machine": bench_profile_machine,
    "dse_evaluate": bench_dse_evaluate,
    "api_batch_evaluate": bench_api_batch_evaluate,
    "session_cached_rerun": bench_session_cached_rerun,
    "service_warm_eval": bench_service_warm_eval,
    "sweep_table2": bench_sweep_table2,
    "accel_vs_python": bench_accel_vs_python,
    "sharded_evaluate_many": bench_sharded_evaluate_many,
    "sharded_evaluate_many_payload": bench_sharded_evaluate_many_payload,
    "obs_overhead": bench_obs_overhead,
    "long_workload_sampled": bench_long_workload_sampled,
    "degraded_mode_evaluate": bench_degraded_mode_evaluate,
    "search_surrogate_dse": bench_search_surrogate_dse,
}

#: Benchmarks whose callable accepts (and honours) the job count.
_JOB_AWARE = {"session_cached_rerun", "api_batch_evaluate"}


def run(output: Path, repeat: int = 3, jobs: int = 1,
        stage_tolerance_ms: float = DEFAULT_STAGE_TOLERANCE_MS) -> dict:
    from repro.accel import active_backend
    from repro.runtime.dataplane import active_mode

    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    results: dict[str, dict] = {}
    for name, bench in BENCHES.items():
        kwargs = {"jobs": jobs} if name in _JOB_AWARE else {}
        runs: list[float] = []
        extras: list[dict | None] = []
        for _ in range(repeat):
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                timed = bench(**kwargs)
            finally:
                if gc_was_enabled:
                    gc.enable()
            # A bench returns either the elapsed seconds, or (elapsed,
            # extras) where extras carries e.g. the per-stage breakdown.
            if isinstance(timed, tuple):
                elapsed, extra = timed
            else:
                elapsed, extra = timed, None
            runs.append(elapsed)
            extras.append(extra)
        median = statistics.median(runs)
        results[name] = {"median": median, "runs": runs}
        # Report the extras of the run the median represents.
        nearest = min(range(len(runs)), key=lambda i: abs(runs[i] - median))
        if extras[nearest]:
            results[name].update(extras[nearest])
        print(f"{name:30s} {median:8.3f} s  (median of {repeat})")
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "python_version": platform.python_version(),
        "jobs": jobs,
        "repeats": repeat,
        "accel_backend": active_backend(),
        "dataplane": active_mode(),
        "stage_tolerance_ms": stage_tolerance_ms,
        "results": results,
    }
    sweep = results.get("sweep_table2", {}).get("median")
    baseline = results.get("accel_vs_python", {}).get("median")
    if sweep and baseline:
        payload["accel_speedup"] = round(baseline / sweep, 2)
        print(f"{'accel_speedup':30s} {payload['accel_speedup']:8.2f} x  "
              f"({payload['accel_backend']} vs python on sweep_table2)")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    return payload


def compare_results(reference: dict, current: dict, tolerance: float,
                    stage_tolerance_ms: float = DEFAULT_STAGE_TOLERANCE_MS,
                    ) -> list[str]:
    """Regressions of ``current`` vs ``reference`` beyond ``tolerance`` %.

    Only benchmarks present in both payloads are compared (new benchmarks
    pass vacuously; retired ones are ignored), so the gate stays useful
    across schema growth.  Per-stage timings (schema 4+) are gated the same
    way for stages recorded in *both* entries whose reference time clears
    ``stage_tolerance_ms`` — older references without stage breakdowns,
    and stages too small to measure reliably, pass vacuously.  Returns one
    human-readable line per regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if stage_tolerance_ms < 0:
        raise ValueError("stage tolerance must be non-negative")
    limit = 1.0 + tolerance / 100.0
    stage_floor = stage_tolerance_ms / 1000.0
    regressions = []
    reference_results = reference.get("results", {})
    current_results = current.get("results", {})
    for name in sorted(set(reference_results) & set(current_results)):
        old = reference_results[name]["median"]
        new = current_results[name]["median"]
        if old > 0 and new > old * limit:
            regressions.append(
                f"{name}: {new:.3f} s vs reference {old:.3f} s "
                f"(+{(new / old - 1.0) * 100.0:.1f}% > {tolerance:g}%)"
            )
        # Search-quality gates (schema 6+): more evaluations to reach the
        # front is a regression exactly like more seconds; losing the
        # exhaustive-best match is an unconditional one.
        old_evals = reference_results[name].get("evals_to_front")
        new_evals = current_results[name].get("evals_to_front")
        if (isinstance(old_evals, (int, float)) and old_evals > 0
                and isinstance(new_evals, (int, float))
                and new_evals > old_evals * limit):
            regressions.append(
                f"{name}[evals_to_front]: {new_evals:g} vs reference "
                f"{old_evals:g} "
                f"(+{(new_evals / old_evals - 1.0) * 100.0:.1f}% "
                f"> {tolerance:g}%)"
            )
        if (reference_results[name].get("matched_exhaustive_best") is True
                and current_results[name].get("matched_exhaustive_best")
                is False):
            regressions.append(
                f"{name}[matched_exhaustive_best]: false vs reference true "
                "(the surrogate no longer finds the exhaustive best config)"
            )
        # Observability-overhead gate (schema 7+): tracing must stay
        # near-free.  Over the recorded absolute limit *and* worse than
        # the reference fails — the second condition keeps one noisy
        # reference run from blocking every later PR.
        new_pct = current_results[name].get("overhead_pct")
        limit_pct = current_results[name].get("overhead_limit_pct")
        old_pct = reference_results[name].get("overhead_pct")
        if (isinstance(new_pct, (int, float))
                and isinstance(limit_pct, (int, float))
                and new_pct > limit_pct
                and (not isinstance(old_pct, (int, float))
                     or new_pct > old_pct)):
            regressions.append(
                f"{name}[overhead_pct]: {new_pct:g}% vs limit {limit_pct:g}% "
                f"(reference {old_pct if old_pct is not None else 'n/a'})"
            )
        old_stages = reference_results[name].get("stages") or {}
        new_stages = current_results[name].get("stages") or {}
        for stage in sorted(set(old_stages) & set(new_stages)):
            old_stage = old_stages[stage]
            new_stage = new_stages[stage]
            if (old_stage >= stage_floor
                    and new_stage > old_stage * limit):
                regressions.append(
                    f"{name}[{stage}]: {new_stage:.3f} s vs reference "
                    f"{old_stage:.3f} s "
                    f"(+{(new_stage / old_stage - 1.0) * 100.0:.1f}% "
                    f"> {tolerance:g}%)"
                )
    return regressions


def gate(payload: dict, reference_path: Path, tolerance: float,
         stage_tolerance_ms: float = DEFAULT_STAGE_TOLERANCE_MS) -> int:
    """Load a reference file, report regressions, return the exit code.

    The shared tail of both bench entry points (``repro-bench`` and
    ``repro-experiments bench``): clean :class:`SystemExit` on unreadable
    references, one line per regression, 1 when anything regressed.
    """
    try:
        reference = json.loads(reference_path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--compare {reference_path}: {exc}") from exc
    regressions = compare_results(reference, payload, tolerance,
                                  stage_tolerance_ms)
    if regressions:
        print(f"REGRESSIONS vs {reference_path}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"no regressions vs {reference_path} (tolerance {tolerance:g}%, "
          f"stage floor {stage_tolerance_ms:g}ms)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path.cwd() / "BENCH_core.json",
        help="where to write the results (default: ./BENCH_core.json)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed repetitions per benchmark; the median is reported",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the job-aware benchmarks "
             "(session_cached_rerun warm-up); recorded in the output",
    )
    parser.add_argument(
        "--compare", type=Path, default=None, metavar="REFERENCE",
        help="reference BENCH json; exit non-zero when any shared "
             "benchmark's median regresses beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="allowed regression vs --compare, in percent (default: 25)",
    )
    parser.add_argument(
        "--stage-tolerance-ms", type=float,
        default=DEFAULT_STAGE_TOLERANCE_MS, metavar="MS",
        help="per-stage gate floor: stages whose reference time is below "
             "this many milliseconds are not gated (default: 50)",
    )
    parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        help="kernel backend for this run (default: REPRO_ACCEL or auto)",
    )
    parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        help="trace transport for sharded benches "
             "(default: REPRO_DATAPLANE or auto)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        raise SystemExit("--tolerance must be non-negative")
    if args.stage_tolerance_ms < 0:
        raise SystemExit("--stage-tolerance-ms must be non-negative")
    if args.accel:
        import os

        from repro.accel import ACCEL_ENV, set_backend

        try:
            set_backend(args.accel)
        except ValueError as exc:
            raise SystemExit(f"--accel: {exc}") from exc
        # Exported so --jobs worker processes resolve the same backend.
        os.environ[ACCEL_ENV] = args.accel
    if args.dataplane:
        import os

        from repro.runtime.dataplane import DATAPLANE_ENV, set_mode

        try:
            set_mode(args.dataplane)
        except ValueError as exc:
            raise SystemExit(f"--dataplane: {exc}") from exc
        os.environ[DATAPLANE_ENV] = args.dataplane
    payload = run(args.output, repeat=args.repeat, jobs=args.jobs,
                  stage_tolerance_ms=args.stage_tolerance_ms)
    if args.compare is not None:
        return gate(payload, args.compare, args.tolerance,
                    args.stage_tolerance_ms)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
