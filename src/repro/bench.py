"""Core hot-path benchmark: writes ``BENCH_core.json``.

Times the paths every PR is expected to keep fast:

* ``trace_generation``     — functional simulation of the Figure 5 fast
  benchmarks (fresh workloads, no cache),
* ``profile_machine``      — miss-event profiling of those traces on the
  default machine (trace generation excluded),
* ``dse_evaluate``         — model-only ``DesignSpaceExplorer.evaluate`` of
  the Figure 5 fast benchmarks across the Figure 5 (reduced) design space,
  including the profiling passes the explorer triggers,
* ``api_batch_evaluate``   — the public ``repro.api`` facade answering all
  19 MiBench workloads x 4 machine presets through ``evaluate_many`` on a
  cold session (trace generation included),
* ``session_cached_rerun`` — a warm :class:`~repro.runtime.session.Session`
  answering the same workload/profile requests purely from the on-disk
  artifact cache (the hit path: zero compilations, zero trace generations),
* ``service_warm_eval``    — 50 warm ``POST /v1/eval`` round trips through
  a running :mod:`repro.service` server (result-cache hits, HTTP included)
  — the served-request latency a repeat API consumer pays, to compare
  against ``api_batch_evaluate``'s cold per-request cost.

Each benchmark runs ``--repeat`` times and the *median* is reported.  The
output schema (``schema_version`` 2) records the Python version and job
count next to the results:

.. code-block:: json

    {"schema_version": 2, "python_version": "3.11.7", "jobs": 1,
     "repeats": 3, "results": {"trace_generation": {"median": ..., "runs": [...]}}}

Run via ``make bench``, ``PYTHONPATH=src python benchmarks/run_bench.py``,
``repro-bench`` or ``repro-experiments bench``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import reduced_design_space
from repro.experiments.common import FIGURE5_FAST_BENCHMARKS
from repro.machine import DEFAULT_MACHINE
from repro.profiler.machine_stats import profile_machine
from repro.runtime.session import Session
from repro.workloads import get_workload

#: Version of the BENCH_core.json layout.
BENCH_SCHEMA_VERSION = 2


def _fresh_workloads():
    """Figure 5 fast-benchmark workloads, bypassing the registry cache."""
    return [get_workload(name, use_cache=False) for name in FIGURE5_FAST_BENCHMARKS]


def bench_trace_generation() -> float:
    workloads = _fresh_workloads()
    start = time.perf_counter()
    for workload in workloads:
        workload.trace()
    return time.perf_counter() - start


def bench_profile_machine() -> float:
    traces = [workload.trace() for workload in _fresh_workloads()]
    start = time.perf_counter()
    for trace in traces:
        profile_machine(trace, DEFAULT_MACHINE)
    return time.perf_counter() - start


def bench_dse_evaluate() -> float:
    workloads = _fresh_workloads()
    for workload in workloads:
        workload.trace()
    explorer = DesignSpaceExplorer(reduced_design_space().configurations())
    start = time.perf_counter()
    for workload in workloads:
        explorer.evaluate(workload)
    return time.perf_counter() - start


def bench_api_batch_evaluate(jobs: int = 1) -> float:
    """The public facade's batch path: 19 workloads x 4 machine presets.

    Every MiBench workload crossed with every built-in machine preset is
    answered by the ``analytical`` backend through ``evaluate_many`` on a
    fresh session — the cost a cold API consumer pays for a full suite
    sweep, trace generation included.
    """
    from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
    from repro.machine import MACHINE_PRESETS
    from repro.workloads.registry import suite_names

    machines = [MachineSpec(preset) for preset in MACHINE_PRESETS.names()]
    requests = [
        EvalRequest(workload=WorkloadSpec(name), machine=machine)
        for name in suite_names("mibench")
        for machine in machines
    ]
    with tempfile.TemporaryDirectory() as cache_dir:
        session = Session(cache_dir=cache_dir if jobs > 1 else None, jobs=jobs)
        start = time.perf_counter()
        evaluate_many(requests, session=session)
        return time.perf_counter() - start


def _warm_profile(session: Session, name: str) -> str:
    """Cache-warming work unit (module-level so process pools can pickle it)."""
    session.miss_profile(name, DEFAULT_MACHINE)
    return name


def bench_session_cached_rerun(jobs: int = 1) -> float:
    """Artifact-cache hit path: a second session against a warmed cache dir.

    The (untimed) warm-up shards across ``jobs`` worker processes; the timed
    rerun is the serial hit path every later session enjoys.
    """
    with tempfile.TemporaryDirectory() as cache_dir:
        warmup = Session(cache_dir=cache_dir, jobs=jobs)
        warmup.map(_warm_profile, list(FIGURE5_FAST_BENCHMARKS))

        session = Session(cache_dir=cache_dir)
        start = time.perf_counter()
        for name in FIGURE5_FAST_BENCHMARKS:
            session.miss_profile(name, DEFAULT_MACHINE)
        elapsed = time.perf_counter() - start
        if session.stats.traces_generated or session.stats.workloads_compiled:
            raise RuntimeError(
                "session_cached_rerun regenerated state; the artifact-cache "
                f"hit path is broken: {session.stats.as_dict()}"
            )
    return elapsed


def bench_service_warm_eval() -> float:
    """Warm served-request latency: 50 cache-hit ``POST /v1/eval`` calls.

    An ephemeral :mod:`repro.service` server answers one cold request
    (untimed: compilation, trace generation, profiling), then the same
    request 50 more times — every repeat is a result-cache hit, so the
    timed loop measures the full HTTP round trip plus the cache lookup,
    i.e. the steady-state latency the service exists to provide.
    """
    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread, ServiceConfig

    request = {"workload": "sha", "machine": {"preset": "paper_default"}}
    with tempfile.TemporaryDirectory() as cache_dir:
        with ServerThread(ServiceConfig(port=0, jobs=1,
                                        cache_dir=cache_dir)) as running:
            client = ServiceClient(port=running.port)
            client.evaluate(request)  # cold: pays the whole pipeline
            start = time.perf_counter()
            for _ in range(50):
                client.evaluate(request)
            return time.perf_counter() - start


BENCHES = {
    "trace_generation": bench_trace_generation,
    "profile_machine": bench_profile_machine,
    "dse_evaluate": bench_dse_evaluate,
    "api_batch_evaluate": bench_api_batch_evaluate,
    "session_cached_rerun": bench_session_cached_rerun,
    "service_warm_eval": bench_service_warm_eval,
}

#: Benchmarks whose callable accepts (and honours) the job count.
_JOB_AWARE = {"session_cached_rerun", "api_batch_evaluate"}


def run(output: Path, repeat: int = 3, jobs: int = 1) -> dict:
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    results: dict[str, dict] = {}
    for name, bench in BENCHES.items():
        kwargs = {"jobs": jobs} if name in _JOB_AWARE else {}
        runs = [bench(**kwargs) for _ in range(repeat)]
        median = statistics.median(runs)
        results[name] = {"median": median, "runs": runs}
        print(f"{name:22s} {median:8.3f} s  (median of {repeat})")
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "python_version": platform.python_version(),
        "jobs": jobs,
        "repeats": repeat,
        "results": results,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path.cwd() / "BENCH_core.json",
        help="where to write the results (default: ./BENCH_core.json)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timed repetitions per benchmark; the median is reported",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the job-aware benchmarks "
             "(session_cached_rerun warm-up); recorded in the output",
    )
    args = parser.parse_args(argv)
    run(args.output, repeat=args.repeat, jobs=args.jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
