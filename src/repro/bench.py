"""Core hot-path benchmark: writes ``BENCH_core.json``.

Times the three paths every PR is expected to keep fast:

* ``trace_generation`` — functional simulation of the Figure 5 fast
  benchmarks (fresh workloads, no cache),
* ``profile_machine``  — miss-event profiling of those traces on the
  default machine (trace generation excluded),
* ``dse_evaluate``     — model-only ``DesignSpaceExplorer.evaluate`` of the
  Figure 5 fast benchmarks across the Figure 5 (reduced) design space,
  including the profiling passes the explorer triggers.

The output schema is a flat ``{bench_name: seconds}`` mapping so successive
PRs can be compared with a one-line diff.  Run via ``make bench``,
``PYTHONPATH=src python benchmarks/run_bench.py`` or the ``repro-bench``
console script.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import reduced_design_space
from repro.experiments.common import FIGURE5_FAST_BENCHMARKS
from repro.machine import DEFAULT_MACHINE
from repro.profiler.machine_stats import profile_machine
from repro.workloads import get_workload


def _fresh_workloads():
    """Figure 5 fast-benchmark workloads, bypassing the registry cache."""
    return [get_workload(name, use_cache=False) for name in FIGURE5_FAST_BENCHMARKS]


def bench_trace_generation() -> float:
    workloads = _fresh_workloads()
    start = time.perf_counter()
    for workload in workloads:
        workload.trace()
    return time.perf_counter() - start


def bench_profile_machine() -> float:
    traces = [workload.trace() for workload in _fresh_workloads()]
    start = time.perf_counter()
    for trace in traces:
        profile_machine(trace, DEFAULT_MACHINE)
    return time.perf_counter() - start


def bench_dse_evaluate() -> float:
    workloads = _fresh_workloads()
    for workload in workloads:
        workload.trace()
    explorer = DesignSpaceExplorer(reduced_design_space().configurations())
    start = time.perf_counter()
    for workload in workloads:
        explorer.evaluate(workload)
    return time.perf_counter() - start


BENCHES = {
    "trace_generation": bench_trace_generation,
    "profile_machine": bench_profile_machine,
    "dse_evaluate": bench_dse_evaluate,
}


def run(output: Path) -> dict[str, float]:
    results: dict[str, float] = {}
    for name, bench in BENCHES.items():
        results[name] = bench()
        print(f"{name:18s} {results[name]:8.3f} s")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path.cwd() / "BENCH_core.json",
        help="where to write the results (default: ./BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    run(args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
