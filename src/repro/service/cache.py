"""In-memory TTL + LRU cache of serialized responses.

This is the layer that turns a repeated design-space question into a
millisecond answer: the server caches the exact *response body bytes* of
successful evaluations keyed by the canonical JSON of the request, so a
cache hit skips parsing, queueing, evaluation and re-serialization
entirely and is guaranteed byte-identical to the original answer.

That byte-identity guarantee is enforced, not assumed: every entry stores
the SHA-256 of its body at insertion, every hit re-verifies it, and a
mismatch (a stray write through a leaked buffer, a cosmic-ray flip, an
injected corruption in a chaos drill) evicts the entry and serves a miss
— a corrupt answer is never returned.  Evictions are counted by *reason*
(``capacity`` / ``expired`` / ``corrupt``), so a cache thrashing on size
is distinguishable from one aging out or self-healing.

It sits *above* the on-disk :class:`~repro.runtime.artifacts.ArtifactCache`
(which persists traces and profiling state between server runs): an entry
expiring here only costs a re-evaluation against the still-warm session,
not a recompilation.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Callable

#: Why an entry left the cache; each is a distinct metrics label.
EVICTION_REASONS = ("capacity", "expired", "corrupt")


def canonical_key(payload) -> str:
    """Canonical JSON of a request payload: the cache's addressing scheme.

    Key order never matters (``sort_keys``) and whitespace is normalized,
    so two clients phrasing the same request differently share one entry.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultCacheStats:
    """Counters reported through ``GET /v1/metrics``.

    Evictions are kept per reason; the ``evictions``/``expirations``
    properties preserve the original flat-counter reading (capacity
    evictions and TTL expirations respectively) for existing callers.
    """

    __slots__ = ("hits", "misses", "evicted")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evicted = {reason: 0 for reason in EVICTION_REASONS}

    @property
    def evictions(self) -> int:
        return self.evicted["capacity"]

    @property
    def expirations(self) -> int:
        return self.evicted["expired"]

    @property
    def corruptions(self) -> int:
        return self.evicted["corrupt"]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": dict(self.evicted),
        }


class ResultCache:
    """Bounded mapping of ``canonical request JSON -> response bytes``.

    Entries live for ``ttl_seconds`` after insertion and the least recently
    *used* entry is evicted once ``capacity`` entries *or* ``max_bytes``
    cached body bytes are exceeded (sweep responses can be multi-megabyte,
    so an entry count alone does not bound memory; a single body larger
    than the whole budget is not cached at all).  The clock is injectable
    so expiry is testable without sleeping.  All operations are guarded by
    a lock: the server touches the cache from the event loop while tests
    and metrics may read it from other threads.
    """

    def __init__(self, capacity: int = 1024, ttl_seconds: float = 600.0,
                 max_bytes: int = 64 * 1024 * 1024,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (expires_at, value, sha256 hexdigest); insertion/touch
        #: order is LRU order.
        self._entries: "OrderedDict[str, tuple[float, bytes, str]]" = (
            OrderedDict())
        self._bytes = 0
        self.stats = ResultCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held across all cached response bodies."""
        with self._lock:
            return self._bytes

    def get(self, key: str) -> bytes | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            expires_at, value, digest = entry
            if self._clock() >= expires_at:
                del self._entries[key]
                self._bytes -= len(value)
                self.stats.evicted["expired"] += 1
                self.stats.misses += 1
                return None
            if hashlib.sha256(value).hexdigest() != digest:
                # The stored bytes no longer match what was inserted:
                # never serve them — self-heal to a miss.
                del self._entries[key]
                self._bytes -= len(value)
                self.stats.evicted["corrupt"] += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: bytes) -> None:
        if len(value) > self.max_bytes:
            return  # a body that would evict everything else is not worth caching
        with self._lock:
            stale = self._entries.pop(key, None)
            if stale is not None:
                self._bytes -= len(stale[1])
            self._entries[key] = (self._clock() + self.ttl_seconds, value,
                                  hashlib.sha256(value).hexdigest())
            self._bytes += len(value)
            while (len(self._entries) > self.capacity
                   or self._bytes > self.max_bytes):
                _, (_, evicted, _) = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.stats.evicted["capacity"] += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
