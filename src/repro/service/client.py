"""Blocking client SDK for the evaluation service.

:class:`ServiceClient` wraps the service endpoints in typed calls
mirroring the in-process :mod:`repro.api` facade::

    from repro.service import ServiceClient

    client = ServiceClient(port=8765)
    result = client.evaluate({"workload": "sha", "machine": {"l2_size": "1MB"}})
    print(result.cpi)

    results = client.sweep({"workloads": ["sha", "qsort"],
                            "axes": {"l2_size": ["256KB", "1MB"]}})

Built on :mod:`http.client` (stdlib), one connection per call — the
server answers ``Connection: close``.  Non-2xx responses raise
:class:`ServiceError` carrying the status and the server's ``error``
message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Mapping

from repro.api.spec import EvalRequest, EvalResult
from repro.api.sweep import SweepRequest
from repro.obs import tracing


class ServiceError(Exception):
    """A non-2xx service response; ``status`` holds the HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking HTTP client for one evaluation server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            # Propagate the caller's trace context so the server's spans
            # land in the same tree (the header names the trace and the
            # parent span; the server echoes the trace id back).
            ctx = tracing.current_context()
            if ctx is not None:
                headers[tracing.TRACE_HEADER] = ctx.to_header()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: bytes | None = None) -> bytes:
        status, payload = self._request(method, path, body)
        if status != 200:
            try:
                message = json.loads(payload.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = payload.decode("utf-8", errors="replace")
            raise ServiceError(status, message)
        return payload

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def evaluate_raw(self, request: "EvalRequest | Mapping") -> bytes:
        """``POST /v1/eval`` returning the exact response body bytes.

        The body is byte-identical to ``repro.api.evaluate(request)
        .to_json()`` — this is the method the equivalence tests use.
        """
        parsed = EvalRequest.parse(request)
        return self._checked("POST", "/v1/eval", parsed.to_json().encode("utf-8"))

    def evaluate(self, request: "EvalRequest | Mapping") -> EvalResult:
        """``POST /v1/eval`` decoded into an :class:`EvalResult`."""
        return EvalResult.from_json(self.evaluate_raw(request).decode("utf-8"))

    def sweep(self, sweep: "SweepRequest | Mapping") -> list[EvalResult]:
        """``POST /v1/sweep`` decoded into the expanded result list."""
        parsed = sweep if isinstance(sweep, SweepRequest) else SweepRequest.from_dict(sweep)
        body = self._checked("POST", "/v1/sweep", parsed.to_json().encode("utf-8"))
        payload = json.loads(body.decode("utf-8"))
        return [EvalResult.from_dict(entry) for entry in payload["results"]]

    def optimize_raw(self, request) -> bytes:
        """``POST /v1/optimize`` returning the exact response body bytes.

        The body is byte-identical to ``repro.search.optimize(request)
        .to_json()`` run in-process (and to ``repro optimize --format
        json``) — this is the method the equivalence tests use.
        """
        from repro.search.optimize import OptimizeRequest

        parsed = OptimizeRequest.parse(request)
        return self._checked("POST", "/v1/optimize",
                             parsed.to_json().encode("utf-8"))

    def optimize(self, request):
        """``POST /v1/optimize`` decoded into an ``OptimizeResult``."""
        from repro.search.optimize import OptimizeResult

        return OptimizeResult.from_json(
            self.optimize_raw(request).decode("utf-8"))

    def health(self) -> dict:
        """``GET /v1/health`` as a dict."""
        return json.loads(self._checked("GET", "/v1/health").decode("utf-8"))

    def metrics(self) -> dict:
        """``GET /v1/metrics`` as a dict."""
        return json.loads(self._checked("GET", "/v1/metrics").decode("utf-8"))

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` as exposition text."""
        return self._checked(
            "GET", "/v1/metrics?format=prometheus").decode("utf-8")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/v1/health`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)
