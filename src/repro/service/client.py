"""Blocking client SDK for the evaluation service.

:class:`ServiceClient` wraps the service endpoints in typed calls
mirroring the in-process :mod:`repro.api` facade::

    from repro.service import ServiceClient

    client = ServiceClient(port=8765)
    result = client.evaluate({"workload": "sha", "machine": {"l2_size": "1MB"}})
    print(result.cpi)

    results = client.sweep({"workloads": ["sha", "qsort"],
                            "axes": {"l2_size": ["256KB", "1MB"]}})

Built on :mod:`http.client` (stdlib), one connection per call — the
server answers ``Connection: close``.

Failures are typed by *what the caller should do about them*:

* :class:`ServiceUnavailable` — the server is not there (connection
  refused / reset) or says it cannot take work right now (503 at
  capacity, 429 rate-limited).  Retryable: back off and try again.
* :class:`ServiceTimeout` — the server *is* there but the request outran
  a deadline (socket read timeout, or a server-side 504).  Retrying may
  help a transient stall but a too-slow request will time out again;
  raise the timeout or shrink the request.
* :class:`ServiceError` — every other non-2xx answer (400 bad request,
  404, 500...).  Not retryable: the request itself is the problem.

With ``retries > 0`` the client retries retryable failures itself, with
jittered exponential backoff that honors a ``Retry-After`` header when
the server sends one (429/503).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Mapping

from repro.api.spec import EvalRequest, EvalResult
from repro.api.sweep import SweepRequest
from repro.obs import tracing


class ServiceError(Exception):
    """A non-2xx service response; ``status`` holds the HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceUnavailable(ServiceError):
    """The server is absent or shedding load (refused/reset, 503, 429).

    Retryable: the request was fine, the service could not take it.
    Transport-level instances carry status 503.
    """


class ServiceTimeout(ServiceError):
    """A deadline expired (socket read timeout, or a server-side 504).

    Transport-level instances carry status 504.  The response body of a
    server-side sweep 504 includes the partial results computed before
    the deadline; this exception only carries the error message.
    """


#: Statuses the retry loop treats as retryable (with ``Retry-After``).
_RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """Blocking HTTP client for one evaluation server.

    ``retries`` enables client-side retry of retryable failures
    (:class:`ServiceUnavailable`, :class:`ServiceTimeout`, and 429/503
    responses): up to ``retries`` re-attempts with jittered exponential
    backoff starting at ``backoff_base`` seconds and capped at
    ``backoff_max``, honoring any server ``Retry-After`` hint.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0, retries: int = 0,
                 backoff_base: float = 0.1, backoff_max: float = 2.0,
                 rng: random.Random | None = None,
                 sleeper=time.sleep):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleeper

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _request_full(self, method: str, path: str,
                      body: bytes | None = None
                      ) -> tuple[int, bytes, dict[str, str]]:
        """One exchange: ``(status, body, lower-cased headers)``.

        Raises :class:`ServiceTimeout` when the socket deadline expires
        and :class:`ServiceUnavailable` when the server cannot be
        reached at all.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            # Propagate the caller's trace context so the server's spans
            # land in the same tree (the header names the trace and the
            # parent span; the server echoes the trace id back).
            ctx = tracing.current_context()
            if ctx is not None:
                headers[tracing.TRACE_HEADER] = ctx.to_header()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return (response.status, response.read(),
                    {name.lower(): value
                     for name, value in response.getheaders()})
        except TimeoutError as exc:
            raise ServiceTimeout(
                504, f"no response from {self.host}:{self.port} within "
                     f"{self.timeout}s"
            ) from exc
        except (ConnectionError, OSError) as exc:
            raise ServiceUnavailable(
                503, f"cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> tuple[int, bytes]:
        status, payload, _ = self._request_full(method, path, body)
        return status, payload

    def _backoff(self, attempt: int, retry_after: str | None) -> float:
        """Jittered exponential delay, floored by any ``Retry-After``."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._rng.random() * 0.5
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    def _checked(self, method: str, path: str,
                 body: bytes | None = None) -> bytes:
        attempts = self.retries + 1
        for attempt in range(attempts):
            last = attempt == attempts - 1
            try:
                status, payload, headers = self._request_full(method, path,
                                                              body)
            except (ServiceUnavailable, ServiceTimeout):
                if last:
                    raise
                self._sleep(self._backoff(attempt, None))
                continue
            if status == 200:
                return payload
            try:
                message = json.loads(payload.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = payload.decode("utf-8", errors="replace")
            if status in _RETRYABLE_STATUSES and not last:
                self._sleep(self._backoff(attempt,
                                          headers.get("retry-after")))
                continue
            if status in _RETRYABLE_STATUSES:
                raise ServiceUnavailable(status, message)
            if status == 504:
                raise ServiceTimeout(status, message)
            raise ServiceError(status, message)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def evaluate_raw(self, request: "EvalRequest | Mapping") -> bytes:
        """``POST /v1/eval`` returning the exact response body bytes.

        The body is byte-identical to ``repro.api.evaluate(request)
        .to_json()`` — this is the method the equivalence tests use.
        """
        parsed = EvalRequest.parse(request)
        return self._checked("POST", "/v1/eval", parsed.to_json().encode("utf-8"))

    def evaluate(self, request: "EvalRequest | Mapping") -> EvalResult:
        """``POST /v1/eval`` decoded into an :class:`EvalResult`."""
        return EvalResult.from_json(self.evaluate_raw(request).decode("utf-8"))

    def sweep(self, sweep: "SweepRequest | Mapping") -> list[EvalResult]:
        """``POST /v1/sweep`` decoded into the expanded result list."""
        parsed = sweep if isinstance(sweep, SweepRequest) else SweepRequest.from_dict(sweep)
        body = self._checked("POST", "/v1/sweep", parsed.to_json().encode("utf-8"))
        payload = json.loads(body.decode("utf-8"))
        return [EvalResult.from_dict(entry) for entry in payload["results"]]

    def optimize_raw(self, request) -> bytes:
        """``POST /v1/optimize`` returning the exact response body bytes.

        The body is byte-identical to ``repro.search.optimize(request)
        .to_json()`` run in-process (and to ``repro optimize --format
        json``) — this is the method the equivalence tests use.
        """
        from repro.search.optimize import OptimizeRequest

        parsed = OptimizeRequest.parse(request)
        return self._checked("POST", "/v1/optimize",
                             parsed.to_json().encode("utf-8"))

    def optimize(self, request):
        """``POST /v1/optimize`` decoded into an ``OptimizeResult``."""
        from repro.search.optimize import OptimizeResult

        return OptimizeResult.from_json(
            self.optimize_raw(request).decode("utf-8"))

    def health(self) -> dict:
        """``GET /v1/health`` as a dict."""
        return json.loads(self._checked("GET", "/v1/health").decode("utf-8"))

    def metrics(self) -> dict:
        """``GET /v1/metrics`` as a dict."""
        return json.loads(self._checked("GET", "/v1/metrics").decode("utf-8"))

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` as exposition text."""
        return self._checked(
            "GET", "/v1/metrics?format=prometheus").decode("utf-8")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``/v1/health`` until the server answers (startup races).

        Raises :class:`ServiceUnavailable` when the server has not come
        up within ``timeout`` seconds — the "not up yet" case, distinct
        from a :class:`ServiceTimeout` on an established connection.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceUnavailable as exc:
                if time.monotonic() >= deadline:
                    raise ServiceUnavailable(
                        503, f"server at {self.host}:{self.port} not ready "
                             f"after {timeout}s: {exc.message}"
                    ) from exc
                time.sleep(interval)
