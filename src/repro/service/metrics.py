"""Service observability: request counters and latency percentiles.

Everything ``GET /v1/metrics`` reports is collected here, now as a thin
adapter over one :class:`~repro.obs.metrics.MetricsRegistry` — the same
registry the Prometheus exposition (``?format=prometheus``) renders, so
the JSON and text views can never drift apart.  Latencies are kept per
endpoint in a bounded window (the registry histogram retains the most
recent :data:`~repro.obs.metrics.HISTOGRAM_WINDOW` observations) so the
percentile report tracks current behaviour rather than averaging over
the server's whole lifetime; counters are cumulative.

Two signals the pre-registry implementation could not see:

* ``in_flight`` — requests currently being handled per endpoint (a gauge:
  incremented at accept, decremented at response);
* ``queue_wait_ms`` — time jobs spent queued behind the bounded executor
  before a session thread picked them up.  A saturated server used to
  report healthy handler latencies while requests aged in the queue;
  queue wait makes saturation visible.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry, percentile

#: Observations retained per endpoint for the percentile report (the
#: registry histogram window; re-exported for the tests that assert it).
from repro.obs.metrics import HISTOGRAM_WINDOW as LATENCY_WINDOW  # noqa: F401

#: Percentiles reported for every endpoint.
PERCENTILES = (50, 90, 99)

__all__ = ["LATENCY_WINDOW", "PERCENTILES", "ServiceMetrics", "percentile"]


class ServiceMetrics:
    """Counters and latency windows for one server instance."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._started_at = clock()
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "http_requests_total", "Completed HTTP requests.",
            labels=("endpoint",))
        self._errors = self.registry.counter(
            "http_errors_total", "HTTP responses with status >= 400.",
            labels=("endpoint",))
        self._responses = self.registry.counter(
            "http_responses_total", "HTTP responses by status code.",
            labels=("status",))
        self._latency = self.registry.histogram(
            "http_request_seconds", "End-to-end request handling time.",
            labels=("endpoint",))
        self._in_flight = self.registry.gauge(
            "http_in_flight", "Requests currently being handled.",
            labels=("endpoint",))
        self._queue_wait = self.registry.histogram(
            "queue_wait_seconds",
            "Time jobs spent queued before a session thread picked them up.")
        self._evaluations = self.registry.counter(
            "evaluations_total", "Model evaluations answered.")
        self._rate_limited = self.registry.counter(
            "rate_limited_total",
            "Requests rejected by per-client rate limiting (429).")
        self._deadline_timeouts = self.registry.counter(
            "deadline_timeouts_total",
            "Requests that outran the server-side deadline (504).")

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started_at

    @property
    def evaluations_total(self) -> int:
        return int(self._evaluations.value)

    def request_started(self, endpoint: str) -> None:
        """A request entered handling (pairs with :meth:`observe`)."""
        self._in_flight.labels(endpoint=endpoint).inc()

    def observe(self, endpoint: str, status: int, seconds: float, *,
                started: bool = False) -> None:
        """Record one completed request.

        ``started=True`` also decrements the endpoint's in-flight gauge
        (the caller bracketed handling with :meth:`request_started`).
        """
        self._requests.labels(endpoint=endpoint).inc()
        self._responses.labels(status=str(status)).inc()
        if status >= 400:
            self._errors.labels(endpoint=endpoint).inc()
        self._latency.labels(endpoint=endpoint).observe(seconds)
        if started:
            self._in_flight.labels(endpoint=endpoint).dec()

    def observe_queue_wait(self, seconds: float) -> None:
        """Record how long one job waited in the executor queue."""
        self._queue_wait.observe(seconds)

    def count_evaluations(self, count: int) -> None:
        self._evaluations.inc(count)

    def count_rate_limited(self) -> None:
        self._rate_limited.inc()

    def count_deadline_timeout(self) -> None:
        self._deadline_timeouts.inc()

    def snapshot(self) -> dict:
        """The ``GET /v1/metrics`` payload body (sans queue/cache sections)."""
        counts = {child.label_values[0]: int(child.value)
                  for child in self._requests.children()}
        errors = {child.label_values[0]: int(child.value)
                  for child in self._errors.children()}
        in_flight = {child.label_values[0]: int(child.value)
                     for child in self._in_flight.children()}
        endpoints = {}
        for endpoint in sorted(counts):
            latency = self._latency.labels(endpoint=endpoint)
            percentiles = latency.percentiles(PERCENTILES)
            endpoints[endpoint] = {
                "count": counts[endpoint],
                "errors": errors.get(endpoint, 0),
                "in_flight": in_flight.get(endpoint, 0),
                "latency_ms": {name: round(value * 1000.0, 3)
                               for name, value in percentiles.items()},
            }
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "requests_total": sum(counts.values()),
            "evaluations_total": self.evaluations_total,
            "rate_limited_total": int(self._rate_limited.value),
            "deadline_timeouts_total": int(self._deadline_timeouts.value),
            "responses": {child.label_values[0]: int(child.value)
                          for child in sorted(
                              self._responses.children(),
                              key=lambda c: c.label_values)},
            "queue_wait_ms": {
                name: round(value * 1000.0, 3)
                for name, value in
                self._queue_wait.percentiles(PERCENTILES).items()
            },
            "endpoints": endpoints,
        }
