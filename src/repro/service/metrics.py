"""Service observability: request counters and latency percentiles.

Everything ``GET /v1/metrics`` reports is collected here.  Latencies are
kept per endpoint in a bounded window (the most recent
:data:`LATENCY_WINDOW` observations) so the percentile report tracks
current behaviour rather than averaging over the server's whole lifetime;
counters are cumulative.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, defaultdict, deque
from typing import Sequence

#: Observations retained per endpoint for the percentile report.
LATENCY_WINDOW = 1024

#: Percentiles reported for every endpoint.
PERCENTILES = (50, 90, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServiceMetrics:
    """Counters and latency windows for one server instance."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._started_at = clock()
        self._lock = threading.Lock()
        self._requests: Counter[str] = Counter()
        self._errors: Counter[str] = Counter()
        self._responses: Counter[int] = Counter()
        self._latencies: dict[str, deque[float]] = defaultdict(
            lambda: deque(maxlen=LATENCY_WINDOW)
        )
        self.evaluations_total = 0

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started_at

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed request."""
        with self._lock:
            self._requests[endpoint] += 1
            self._responses[status] += 1
            if status >= 400:
                self._errors[endpoint] += 1
            self._latencies[endpoint].append(seconds)

    def count_evaluations(self, count: int) -> None:
        with self._lock:
            self.evaluations_total += count

    def snapshot(self) -> dict:
        """The ``GET /v1/metrics`` payload body (sans queue/cache sections)."""
        with self._lock:
            endpoints = {}
            for endpoint in sorted(self._requests):
                window = list(self._latencies[endpoint])
                latency_ms = {
                    f"p{q}": round(percentile(window, q) * 1000.0, 3)
                    for q in PERCENTILES
                } if window else {}
                endpoints[endpoint] = {
                    "count": self._requests[endpoint],
                    "errors": self._errors.get(endpoint, 0),
                    "latency_ms": latency_ms,
                }
            return {
                "uptime_seconds": round(self.uptime_seconds, 3),
                "requests_total": sum(self._requests.values()),
                "evaluations_total": self.evaluations_total,
                "responses": {str(status): count for status, count
                              in sorted(self._responses.items())},
                "endpoints": endpoints,
            }
