"""Minimal HTTP/1.1 plumbing over :mod:`asyncio` streams.

The evaluation server speaks just enough HTTP for JSON request/response
exchanges — request-line + headers + ``Content-Length`` body in, a complete
``Connection: close`` response out — implemented directly on
:class:`asyncio.StreamReader`/:class:`~asyncio.StreamWriter` so the service
layer adds **zero** runtime dependencies.  Chunked transfer encoding,
keep-alive and multipart bodies are deliberately out of scope: every
endpoint is a single JSON document each way.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

#: Reason phrases for every status the service emits.
REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}

#: Upper bounds keeping a single connection from exhausting the server.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpError(Exception):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, target path and the (possibly empty) body."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target without any query string (routing key)."""
        return self.target.partition("?")[0]

    @property
    def query(self) -> dict[str, str]:
        """Decoded query parameters (last value wins on duplicates)."""
        from urllib.parse import parse_qsl

        return dict(parse_qsl(self.target.partition("?")[2]))


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request from the stream (``None`` on a cleanly closed peer)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    except ValueError:  # StreamReader limit overrun (huge request line)
        raise HttpError(431, "request line exceeds the size limit") from None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:  # StreamReader limit overrun (huge header line)
            raise HttpError(431, "request header line exceeds the size "
                                 "limit") from None
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers exceed "
                                 f"{MAX_HEADER_BYTES} bytes")
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length header") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
    return HttpRequest(method=method.upper(), target=target,
                       headers=headers, body=body)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    headers: dict[str, str] | None = None) -> bytes:
    """A complete ``Connection: close`` HTTP/1.1 response."""
    reason = REASON_PHRASES.get(status, "Unknown")
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in headers.items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
