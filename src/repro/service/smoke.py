"""End-to-end smoke check: serve, evaluate, shut down cleanly.

Run as ``make serve-smoke`` (or ``python -m repro.service.smoke``): starts
a server on an ephemeral port against a scratch cache directory, answers
one evaluation through :class:`~repro.service.client.ServiceClient`,
verifies a warm repeat is served from the result cache, and asserts the
listener is really gone after the graceful drain.  Exit code 0 means the
whole request path — HTTP, queue, workers, session, cache, shutdown — is
alive; any failure raises.
"""

from __future__ import annotations

import sys
import tempfile

from repro.obs.log import get_logger
from repro.service.client import ServiceClient
from repro.service.server import ServerThread, ServiceConfig

_log = get_logger("repro.service.smoke")


def main(argv: list[str] | None = None) -> int:
    request = {"workload": "sha", "machine": {"preset": "paper_default"}}
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as cache_dir:
        with ServerThread(ServiceConfig(port=0, jobs=1,
                                        cache_dir=cache_dir)) as running:
            client = ServiceClient(port=running.port)
            health = client.wait_ready()
            assert health["status"] == "ok", health

            result = client.evaluate(request)
            assert result.workload == "sha" and result.cycles > 0, result

            # The identical request again: must hit the result cache.
            rerun = client.evaluate(request)
            assert rerun == result
            metrics = client.metrics()
            assert metrics["cache"]["hits"] >= 1, metrics["cache"]

            port = running.port
        # The context has drained and stopped the server: the port is closed.
        try:
            ServiceClient(port=port, timeout=2.0).health()
        except (ConnectionError, OSError):
            pass
        else:
            raise AssertionError(f"server still accepting on port {port} "
                                 "after shutdown")
    _log.info("serve-smoke OK", cpi=round(result.cpi, 4),
              warm_repeat="cached", shutdown="clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
