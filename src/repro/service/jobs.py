"""Bounded job queue feeding the evaluation worker pool.

The server never evaluates on the event loop: parsed requests become
:class:`Job` entries on a bounded :class:`asyncio.Queue` (backpressure —
a full queue is reported as ``503`` rather than buffering without limit),
and ``jobs`` worker tasks drain it, running each batch on a thread pool
through :func:`repro.api.evaluate_many` against the one shared
:class:`~repro.runtime.session.Session`.

A lock serializes session access across worker threads: evaluation is
pure-Python CPU work the GIL would serialize anyway, so the lock costs no
throughput while making the session's memoization race-free — every
served answer is byte-identical to a direct in-process ``repro.api``
call.  The worker *pool* still buys pipelining (HTTP parsing and response
serialization overlap evaluation) and bounds in-flight work; batches of
more than one request additionally shard across processes when the
session was built with ``jobs > 1``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api.spec import EvalRequest, EvalResult
from repro.obs import tracing
from repro.resilience import faults


class ServiceOverloaded(Exception):
    """The bounded job queue is full; the caller should retry later (503)."""


class JobCancelled(Exception):
    """A chunked job observed its cancel flag and stopped early."""


#: Requests evaluated per chunk when a job runs under a deadline: small
#: enough that a cancelled sweep releases the session within one chunk,
#: large enough that per-chunk overhead stays negligible.
DEADLINE_CHUNK = 16


@dataclass
class Job:
    """One unit of queued work: a request batch and the future it resolves.

    ``call`` jobs carry an arbitrary session function instead of a request
    batch (the optimize endpoint queues whole searches this way) — same
    queue, same backpressure, same session serialization.  The submitting
    request's trace context rides along (``run_in_executor`` drops
    contextvars) so evaluation spans stay under their request's tree, and
    the submission time feeds the queue-wait metric.

    ``chunked`` jobs evaluate in :data:`DEADLINE_CHUNK`-request slices,
    appending finished results to ``progress`` and checking ``cancel``
    between slices — the machinery behind server-side deadlines: a 504'd
    sweep hands back ``progress`` as its partial envelope and the
    cancelled job releases the session at the next chunk boundary instead
    of computing a full answer nobody is waiting for.
    """

    requests: Sequence[EvalRequest]
    future: asyncio.Future = field(repr=False)
    call: Callable | None = None
    context: "tracing.TraceContext | None" = None
    submitted_at: float = 0.0
    chunked: bool = False
    cancel: threading.Event = field(default_factory=threading.Event,
                                    repr=False)
    #: Results completed so far (chunked jobs only); appended from the
    #: worker thread, snapshotted by the server on deadline expiry.
    progress: list = field(default_factory=list, repr=False)


class EvalExecutor:
    """Worker pool draining a bounded queue of evaluation jobs.

    ``runner`` maps a request batch to its results; the default wires
    :func:`repro.api.evaluate_many` to ``session``.  It is injectable so
    tests can exercise queue bounds and drain behaviour with a controlled
    (e.g. deliberately blocking) workload.
    """

    def __init__(self, session, jobs: int = 1, max_queue: int = 64,
                 runner: Callable[[Sequence[EvalRequest]],
                                  list[EvalResult]] | None = None,
                 metrics=None):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.session = session
        self.jobs = jobs
        self.max_queue = max_queue
        #: Optional ``ServiceMetrics`` fed the queue-wait observations.
        self.metrics = metrics
        #: Chunked (cancellable) execution only applies to the default
        #: session runner; injected test runners always get the batch.
        self._default_runner = runner is None
        self._runner = runner if runner is not None else self._run_with_session
        self._session_lock = threading.Lock()
        self._queue: asyncio.Queue[Job] | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._workers: list[asyncio.Task] = []
        #: Jobs submitted but not yet finished (queued + in flight).
        self._pending = 0
        self.jobs_completed = 0

    # ------------------------------------------------------------------
    def _run_with_session(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        from repro.api.batch import evaluate_many

        with self._session_lock:
            with tracing.span("service.evaluate", requests=len(requests)):
                return evaluate_many(requests, session=self.session)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def start(self) -> None:
        """Create the queue and worker tasks (call from the event loop)."""
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-eval"
        )
        self._workers = [
            loop.create_task(self._worker(), name=f"repro-eval-worker-{index}")
            for index in range(self.jobs)
        ]

    def submit_job(self, requests: Sequence[EvalRequest], *,
                   chunked: bool = False) -> Job:
        """Enqueue a batch and return its :class:`Job` handle.

        The job's ``future`` resolves to the ``EvalResult`` list; the
        handle additionally exposes ``cancel`` and ``progress`` so a
        deadline-bound caller can stop the work and keep what finished.
        Raises :class:`ServiceOverloaded` immediately when the queue is
        full — the server maps this to ``503`` so clients get an honest
        backpressure signal instead of unbounded latency.  A ``jobs.admit``
        fault rule fires here, before the queue is touched, modelling an
        admission-control failure.
        """
        if self._queue is None:
            raise RuntimeError("executor is not started")
        faults.fire("jobs.admit")
        future = asyncio.get_running_loop().create_future()
        job = Job(
            requests=list(requests), future=future,
            context=tracing.current_context(),
            submitted_at=time.monotonic(),
            chunked=chunked,
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServiceOverloaded(
                f"job queue is full ({self.max_queue} pending)"
            ) from None
        self._pending += 1
        return job

    def submit(self, requests: Sequence[EvalRequest]) -> asyncio.Future:
        """Enqueue a batch; the future resolves to its ``EvalResult`` list."""
        return self.submit_job(requests).future

    def submit_call(self, call: Callable) -> asyncio.Future:
        """Enqueue a session function; the future resolves to its return.

        ``call(session)`` runs on the worker thread pool under the same
        session lock as request batches, so queued searches and queued
        evaluations serialize against each other and stay byte-identical
        to in-process calls.  Backpressure matches :meth:`submit`.
        """
        if self._queue is None:
            raise RuntimeError("executor is not started")
        faults.fire("jobs.admit")
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(Job(
                requests=(), future=future, call=call,
                context=tracing.current_context(),
                submitted_at=time.monotonic(),
            ))
        except asyncio.QueueFull:
            raise ServiceOverloaded(
                f"job queue is full ({self.max_queue} pending)"
            ) from None
        self._pending += 1
        return future

    def _run_call(self, call: Callable):
        with self._session_lock:
            return call(self.session)

    def _run_chunked(self, job: Job) -> list[EvalResult]:
        """Evaluate a deadline-bound job in cancellable chunks.

        Results accumulate on ``job.progress`` so a caller whose wait
        expired can still serve what completed; ``job.cancel`` is checked
        between chunks, releasing the session within one chunk of the
        deadline instead of finishing an answer nobody is waiting for.
        Chunking changes only scheduling, not results: each request is
        evaluated exactly as in the unchunked path, so the concatenated
        chunks are byte-identical to a full-batch answer.
        """
        from repro.api.batch import evaluate_many

        requests = list(job.requests)
        with self._session_lock:
            with tracing.span("service.evaluate", requests=len(requests),
                              chunked=True):
                for start in range(0, len(requests), DEADLINE_CHUNK):
                    if job.cancel.is_set():
                        raise JobCancelled(
                            f"cancelled after {len(job.progress)}"
                            f"/{len(requests)} results")
                    chunk = requests[start:start + DEADLINE_CHUNK]
                    job.progress.extend(
                        evaluate_many(chunk, session=self.session))
        return list(job.progress)

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            await self._process(job)

    async def _process(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        if job.submitted_at:
            waited = max(0.0, time.monotonic() - job.submitted_at)
            if self.metrics is not None:
                self.metrics.observe_queue_wait(waited)
            with tracing.attach(job.context):
                tracing.emit_span("service.queue_wait", waited)

        # ``run_in_executor`` does not carry contextvars into the worker
        # thread; re-attach the submitting request's trace context there
        # so evaluation spans parent under the request.
        def _run():
            with tracing.attach(job.context):
                if job.call is not None:
                    return self._run_call(job.call)
                if job.chunked and self._default_runner:
                    return self._run_chunked(job)
                return self._runner(job.requests)

        try:
            results = await loop.run_in_executor(self._pool, _run)
            if not job.future.cancelled():
                job.future.set_result(results)
        except Exception as exc:  # surfaced as a 500 by the server
            if not job.future.cancelled():
                job.future.set_exception(exc)
        finally:
            self.jobs_completed += 1
            self._pending -= 1

    async def drain(self) -> None:
        """Finish every queued job, then stop the workers (graceful path).

        Live workers drain the backlog.  If the event loop's teardown
        already cancelled them — Python 3.10's ``asyncio.run`` cancels
        *every* task on ``KeyboardInterrupt``, 3.11+ only the main one —
        the remaining queued jobs are processed inline here, so the
        no-accepted-request-is-dropped contract holds on every supported
        Python (and Ctrl-C can never hang waiting on dead workers).
        """
        if self._queue is None:
            return
        while self._pending:
            if all(worker.done() for worker in self._workers):
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break  # an in-flight job died with its cancelled worker
                await self._process(job)
            else:
                await asyncio.sleep(0.005)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._queue = None
