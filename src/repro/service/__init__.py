"""``repro.service`` — the long-lived evaluation server and its client.

Everything :mod:`repro.api` answers in-process, served over HTTP with the
expensive state kept warm between requests::

    # serve (CLI):    repro-experiments serve --port 8765 --cache-dir .cache
    # or in-process:
    from repro.service import ServerThread, ServiceClient, ServiceConfig

    with ServerThread(ServiceConfig(port=0, cache_dir=".cache")) as running:
        client = ServiceClient(port=running.port)
        result = client.evaluate({"workload": "sha",
                                  "machine": {"l2_size": "1MB"}})

The server is plain ``asyncio`` plus a hand-rolled HTTP/1.1 layer — no
runtime dependencies beyond the standard library.  Requests flow through
a bounded job queue into a worker pool sharing one
:class:`~repro.runtime.session.Session`, so traces, program profiles and
single-pass engine state are compiled once and reused across requests;
successful responses are additionally cached in a TTL+LRU
:class:`~repro.service.cache.ResultCache`, making a repeated query a
dictionary lookup.  Served answers are byte-identical to direct
``repro.api`` calls.
"""

from repro.service.cache import ResultCache, ResultCacheStats, canonical_key
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.http import HttpError, HttpRequest, read_request, render_response
from repro.service.jobs import EvalExecutor, Job, JobCancelled, ServiceOverloaded
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.server import EvalServer, ServerThread, ServiceConfig, serve

__all__ = [
    "EvalExecutor",
    "EvalServer",
    "HttpError",
    "HttpRequest",
    "Job",
    "JobCancelled",
    "ResultCache",
    "ResultCacheStats",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceUnavailable",
    "canonical_key",
    "percentile",
    "read_request",
    "render_response",
    "serve",
]
