"""The asyncio evaluation server: routes, lifecycle and the CLI entry.

Endpoints (all JSON):

* ``POST /v1/eval``   — one :class:`~repro.api.spec.EvalRequest`; the
  response body is **byte-identical** to
  ``repro.api.evaluate(request).to_json()`` run in-process;
* ``POST /v1/sweep``  — one :class:`~repro.api.sweep.SweepRequest`,
  expanded and answered as ``{"schema_version", "count", "results"}``;
* ``POST /v1/optimize`` — one :class:`~repro.search.optimize.OptimizeRequest`
  (a whole design-space search); the response body is byte-identical to
  ``repro.search.optimize(request).to_json()`` run in-process;
* ``GET /v1/health``  — liveness plus queue/cache occupancy;
* ``GET /v1/metrics`` — request counters, latency percentiles, cache hit
  rate and queue depth (see :mod:`repro.service.metrics`).

Successful evaluation responses are cached in a TTL+LRU
:class:`~repro.service.cache.ResultCache` keyed by the canonical JSON of
the parsed request, layered above the on-disk artifact cache the shared
session already uses — a warm repeat skips the job queue entirely.

Shutdown is a drain: the listener closes first, in-flight connections
finish, then the job queue empties before the worker pool stops, so no
accepted request is ever dropped.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass

from repro.api.batch import validate_requests
from repro.api.spec import API_SCHEMA_VERSION, EvalRequest
from repro.api.sweep import SweepRequest
from repro.obs import tracing
from repro.runtime.session import pooled_session
from repro.service.cache import ResultCache, canonical_key
from repro.service.http import (
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from repro.service.jobs import EvalExecutor, ServiceOverloaded
from repro.service.metrics import ServiceMetrics
from repro.resilience import faults
from repro.resilience.faults import InjectedFault
from repro.resilience.ratelimit import RateLimiter


@dataclass(frozen=True)
class ServiceConfig:
    """Everything needed to stand up one evaluation server."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests, benches); read it back via ``.port``.
    port: int = 8765
    #: Worker tasks/threads; also the shared session's process-pool width.
    jobs: int = 1
    #: Bounded job-queue length; a full queue answers 503.
    max_queue: int = 64
    #: Artifact-cache directory shared with the CLI (None: in-memory only).
    cache_dir: str | None = None
    #: Result-cache entries kept (LRU beyond this).
    cache_capacity: int = 1024
    #: Result-cache entry lifetime in seconds.
    cache_ttl: float = 600.0
    #: Result-cache byte budget across all cached response bodies.
    cache_max_bytes: int = 64 * 1024 * 1024
    #: Seconds a connection may sit without delivering a request before it
    #: is released (bounds idle liveness probes; also keeps drain prompt).
    read_timeout: float = 30.0
    #: Seconds allowed to flush a response to a slow (or stopped) reader;
    #: past it the connection is dropped so shutdown can never hang on a
    #: client that requested a large sweep and stopped consuming it.
    write_timeout: float = 30.0
    #: Server-side deadline per evaluation request (None: unbounded).  A
    #: request that outruns it is answered 504 — for sweeps with a partial
    #: envelope holding the results completed before the deadline — and
    #: the job is cancelled at its next chunk boundary.
    request_timeout: float | None = None
    #: Sustained POST requests/second allowed per client IP (0: unlimited).
    #: Excess requests are answered 429 with a ``Retry-After`` header.
    rate_limit: float = 0.0
    #: Burst allowance above ``rate_limit`` (0: derived from the rate).
    rate_burst: int = 0


#: The routing table: path -> (method, EvalServer handler method name).
ROUTES = {
    "/v1/eval": ("POST", "_handle_eval"),
    "/v1/sweep": ("POST", "_handle_sweep"),
    "/v1/optimize": ("POST", "_handle_optimize"),
    "/v1/health": ("GET", "_handle_health"),
    "/v1/metrics": ("GET", "_handle_metrics"),
}

#: The served endpoints, as metric labels.  Anything else — unknown paths,
#: unknown methods, unparsable requests — is bucketed under ``"other"`` so
#: a client scanning paths cannot grow the metrics tables without bound.
KNOWN_ENDPOINTS = frozenset(
    f"{method} {path}" for path, (method, _) in ROUTES.items()
)
OTHER_ENDPOINT = "other"


def _json_body(payload) -> bytes:
    return json.dumps(payload, indent=2).encode("utf-8")


def _error_body(message: str) -> bytes:
    return _json_body({"error": message})


class EvalServer:
    """One listening evaluation service around a shared session."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self._resources = contextlib.ExitStack()
        # pooled_session gives sharded servers (jobs > 1, no cache_dir) a
        # server-lifetime temporary cache directory, so pool workers share
        # traces and profiling state across requests instead of redoing
        # each other's work; released by stop().
        self.session = self._resources.enter_context(
            pooled_session(config.cache_dir, config.jobs)
        )
        self.cache = ResultCache(capacity=config.cache_capacity,
                                 ttl_seconds=config.cache_ttl,
                                 max_bytes=config.cache_max_bytes)
        self.metrics = ServiceMetrics()
        self.executor = EvalExecutor(self.session, jobs=config.jobs,
                                     max_queue=config.max_queue,
                                     metrics=self.metrics)
        self.ratelimiter = RateLimiter(config.rate_limit, config.rate_burst)
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        #: Handler task -> writer for connections still waiting on a
        #: request; they hold no accepted work, so drain closes their
        #: transports rather than waiting them out.
        self._reading: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish connections, empty the queue."""
        try:
            self._draining = True
            if self._server is not None:
                self._server.close()
                # Idle peers (connected, no request yet) hold no accepted
                # work and would otherwise stall the drain until their read
                # deadline; closing their transports ends those handlers as
                # a clean peer-closed read.  Loop until every handler is
                # done — this must happen BEFORE wait_closed(), which on
                # Python 3.12+ itself waits for connection handlers, and
                # the loop also covers connections accepted just before
                # close() that had not reached their read yet.  In-flight
                # requests finish normally: the executor is still live.
                while self._connections:
                    for writer in list(self._reading.values()):
                        writer.close()
                    await asyncio.wait(set(self._connections), timeout=0.1)
                await self._server.wait_closed()
                self._server = None
            # Unconditional: start() launches the workers before binding the
            # listener, so a failed bind must still tear the executor down.
            await self.executor.drain()
        finally:
            self._resources.close()  # idempotent; releases the temp cache dir

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        endpoint = OTHER_ENDPOINT
        status: int | None = None
        content_type = "application/json"
        extra_headers: dict[str, str] = {}
        in_flight = False
        task = asyncio.current_task()
        try:
            try:
                # Chaos seam: a failed accept (error mode) answers 500
                # before any request is read; delay mode stalls the
                # connection; kill mode takes the whole process down.
                await faults.async_fire("http.accept")
                if task is not None:
                    self._reading[task] = writer
                try:
                    await faults.async_fire("http.read")
                    request = await asyncio.wait_for(
                        read_request(reader),
                        timeout=self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    request = None  # idle peer: release the connection
                finally:
                    if task is not None:
                        self._reading.pop(task, None)
                if request is not None:
                    label = f"{request.method} {request.path}"
                    if label in KNOWN_ENDPOINTS:
                        endpoint = label
                    retry_after = self._rate_limit_wait(request, writer)
                    if retry_after is not None:
                        self.metrics.count_rate_limited()
                        extra_headers["Retry-After"] = (
                            f"{max(0.001, retry_after):.3f}")
                        status, body = 429, _error_body(
                            "rate limit exceeded; retry after the delay in "
                            "the Retry-After header")
                    else:
                        self.metrics.request_started(endpoint)
                        in_flight = True
                        status, body, content_type = (
                            await self._traced_dispatch(request,
                                                        extra_headers))
            except HttpError as exc:
                status, body = exc.status, _error_body(exc.message)
            except Exception as exc:  # never leak a traceback as a hung socket
                status, body = 500, _error_body(
                    f"internal error: {type(exc).__name__}: {exc}"
                )
            if status is not None:
                try:
                    await faults.async_fire("http.write", key=endpoint)
                    writer.write(render_response(status, body, content_type,
                                                 extra_headers))
                    await asyncio.wait_for(writer.drain(),
                                           timeout=self.config.write_timeout)
                except (ConnectionError, asyncio.TimeoutError):
                    pass  # peer gone or not reading: the finally drops it
                except InjectedFault:
                    pass  # injected write failure: connection drops unanswered
        finally:
            # Always release the transport — including for peers that
            # connect and close without sending a request (liveness
            # probes), which would otherwise leak the socket.
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
        if status is not None:
            self.metrics.observe(endpoint, status,
                                 time.perf_counter() - started,
                                 started=in_flight)
        elif in_flight:
            # Answered nothing (peer vanished mid-handling): still release
            # the in-flight slot.
            self.metrics.observe(endpoint, 499, time.perf_counter() - started,
                                 started=True)

    def _rate_limit_wait(self, request: HttpRequest,
                         writer: asyncio.StreamWriter) -> float | None:
        """Seconds the peer must wait, or ``None`` when admitted.

        Only POSTs (evaluation work) are limited — health and metrics
        probes stay answerable even from a throttled client, so the
        operator can still see *why* requests are bouncing.
        """
        if request.method != "POST" or not self.ratelimiter.enabled:
            return None
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, (tuple, list)) and peer else "?"
        wait = self.ratelimiter.check(str(client))
        return wait if wait > 0 else None

    async def _traced_dispatch(
        self, request: HttpRequest, extra_headers: dict[str, str]
    ) -> tuple[int, bytes, str]:
        """Dispatch under a root ``service.request`` span.

        An incoming ``X-Repro-Trace-Id`` header (``trace_id`` or
        ``trace_id:parent_span_id``) joins the request to the caller's
        trace; the response always echoes the trace id back, so a client
        can correlate its own spans with the server's even when only one
        side has a sink configured.
        """
        incoming = request.headers.get(tracing.TRACE_HEADER.lower(), "")
        if not tracing.enabled():
            if incoming:
                extra_headers[tracing.TRACE_HEADER] = incoming
            return await self._normalized_dispatch(request)
        parent = tracing.TraceContext.from_header(incoming) if incoming else None
        with tracing.attach(parent):
            with tracing.span("service.request", method=request.method,
                              path=request.path) as root:
                extra_headers[tracing.TRACE_HEADER] = root.context.trace_id
                result = await self._normalized_dispatch(request)
                root.set(status=result[0])
                return result

    async def _normalized_dispatch(
        self, request: HttpRequest
    ) -> tuple[int, bytes, str]:
        answer = await self._dispatch(request)
        if len(answer) == 2:
            status, body = answer
            return status, body, "application/json"
        return answer

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> tuple[int, bytes]:
        route = ROUTES.get(request.path)
        if route is None:
            known = ", ".join(sorted(ROUTES))
            raise HttpError(404, f"unknown path {request.path!r}; known: {known}")
        method, handler_name = route
        if request.method != method:
            raise HttpError(405, f"{request.path} accepts {method} only")
        return await getattr(self, handler_name)(request)

    @staticmethod
    def _parse_json(body: bytes):
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    async def _answer(self, key: str, requests: list[EvalRequest],
                      serialize, partial=None) -> tuple[int, bytes]:
        """Shared eval/sweep tail: cache lookup, queue, serialize, cache fill.

        With ``request_timeout`` configured the job runs chunked and the
        wait is bounded: on expiry the job is cancelled (it releases the
        session at its next chunk boundary) and the answer is ``504`` —
        built by ``partial`` from the results completed so far when the
        endpoint supports partial envelopes (sweeps), a plain error
        otherwise.  Partial answers are never cached.
        """
        cached = self.cache.get(key)
        if cached is not None:
            return 200, cached
        timeout = self.config.request_timeout
        try:
            job = self.executor.submit_job(requests,
                                           chunked=timeout is not None)
        except ServiceOverloaded as exc:
            raise HttpError(503, str(exc)) from exc
        except InjectedFault as exc:
            raise HttpError(503, f"admission fault injected: {exc}") from exc
        if timeout is None:
            results = await job.future
        else:
            try:
                results = await asyncio.wait_for(job.future, timeout)
            except asyncio.TimeoutError:
                job.cancel.set()
                self.metrics.count_deadline_timeout()
                message = (f"request exceeded the server deadline of "
                           f"{timeout}s")
                completed = list(job.progress)
                if partial is not None:
                    return 504, partial(message, completed)
                return 504, _error_body(message)
        self.metrics.count_evaluations(len(results))
        body = serialize(results)
        self.cache.put(key, body)
        return 200, body

    async def _handle_eval(self, request: HttpRequest) -> tuple[int, bytes]:
        payload = self._parse_json(request.body)
        try:
            parsed = EvalRequest.parse(payload)
            validate_requests([parsed])
        except (ValueError, KeyError, TypeError) as exc:
            raise HttpError(400, str(exc)) from exc
        key = canonical_key({"endpoint": "eval", "request": parsed.to_dict()})
        # The body is exactly EvalResult.to_json() so a served answer is
        # byte-identical to the same request through repro.api.evaluate.
        return await self._answer(
            key, [parsed],
            lambda results: results[0].to_json().encode("utf-8"),
        )

    async def _handle_sweep(self, request: HttpRequest) -> tuple[int, bytes]:
        payload = self._parse_json(request.body)
        try:
            sweep = SweepRequest.from_dict(payload)
            expanded = sweep.expand()
            validate_requests(expanded)
        except (ValueError, KeyError, TypeError) as exc:
            raise HttpError(400, str(exc)) from exc
        key = canonical_key({"endpoint": "sweep", "sweep": sweep.to_dict()})
        return await self._answer(
            key, expanded,
            lambda results: _json_body({
                "schema_version": API_SCHEMA_VERSION,
                "count": len(results),
                "results": [result.to_dict() for result in results],
            }),
            # Deadline-expired sweeps still return every result computed
            # before the cut: same entry shape, flagged partial.
            partial=lambda message, completed: _json_body({
                "error": message,
                "schema_version": API_SCHEMA_VERSION,
                "count": len(expanded),
                "completed": len(completed),
                "partial": True,
                "results": [result.to_dict() for result in completed],
            }),
        )

    async def _handle_optimize(self, request: HttpRequest) -> tuple[int, bytes]:
        from repro.search.optimize import (
            OptimizeRequest,
            optimize,
            validate_optimize_request,
        )

        payload = self._parse_json(request.body)
        try:
            parsed = OptimizeRequest.parse(payload)
            errors = validate_optimize_request(parsed)
            if errors:
                raise ValueError(
                    "invalid optimize request: " + "; ".join(errors)
                )
        except (ValueError, KeyError, TypeError) as exc:
            raise HttpError(400, str(exc)) from exc
        key = canonical_key({"endpoint": "optimize",
                             "request": parsed.to_dict()})
        cached = self.cache.get(key)
        if cached is not None:
            return 200, cached
        # A search is one queue entry (a call job), not one entry per
        # evaluation: backpressure applies to whole searches, and the
        # session lock serializes it against concurrent eval batches.
        try:
            future = self.executor.submit_call(
                lambda session: optimize(parsed, session=session)
            )
        except ServiceOverloaded as exc:
            raise HttpError(503, str(exc)) from exc
        except InjectedFault as exc:
            raise HttpError(503, f"admission fault injected: {exc}") from exc
        result = await future
        self.metrics.count_evaluations(result.evaluations)
        # The body is exactly OptimizeResult.to_json(), so a served answer
        # is byte-identical to `repro optimize --format json` in-process.
        body = result.to_json().encode("utf-8")
        self.cache.put(key, body)
        return 200, body

    async def _handle_health(self, request: HttpRequest) -> tuple[int, bytes]:
        health = self.session.health
        return 200, _json_body({
            "status": "draining" if self._draining else (
                "degraded" if health.breaker_open else "ok"),
            "uptime_seconds": round(self.metrics.uptime_seconds, 3),
            "jobs": self.config.jobs,
            "queue_depth": self.executor.queue_depth,
            "max_queue": self.config.max_queue,
            "result_cache_entries": len(self.cache),
            # Degradation state: breaker open means the pool gave up on
            # parallelism and evaluations run serially in-process.
            "degraded": health.breaker_open,
            "quarantined_units": len(health.quarantined),
            "faults_active": faults.active_plan() is not None,
        })

    async def _handle_metrics(self, request: HttpRequest):
        if request.query.get("format") == "prometheus":
            return self._render_prometheus()
        payload = self.metrics.snapshot()
        payload["cache"] = {**self.cache.stats.as_dict(),
                            "entries": len(self.cache),
                            "capacity": self.cache.capacity,
                            "bytes": self.cache.total_bytes,
                            "max_bytes": self.cache.max_bytes,
                            "ttl_seconds": self.cache.ttl_seconds}
        payload["queue"] = {"depth": self.executor.queue_depth,
                            "max": self.config.max_queue,
                            "jobs_completed": self.executor.jobs_completed}
        payload["jobs"] = self.config.jobs
        payload["session"] = self.session.summary()
        payload["resilience"] = self.session.health.as_dict()
        from repro.accel import active_backend

        payload["accel_backend"] = active_backend()
        payload["dataplane"] = self.session.dataplane_mode()
        return 200, _json_body(payload)

    def _render_prometheus(self) -> tuple[int, bytes, str]:
        """``GET /v1/metrics?format=prometheus``: text exposition.

        Renders the service registry (request/latency/queue instruments)
        and the shared session's registry (work counters, stage seconds)
        in one scrape, refreshing the point-in-time gauges first.
        """
        from repro.obs.metrics import render_prometheus

        registry = self.metrics.registry
        registry.gauge("queue_depth",
                       "Jobs currently queued.").set(self.executor.queue_depth)
        registry.gauge("result_cache_entries",
                       "Result-cache entries held.").set(len(self.cache))
        registry.gauge("result_cache_bytes",
                       "Result-cache bytes held.").set(self.cache.total_bytes)
        registry.gauge("uptime_seconds",
                       "Seconds since server start.").set(
            self.metrics.uptime_seconds)
        text = render_prometheus(registry, self.session.metrics)
        return (200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8")


# ----------------------------------------------------------------------
# Running the server.
# ----------------------------------------------------------------------
async def serve(config: ServiceConfig, *, ready=None) -> None:
    """Run a server until cancelled, then drain (the CLI entry point).

    ``ready`` is an optional callback invoked with the started server —
    used by the CLI to print the bound address.
    """
    server = EvalServer(config)
    try:
        await server.start()
        if ready is not None:
            ready(server)
        await asyncio.Event().wait()  # until cancelled (Ctrl-C / stop)
    finally:
        await server.stop()


class ServerThread:
    """A server on a background thread — tests, benches, examples, smoke.

    Usage::

        with ServerThread(ServiceConfig(port=0, cache_dir=tmp)) as running:
            client = ServiceClient(port=running.port)
            ...

    Entering the context blocks until the listener is bound (so ``port``
    is valid); exiting performs the graceful drain before returning.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.server: EvalServer | None = None
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            # The thread has already exited (and closed its loop): reset so
            # a later stop() is a no-op instead of poking the dead loop.
            self._thread.join()
            self._thread = None
            self._loop = None
            self._stopped = None
            raise self._startup_error

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stopped is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        server = None
        try:
            server = EvalServer(self.config)
            await server.start()
        except BaseException as exc:
            # Construction and bind failures alike must reach start()'s
            # caller — and _ready must always be set, or start() would
            # block forever on a dead thread.
            self._startup_error = exc
            if server is not None:
                await server.stop()  # releases session resources
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        try:
            await self._stopped.wait()
        finally:
            await server.stop()
