"""Search strategies: exhaustive, seeded random, surrogate-guided.

A strategy decides *which* points of a :class:`~repro.search.space.SearchSpace`
to spend the evaluation budget on; the shared :class:`SearchDriver` owns
everything else — feasibility filtering against machine constraints,
batched evaluation through the geometry-grouped planner
(:func:`repro.api.evaluate_many`, so every batch shares profiling passes
and shards byte-identically across ``--jobs``), the running Pareto front,
and the convergence trajectory.

Strategies register by name in :data:`STRATEGIES` (the same
string-addressed registry pattern as backends and predictors):

* ``exhaustive`` — every feasible point, in index order.  The reference
  answer for small spaces; refuses spaces larger than the budget.
* ``random`` — a seeded uniform sample of the space.  The baseline any
  smarter strategy has to beat.
* ``surrogate`` — active learning: seed with a random batch, fit a
  k-nearest-neighbour surrogate over one-hot + log-scaled axis features
  on everything evaluated so far, score a seeded candidate pool by
  expected improvement over the current front plus an exploration bonus,
  evaluate the top batch, repeat until the budget is spent.  Pure stdlib
  float arithmetic end to end, so the whole trajectory is deterministic
  given (seed, backend) — and byte-identical across accel backends and
  job counts, like every other subsystem here.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.api.batch import evaluate_many
from repro.api.spec import EvalRequest, EvalResult, WorkloadSpec
from repro.registry import Registry
from repro.search.objectives import (
    Constraint,
    Objective,
    objective_vector,
    pareto_indices,
    split_constraints,
)
from repro.search.space import SearchSpace

#: Registry of strategy callables: ``fn(driver, seed, batch)``.
STRATEGIES = Registry("search strategy")


def register_strategy(name: str, *, aliases: tuple[str, ...] = (),
                      description: str = ""):
    """Decorator registering a search strategy under ``name``."""
    return STRATEGIES.register(name, aliases=aliases, description=description)


def strategy_names() -> list[str]:
    return STRATEGIES.names()


class SearchDriver:
    """Budgeted evaluation state shared by every strategy."""

    def __init__(self, space: SearchSpace, workload: WorkloadSpec,
                 objectives: Sequence[Objective],
                 constraints: Sequence[Constraint] = (), *,
                 budget: int, backend: str = "analytical",
                 with_power: bool = False, mlp_window: int = 64,
                 session=None):
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self.space = space
        self.workload = workload
        self.objectives = list(objectives)
        self.machine_constraints, self.metric_constraints = (
            split_constraints(constraints))
        self.budget = budget
        self.backend = backend
        self.with_power = with_power
        self.mlp_window = mlp_window
        self.session = session
        self.cardinality = space.cardinality()
        #: point index -> EvalResult, in evaluation order.
        self.evaluated: dict[int, EvalResult] = {}
        #: point indices in the order they were evaluated.
        self.order: list[int] = []
        #: indices found infeasible (machine constraints), never evaluated.
        self.infeasible: set[int] = set()
        self.trajectory: list[dict] = []
        self._rounds = 0

    # ------------------------------------------------------------------
    @property
    def budget_left(self) -> int:
        return self.budget - len(self.evaluated)

    def feasible(self, index: int) -> bool:
        """Machine-constraint check; infeasible indices are remembered so
        samplers can exclude them without re-resolving configs."""
        if index in self.infeasible:
            return False
        if index in self.evaluated:
            return True
        if not self.machine_constraints:
            return True
        machine = self.space.spec(index).resolve()
        if all(con.admits_machine(machine)
               for con in self.machine_constraints):
            return True
        self.infeasible.add(index)
        return False

    def evaluate(self, indices: Sequence[int]) -> list[EvalResult]:
        """Evaluate new feasible indices (budget-truncated) in one batch.

        One :func:`~repro.api.evaluate_many` call per batch keeps the
        planner's pass sharing and the byte-identical-under-sharding
        guarantee; results land in :attr:`evaluated` in request order.
        """
        fresh: list[int] = []
        for index in indices:
            if index in self.evaluated or not self.feasible(index):
                continue
            if len(fresh) >= self.budget_left:
                break
            fresh.append(index)
        if not fresh:
            return []
        requests = [
            EvalRequest(workload=self.workload, machine=self.space.spec(index),
                        backend=self.backend, with_power=self.with_power,
                        mlp_window=self.mlp_window)
            for index in fresh
        ]
        results = evaluate_many(requests, session=self.session)
        for index, result in zip(fresh, results):
            self.evaluated[index] = result
            self.order.append(index)
        return results

    # ------------------------------------------------------------------
    def admitted(self) -> list[int]:
        """Evaluated indices that also satisfy the metric constraints."""
        return [
            index for index in sorted(self.evaluated)
            if all(con.admits_result(self.evaluated[index])
                   for con in self.metric_constraints)
        ]

    def front(self) -> list[int]:
        """Current Pareto front, as ascending point indices."""
        admitted = self.admitted()
        if not admitted:
            return []
        vectors = [objective_vector(self.evaluated[index], self.objectives)
                   for index in admitted]
        return [admitted[i] for i in pareto_indices(vectors)]

    def best(self) -> int | None:
        """The front point minimising the objective vector lexicographically
        (ties to the lowest point index) — the single-config answer."""
        front = self.front()
        if not front:
            return None
        return min(front, key=lambda index: (
            objective_vector(self.evaluated[index], self.objectives), index))

    def record_round(self) -> None:
        """Append one trajectory entry (call after each strategy round)."""
        self._rounds += 1
        best = self.best()
        entry: dict = {
            "round": self._rounds,
            "evaluations": len(self.evaluated),
            "front_size": len(self.front()),
        }
        if best is not None:
            result = self.evaluated[best]
            entry["best"] = {str(objective): objective.value(result)
                             for objective in self.objectives}
            entry["best_machine"] = result.machine
        self.trajectory.append(entry)


# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------
@register_strategy(
    "exhaustive",
    description="every feasible point in index order (small spaces)",
)
def exhaustive_strategy(driver: SearchDriver, seed: int, batch: int) -> None:
    """Evaluate the whole space (the budget must cover it; validated
    upfront by :func:`repro.search.optimize.validate_optimize_request`)."""
    del seed, batch  # deterministic by construction
    feasible = [index for index in range(driver.cardinality)
                if driver.feasible(index)]
    driver.evaluate(feasible)
    driver.record_round()


@register_strategy(
    "random",
    description="seeded uniform sample of the space (the baseline)",
)
def random_strategy(driver: SearchDriver, seed: int, batch: int) -> None:
    """Spend the budget on a seeded uniform sample, in ``batch``-sized
    rounds so the trajectory shows convergence like the surrogate's."""
    attempts = 0
    while driver.budget_left > 0 and attempts < 64:
        exclude = set(driver.evaluated) | driver.infeasible
        want = min(batch, driver.budget_left)
        candidates = driver.space.sample(want, seed + attempts,
                                         exclude=exclude)
        if not candidates:
            break
        before = len(driver.evaluated)
        driver.evaluate(candidates)
        if len(driver.evaluated) > before:
            driver.record_round()
        attempts += 1


# ----------------------------------------------------------------------
# Surrogate machinery (pure stdlib, deterministic).
# ----------------------------------------------------------------------
class _FeatureMap:
    """Axis values -> a fixed-width numeric feature vector.

    Numeric axis values are log2-scaled then min-max normalised over the
    axis's own value range; string values are one-hot encoded.  Coupled
    axes contribute one feature (block) per coupled field.  Fields the
    axes never touch are constant across the space and carry no signal,
    so they are skipped.
    """

    def __init__(self, space: SearchSpace):
        self._encoders: list[tuple[str, Callable[[object], list[float]]]] = []
        base = space.base.resolve()
        for axis in space.axes:
            for position, field_name in enumerate(axis.fields):
                observed = sorted(
                    {value[position] if len(axis.fields) > 1 else value
                     for value in axis.values},
                    key=lambda v: (str(type(v)), v),
                )
                base_value = getattr(base, field_name, None)
                if base_value is not None and base_value not in observed:
                    observed.append(base_value)  # inactive-conditional fallback
                if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                       for v in observed):
                    self._encoders.append(
                        (field_name, self._numeric_encoder(observed)))
                else:
                    self._encoders.append(
                        (field_name, self._onehot_encoder(observed)))

    @staticmethod
    def _numeric_encoder(observed: list) -> Callable[[object], list[float]]:
        scaled = {value: math.log2(float(value)) if value > 0 else 0.0
                  for value in observed}
        low, high = min(scaled.values()), max(scaled.values())
        span = (high - low) or 1.0

        def encode(value) -> list[float]:
            return [(scaled.get(value,
                                math.log2(float(value)) if value else 0.0)
                     - low) / span]
        return encode

    @staticmethod
    def _onehot_encoder(observed: list) -> Callable[[object], list[float]]:
        slots = {value: position for position, value in
                 enumerate(sorted(observed, key=str))}

        def encode(value) -> list[float]:
            vector = [0.0] * len(slots)
            slot = slots.get(value)
            if slot is not None:
                vector[slot] = 1.0
            return vector
        return encode

    def encode(self, space: SearchSpace, index: int) -> tuple[float, ...]:
        overrides = space.overrides(index)
        base = space.base.resolve()
        features: list[float] = []
        for field_name, encoder in self._encoders:
            value = overrides.get(field_name, getattr(base, field_name, None))
            features.extend(encoder(value))
        return tuple(features)


def _knn_predict(features: tuple[float, ...],
                 points: list[tuple[tuple[float, ...], tuple[float, ...]]],
                 k: int) -> tuple[tuple[float, ...], float]:
    """Distance-weighted k-NN prediction plus a novelty estimate.

    Returns ``(predicted objective vector, mean neighbour distance)`` —
    the latter is the exploration signal: far from everything evaluated
    means the prediction is a guess worth testing.
    """
    scored = sorted(
        (math.dist(features, other), vector)
        for other, vector in points
    )[:k]
    total_weight = 0.0
    width = len(scored[0][1])
    accumulated = [0.0] * width
    for distance, vector in scored:
        weight = 1.0 / (distance + 1e-9)
        total_weight += weight
        for j in range(width):
            accumulated[j] += weight * vector[j]
    predicted = tuple(value / total_weight for value in accumulated)
    novelty = sum(distance for distance, _ in scored) / len(scored)
    return predicted, novelty


def _neighbor_indices(space: SearchSpace, index: int) -> list[int]:
    """Indices differing from ``index`` along exactly one axis.

    The incumbent's one-axis neighbourhood — the exploitation moves a
    local search would try.  Neighbour assignments that name no valid
    point (a conditional axis opening or closing under the change) are
    skipped.
    """
    overrides = space.overrides(index)
    neighbors: list[int] = []
    for axis in space.axes:
        if not all(field_name in overrides for field_name in axis.fields):
            continue  # axis inactive at this point
        current = (overrides[axis.fields[0]] if len(axis.fields) == 1
                   else tuple(overrides[field_name]
                              for field_name in axis.fields))
        for value in axis.values:
            if value == current:
                continue
            candidate = dict(overrides)
            candidate.update(axis.overrides_for(value))
            try:
                neighbors.append(space.index_of(candidate))
            except KeyError:
                continue
    return neighbors


@register_strategy(
    "surrogate",
    description="k-NN active learning: propose by expected improvement "
                "over the current front",
)
def surrogate_strategy(driver: SearchDriver, seed: int, batch: int) -> None:
    """Active-learning search under the evaluation budget.

    Round 0 seeds the surrogate with a random batch; each later round
    fits k-NN on everything evaluated, scores a seeded candidate pool by
    the additive-epsilon improvement its *predicted* objective vector
    achieves over the current front (plus a novelty bonus), and spends
    one batch on the top scorers.  Scores are scale-normalised per
    objective so CPI and EDP mix without dwarfing each other.
    """
    space = driver.space
    feature_map = _FeatureMap(space)
    knn_k = 5
    explore_weight = 0.35
    pool_size = min(max(64 * batch, 512), 4096)

    initial = min(driver.budget_left, max(2 * batch, 8))
    driver.evaluate(space.sample(initial, seed,
                                 exclude=driver.infeasible))
    driver.record_round()

    round_number = 0
    stalls = 0
    while driver.budget_left > 0 and stalls < 8:
        round_number += 1
        admitted = driver.admitted() or sorted(driver.evaluated)
        if not admitted:
            break
        training = [
            (feature_map.encode(space, index),
             objective_vector(driver.evaluated[index], driver.objectives))
            for index in admitted
        ]
        # Per-objective scale: interquartile-ish spread over the training
        # values, so the epsilon indicator is unit-free.
        width = len(driver.objectives)
        scales = []
        for j in range(width):
            values = sorted(vector[j] for _, vector in training)
            spread = values[-1] - values[0]
            scales.append(spread if spread > 0 else 1.0)
        front_vectors = [
            tuple(objective_vector(driver.evaluated[index],
                                   driver.objectives)[j] / scales[j]
                  for j in range(width))
            for index in driver.front()
        ] or [tuple(min(vector[j] for _, vector in training) / scales[j]
                    for j in range(width))]

        exclude = set(driver.evaluated) | driver.infeasible
        pool = space.sample(pool_size, seed + 7919 * round_number,
                            exclude=exclude)
        if not pool:
            break
        scored: list[tuple[float, int]] = []
        for index in pool:
            features = feature_map.encode(space, index)
            predicted, novelty = _knn_predict(features, training, knn_k)
            normalised = tuple(predicted[j] / scales[j] for j in range(width))
            # Additive-epsilon indicator to the front: how far the
            # prediction pushes past (negative: falls short of) the
            # closest front point, uniformly over objectives.
            epsilon = min(
                max(normalised[j] - front[j] for j in range(width))
                for front in front_vectors
            )
            scored.append((-epsilon + explore_weight * novelty, index))
        scored.sort(key=lambda item: (-item[0], item[1]))
        # Exploit around the incumbent: its unevaluated one-axis
        # neighbours lead the proposal (local search polishing the last
        # axis or two the global surrogate gets wrong), the top pool
        # scorers fill the rest of the batch (global exploration).
        want = min(batch, driver.budget_left)
        proposal: list[int] = []
        incumbent = driver.best()
        if incumbent is not None:
            fresh_neighbors = [
                index for index in _neighbor_indices(space, incumbent)
                if index not in exclude and driver.feasible(index)
            ]
            proposal = fresh_neighbors[:max(1, want // 2)]
        for _, index in scored:
            if len(proposal) >= want:
                break
            if index not in proposal:
                proposal.append(index)
        before = len(driver.evaluated)
        driver.evaluate(proposal)
        if len(driver.evaluated) == before:
            stalls += 1
            continue
        stalls = 0
        driver.record_round()
