"""Combinatorial design spaces declared without materialisation.

A :class:`SearchSpace` generalises the sweep grammar to spaces far too
large to expand: an ordered list of axes over a base
:class:`~repro.api.spec.MachineSpec`, where each axis is

* a plain parameter axis (``l2_size`` over a value list),
* a **coupled** axis binding several fields at once
  (``"pipeline_stages,frequency_mhz"`` with tuple values — the paper ties
  depth to clock), or
* a **conditional** axis that only opens up when a ``when`` clause over
  earlier axes holds (``l2_associativity`` choices only for large L2s,
  say); while inactive it contributes exactly one choice (the base
  machine's value).

Points are addressed by a single integer index with the leftmost axis
most significant — the same row-major order ``itertools.product`` (and
the sweep grammar) uses — so ``space.spec(i)`` is deterministic,
:meth:`~SearchSpace.cardinality` is exact without enumerating anything,
and :meth:`~SearchSpace.sample` draws reproducible seeded subsets of
million-point spaces in O(sample size).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.api.spec import MachineSpec
from repro.machine import SIZE_FIELDS, parse_size
from repro.search.objectives import Constraint

#: Version stamped into serialized spaces.
SPACE_SCHEMA_VERSION = 1


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class SpaceAxis:
    """One axis of a search space (plain, coupled or conditional)."""

    key: str
    values: tuple
    #: Constraint source over *earlier* axes' fields (or base values);
    #: while it does not hold the axis is inactive (one choice: the base).
    when: str | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.key!r} has no values")
        for field_name in self.fields:
            if not field_name:
                raise ValueError(f"malformed axis key {self.key!r}")
        if len(self.fields) > 1:
            for value in self.values:
                if not isinstance(value, tuple) or len(value) != len(self.fields):
                    raise ValueError(
                        f"coupled axis {self.key!r} needs "
                        f"{len(self.fields)}-tuples, got {value!r}"
                    )

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self.key.split(","))

    @property
    def condition(self) -> Constraint | None:
        if self.when is None:
            return None
        condition = Constraint.parse(self.when)
        if not condition.on_machine:
            raise ValueError(
                f"axis {self.key!r}: 'when' must test a machine parameter, "
                f"got {self.when!r}"
            )
        return condition

    def active(self, bindings: Mapping[str, object]) -> bool:
        """Whether the axis opens up under the earlier axes' assignment."""
        condition = self.condition
        if condition is None:
            return True
        if condition.path not in bindings:
            raise ValueError(
                f"axis {self.key!r}: 'when' tests {condition.path!r}, which "
                "no earlier axis or base override assigns"
            )
        return condition.admits_value(bindings[condition.path])

    def overrides_for(self, value) -> dict[str, object]:
        """The machine overrides one chosen value contributes."""
        names = self.fields
        if len(names) == 1:
            return {names[0]: value}
        return dict(zip(names, value))

    def to_dict(self) -> dict:
        payload: dict = {
            "axis": self.key,
            "values": [list(v) if isinstance(v, tuple) else v
                       for v in self.values],
        }
        if self.when is not None:
            payload["when"] = self.when
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SpaceAxis":
        unknown = sorted(set(payload) - {"axis", "values", "when"})
        if unknown:
            raise ValueError(
                f"unknown axis keys {unknown}; allowed: "
                "['axis', 'values', 'when']"
            )
        return cls(key=payload["axis"], values=_freeze(payload["values"]),
                   when=payload.get("when"))


@dataclass(frozen=True)
class SearchSpace:
    """An indexable cross product of axes over a base machine spec."""

    axes: tuple[SpaceAxis, ...]
    base: MachineSpec = field(default_factory=MachineSpec)
    #: Optional point-name template over axis fields; ``{field}`` expands
    #: to the chosen value, ``{field_kb}`` to ``value // 1024`` — enough
    #: to reproduce legacy config names (Table 2) through the adapter.
    name_template: str | None = None

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for axis in self.axes:
            for field_name in axis.fields:
                if field_name in seen:
                    raise ValueError(
                        f"field {field_name!r} appears on more than one axis"
                    )
                seen.add(field_name)

    @classmethod
    def make(cls, axes: "Mapping | Sequence", *, base=None,
             name_template: str | None = None) -> "SearchSpace":
        """Build a space from friendly inputs.

        ``axes`` is either a mapping ``{key: values}`` (the sweep-grammar
        shape, all axes unconditional) or a sequence of axis dicts
        (``{"axis": ..., "values": ..., "when": ...}``) /
        :class:`SpaceAxis` objects.
        """
        if isinstance(axes, Mapping):
            parsed = tuple(SpaceAxis(key=key, values=_freeze(values))
                           for key, values in axes.items())
        else:
            parsed = tuple(
                axis if isinstance(axis, SpaceAxis) else SpaceAxis.from_dict(axis)
                for axis in axes
            )
        return cls(axes=parsed,
                   base=MachineSpec.parse(base if base is not None else {}),
                   name_template=name_template)

    # ------------------------------------------------------------------
    # Counting and indexing.
    # ------------------------------------------------------------------
    def _base_bindings(self) -> dict[str, object]:
        """Field values ``when`` clauses may read before any axis binds them."""
        machine = self.base.resolve()
        bindings: dict[str, object] = {}
        for axis in self.axes:
            condition = axis.condition
            if condition is not None and condition.path != "area_proxy":
                bindings.setdefault(condition.path,
                                    getattr(machine, condition.path))
        return bindings

    def _referenced(self) -> frozenset[str]:
        """Fields any ``when`` clause reads (the memo key vocabulary)."""
        names = set()
        for axis in self.axes:
            condition = axis.condition
            if condition is not None:
                names.add(condition.path)
        return frozenset(names)

    def _choices(self, axis: SpaceAxis,
                 bindings: Mapping[str, object]) -> tuple:
        """The axis's effective choices under the bindings so far.

        An inactive conditional axis contributes exactly one choice —
        ``None`` — meaning "no override, keep the base value".
        """
        return axis.values if axis.active(bindings) else (None,)

    def _count_from(self, axis_index: int, bindings: dict[str, object],
                    memo: dict) -> int:
        if axis_index == len(self.axes):
            return 1
        referenced = self._referenced()
        key = (axis_index,
               tuple(sorted((name, bindings[name]) for name in referenced
                            if name in bindings)))
        cached = memo.get(key)
        if cached is not None:
            return cached
        axis = self.axes[axis_index]
        total = 0
        for value in self._choices(axis, bindings):
            child = bindings
            if value is not None and referenced & set(axis.fields):
                child = {**bindings, **{k: v
                                        for k, v in axis.overrides_for(value).items()
                                        if k in referenced}}
            total += self._count_from(axis_index + 1, child, memo)
        memo[key] = total
        return total

    def cardinality(self) -> int:
        """Exact number of points, computed without enumeration."""
        if not self.axes:
            return 1
        return self._count_from(0, self._base_bindings(), {})

    def __len__(self) -> int:
        return self.cardinality()

    def overrides(self, index: int) -> dict[str, object]:
        """Decode a point index into its machine overrides (no name)."""
        cardinality = self.cardinality()
        if not 0 <= index < cardinality:
            raise IndexError(
                f"point index {index} out of range for a space of "
                f"{cardinality} points"
            )
        memo: dict = {}
        bindings = self._base_bindings()
        referenced = self._referenced()
        overrides: dict[str, object] = {}
        remaining = index
        for axis_index, axis in enumerate(self.axes):
            for value in self._choices(axis, bindings):
                child = dict(bindings)
                if value is not None:
                    assignment = axis.overrides_for(value)
                    child.update({k: v for k, v in assignment.items()
                                  if k in referenced})
                subtree = self._count_from(axis_index + 1, child, memo)
                if remaining < subtree:
                    if value is not None:
                        overrides.update(axis.overrides_for(value))
                    bindings = child
                    break
                remaining -= subtree
        return overrides

    def index_of(self, overrides: Mapping[str, object]) -> int:
        """The point index whose decode equals ``overrides`` (the inverse
        of :meth:`overrides`); :class:`KeyError` if no point matches —
        e.g. a value not on its axis, or a conditional axis's field bound
        while the axis is inactive."""
        memo: dict = {}
        bindings = self._base_bindings()
        referenced = self._referenced()
        index = 0
        for axis_index, axis in enumerate(self.axes):
            if all(field_name in overrides for field_name in axis.fields):
                target = (overrides[axis.fields[0]] if len(axis.fields) == 1
                          else tuple(overrides[field_name]
                                     for field_name in axis.fields))
            else:
                target = None
            found = False
            for value in self._choices(axis, bindings):
                child = dict(bindings)
                if value is not None:
                    child.update({k: v
                                  for k, v in axis.overrides_for(value).items()
                                  if k in referenced})
                if value == target:
                    bindings = child
                    found = True
                    break
                index += self._count_from(axis_index + 1, child, memo)
            if not found:
                raise KeyError(
                    f"no point of this space assigns {target!r} to axis "
                    f"{axis.key!r} under {dict(overrides)!r}"
                )
        return index

    def point_name(self, overrides: Mapping[str, object]) -> str | None:
        """Render the name template for one decoded point (if any)."""
        if self.name_template is None:
            return None
        machine = self.base.resolve()
        values: dict[str, object] = {}
        for axis in self.axes:
            for field_name in axis.fields:
                value = overrides.get(field_name,
                                      getattr(machine, field_name, None))
                if field_name in SIZE_FIELDS and value is not None:
                    value = parse_size(value)
                values[field_name] = value
                if isinstance(value, int):
                    values[f"{field_name}_kb"] = value // 1024
        return self.name_template.format(**values)

    def spec(self, index: int) -> MachineSpec:
        """The :class:`MachineSpec` of one point (named via the template)."""
        overrides = self.overrides(index)
        name = self.point_name(overrides)
        if name is not None:
            overrides = {**overrides, "name": name}
        return self.base.with_overrides(**overrides)

    def specs(self, indices: Iterable[int]) -> list[MachineSpec]:
        return [self.spec(index) for index in indices]

    # ------------------------------------------------------------------
    # Seeded sampling.
    # ------------------------------------------------------------------
    def sample(self, count: int, seed: int, *,
               exclude: Iterable[int] = ()) -> list[int]:
        """``count`` distinct point indices, deterministic given ``seed``.

        Indices in ``exclude`` are never drawn.  Small spaces fall back to
        a seeded shuffle of the full remainder; large spaces use rejection
        sampling, so the cost is O(count), not O(cardinality).  Asking for
        more points than remain returns every remaining index (ascending).
        """
        if count < 0:
            raise ValueError("sample count must be non-negative")
        cardinality = self.cardinality()
        excluded = set(exclude)
        remaining = cardinality - len(excluded)
        rng = random.Random(seed)
        if count >= remaining:
            return [index for index in range(cardinality)
                    if index not in excluded]
        if cardinality <= max(4 * (count + len(excluded)), 4096):
            pool = [index for index in range(cardinality)
                    if index not in excluded]
            rng.shuffle(pool)
            return pool[:count]
        picked: list[int] = []
        seen = set(excluded)
        while len(picked) < count:
            candidate = rng.randrange(cardinality)
            if candidate in seen:
                continue
            seen.add(candidate)
            picked.append(candidate)
        return picked

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {
            "schema_version": SPACE_SCHEMA_VERSION,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }
        if self.name_template is not None:
            payload["name_template"] = self.name_template
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SearchSpace":
        unknown = sorted(set(payload)
                         - {"schema_version", "base", "axes", "name_template"})
        if unknown:
            raise ValueError(
                f"unknown search-space keys {unknown}; allowed: "
                "['axes', 'base', 'name_template', 'schema_version']"
            )
        if "axes" not in payload:
            raise ValueError("search space needs an 'axes' list")
        return cls.make(payload["axes"], base=payload.get("base", {}),
                        name_template=payload.get("name_template"))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpace":
        return cls.from_dict(json.loads(text))
