"""The serving layer of :mod:`repro.search`: request/result envelopes.

An :class:`OptimizeRequest` bundles everything one design-space search
needs — the space, the workload, objectives, constraints, a strategy
name and an evaluation budget — into one JSON-round-trippable object, so
the same search is addressable from Python, the ``repro optimize`` CLI
subcommand and ``POST /v1/optimize`` (and cacheable under one canonical
key).  :func:`optimize` answers it with an :class:`OptimizeResult`:
the Pareto front, the single best configuration, and the convergence
trajectory, all as plain JSON-stable structures so the CLI and the
service emit byte-identical payloads for the same request and seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Mapping, Sequence

from repro.api.spec import WorkloadSpec
from repro.machine import MachineConfig
from repro.search.objectives import (
    Constraint,
    Objective,
    needs_power,
    split_constraints,
)
from repro.search.space import SearchSpace
from repro.search.strategies import STRATEGIES, SearchDriver

#: Version stamped into serialized optimize requests/results.
SEARCH_SCHEMA_VERSION = 1

#: MachineConfig fields an axis may sweep (everything but the label).
_AXIS_FIELDS = frozenset(
    f.name for f in dataclass_fields(MachineConfig) if f.name != "name"
)


@dataclass(frozen=True)
class OptimizeRequest:
    """One design-space search: optimise objectives over a space."""

    space: SearchSpace
    workload: WorkloadSpec
    objectives: tuple[Objective, ...]
    constraints: tuple[Constraint, ...] = ()
    strategy: str = "surrogate"
    budget: int = 64
    batch: int = 8
    seed: int = 0
    backend: str = "analytical"
    #: ``None`` means "whatever the objectives/constraints need".
    with_power: bool | None = None
    mlp_window: int = 64
    #: Opaque caller correlation tag, carried through to the result.
    tag: str = ""

    @property
    def effective_with_power(self) -> bool:
        """Power is evaluated when asked for or when any objective or
        constraint touches energy/EDP."""
        if self.with_power is not None:
            return self.with_power
        return needs_power(self.objectives, self.constraints)

    @classmethod
    def parse(cls, value: "OptimizeRequest | Mapping") -> "OptimizeRequest":
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot parse optimize request from {value!r}")

    def to_dict(self) -> dict:
        return {
            "schema_version": SEARCH_SCHEMA_VERSION,
            "space": self.space.to_dict(),
            "workload": self.workload.to_dict(),
            "objectives": [objective.to_dict()
                           for objective in self.objectives],
            "constraints": [constraint.to_dict()
                            for constraint in self.constraints],
            "strategy": self.strategy,
            "budget": self.budget,
            "batch": self.batch,
            "seed": self.seed,
            "backend": self.backend,
            "with_power": self.effective_with_power,
            "mlp_window": self.mlp_window,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeRequest":
        allowed = {"schema_version", "space", "workload", "objectives",
                   "constraints", "strategy", "budget", "batch", "seed",
                   "backend", "with_power", "mlp_window", "tag"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(
                f"unknown optimize-request keys {unknown}; allowed: "
                f"{sorted(allowed)}"
            )
        for required in ("space", "workload", "objectives"):
            if required not in payload:
                raise ValueError(
                    f"optimize request needs a {required!r} entry"
                )
        space = payload["space"]
        if not isinstance(space, SearchSpace):
            space = SearchSpace.from_dict(space)
        objectives = payload["objectives"]
        if isinstance(objectives, (str, Mapping)):
            objectives = [objectives]
        with_power = payload.get("with_power")
        return cls(
            space=space,
            workload=WorkloadSpec.parse(payload["workload"]),
            objectives=tuple(Objective.parse(objective)
                             for objective in objectives),
            constraints=tuple(Constraint.parse(constraint)
                              for constraint in payload.get("constraints", ())),
            strategy=payload.get("strategy", "surrogate"),
            budget=int(payload.get("budget", 64)),
            batch=int(payload.get("batch", 8)),
            seed=int(payload.get("seed", 0)),
            backend=payload.get("backend", "analytical"),
            with_power=None if with_power is None else bool(with_power),
            mlp_window=int(payload.get("mlp_window", 64)),
            tag=payload.get("tag", ""),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OptimizeRequest":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Upfront validation (named-field errors, no evaluation spent).
# ----------------------------------------------------------------------
def _axis_candidate_values(request: OptimizeRequest,
                           field_name: str) -> list:
    """Every value ``field_name`` can take anywhere in the space.

    Axis values, plus the base machine's value when the field sits on a
    conditional axis (inactive means "keep the base") or on no axis.
    """
    base = request.space.base.resolve()
    for axis in request.space.axes:
        if field_name in axis.fields:
            position = axis.fields.index(field_name)
            values = [value[position] if len(axis.fields) > 1 else value
                      for value in axis.values]
            if axis.when is not None:
                values.append(getattr(base, field_name))
            return values
    return [getattr(base, field_name)]


def validate_optimize_request(request: OptimizeRequest) -> list[str]:
    """Every problem with the request, each error naming its field.

    Returns an empty list for a well-formed request.  Checks are purely
    structural — nothing is evaluated — and include the two classes of
    request that *would* burn budget before failing: zero-cardinality
    spaces and machine constraints no candidate value can satisfy.
    """
    errors: list[str] = []
    for axis in request.space.axes:
        for field_name in axis.fields:
            if field_name not in _AXIS_FIELDS:
                errors.append(
                    f"space: axis field {field_name!r} is not a machine "
                    f"parameter; valid fields: {sorted(_AXIS_FIELDS)}"
                )
    try:
        cardinality = request.space.cardinality()
    except ValueError as exc:
        errors.append(f"space: {exc}")
        cardinality = None
    if cardinality == 0:
        errors.append("space: has zero points (nothing to search)")
    if not request.objectives:
        errors.append("objectives: need at least one objective")
    if request.with_power is False and needs_power(request.objectives,
                                                   request.constraints):
        errors.append(
            "objectives: energy/EDP metrics need power data, but the "
            "request pins with_power to false"
        )
    if request.budget < 1:
        errors.append(f"budget: must be at least 1, got {request.budget}")
    if request.batch < 1:
        errors.append(f"batch: must be at least 1, got {request.batch}")
    if request.strategy not in STRATEGIES:
        known = ", ".join(STRATEGIES.names())
        errors.append(
            f"strategy: unknown strategy {request.strategy!r}; known: {known}"
        )
    elif (request.strategy == "exhaustive" and cardinality is not None
            and request.budget < cardinality):
        errors.append(
            f"budget: exhaustive search of a {cardinality}-point space "
            f"needs budget >= {cardinality}, got {request.budget} "
            "(use the 'random' or 'surrogate' strategy for partial budgets)"
        )
    machine_constraints, _ = split_constraints(request.constraints)
    for index, constraint in enumerate(request.constraints):
        if constraint not in machine_constraints:
            continue
        if constraint.path == "area_proxy":
            continue  # derived from several axes; checked per point
        candidates = _axis_candidate_values(request, constraint.path)
        if not any(constraint.admits_value(value) for value in candidates):
            errors.append(
                f"constraints[{index}]: {constraint.source!r} is infeasible "
                f"— no candidate value of {constraint.path!r} "
                f"({sorted(set(candidates), key=str)}) satisfies it"
            )
    if cardinality:
        # Borrow the batch validator for backend/workload/machine names so
        # a typo'd preset or workload fails here, not mid-search.
        from repro.api.batch import validate_requests
        from repro.api.spec import EvalRequest

        try:
            validate_requests([EvalRequest(
                workload=request.workload, machine=request.space.spec(0),
                backend=request.backend,
            )])
        except (ValueError, KeyError, TypeError) as exc:
            errors.append(f"request: {exc}")
    return errors


# ----------------------------------------------------------------------
# Result envelope.
# ----------------------------------------------------------------------
@dataclass
class OptimizeResult:
    """The answer to one :class:`OptimizeRequest`.

    ``front``/``best``/``trajectory`` are plain JSON-stable structures
    (each front entry carries the point's space index, display label,
    machine spec, objective values and the full evaluation payload), so
    serializing a result is a pure dump — the CLI and the service emit
    the same bytes for the same request.
    """

    request: OptimizeRequest
    cardinality: int
    evaluations: int
    infeasible_skipped: int
    front: list[dict]
    best: dict | None
    #: How many evaluations had been spent when the returned best point
    #: was evaluated — the "evals to front" convergence figure.
    best_found_at_evaluation: int | None
    trajectory: list[dict] = field(default_factory=list)
    schema_version: int = SEARCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "request": self.request.to_dict(),
            "cardinality": self.cardinality,
            "evaluations": self.evaluations,
            "infeasible_skipped": self.infeasible_skipped,
            "front": self.front,
            "best": self.best,
            "best_found_at_evaluation": self.best_found_at_evaluation,
            "trajectory": self.trajectory,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OptimizeResult":
        return cls(
            request=OptimizeRequest.from_dict(payload["request"]),
            cardinality=payload["cardinality"],
            evaluations=payload["evaluations"],
            infeasible_skipped=payload.get("infeasible_skipped", 0),
            front=list(payload.get("front", ())),
            best=payload.get("best"),
            best_found_at_evaluation=payload.get("best_found_at_evaluation"),
            trajectory=list(payload.get("trajectory", ())),
            schema_version=payload.get("schema_version",
                                       SEARCH_SCHEMA_VERSION),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OptimizeResult":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# The entry point.
# ----------------------------------------------------------------------
def _point_entry(driver: SearchDriver, index: int) -> dict:
    result = driver.evaluated[index]
    return {
        "index": index,
        "machine": result.machine,
        "config": result.request.machine.to_dict(),
        "objectives": {str(objective): objective.value(result)
                       for objective in driver.objectives},
        "result": result.to_dict(),
    }


def optimize(request: "OptimizeRequest | Mapping", *, session=None,
             jobs: int | None = None, cache_dir=None) -> OptimizeResult:
    """Run one design-space search and return its result envelope.

    Validates upfront (:func:`validate_optimize_request`; any problem
    raises one ``ValueError`` listing every named-field error), then
    hands a :class:`~repro.search.strategies.SearchDriver` to the named
    strategy.  Evaluation runs through :func:`repro.api.evaluate_many`
    on the given session (or a fresh pooled one built from
    ``jobs``/``cache_dir``), so batches share profiling passes and the
    result is byte-identical across job counts and accel backends.
    """
    parsed = OptimizeRequest.parse(request)
    errors = validate_optimize_request(parsed)
    if errors:
        raise ValueError("invalid optimize request: " + "; ".join(errors))
    if session is None:
        from repro.runtime.session import pooled_session

        with pooled_session(cache_dir, jobs if jobs is not None else 1) as owned:
            return _optimize_on(parsed, owned)
    if jobs is not None or cache_dir is not None:
        raise ValueError(
            "pass either an existing session or jobs/cache_dir, not both "
            "(the session already fixes its job count and cache directory)"
        )
    return _optimize_on(parsed, session)


def _optimize_on(request: OptimizeRequest, session) -> OptimizeResult:
    driver = SearchDriver(
        request.space, request.workload, request.objectives,
        request.constraints, budget=request.budget, backend=request.backend,
        with_power=request.effective_with_power,
        mlp_window=request.mlp_window, session=session,
    )
    strategy = STRATEGIES.get(request.strategy)
    strategy(driver, request.seed, request.batch)
    best_index = driver.best()
    return OptimizeResult(
        request=request,
        cardinality=driver.cardinality,
        evaluations=len(driver.evaluated),
        infeasible_skipped=len(driver.infeasible),
        front=[_point_entry(driver, index) for index in driver.front()],
        best=None if best_index is None else _point_entry(driver, best_index),
        best_found_at_evaluation=(
            None if best_index is None
            else driver.order.index(best_index) + 1),
        trajectory=driver.trajectory,
    )
