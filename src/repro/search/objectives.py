"""Objectives, constraints and exact Pareto-front extraction.

The vocabulary of :mod:`repro.search`: an :class:`Objective` names one
scalar to minimise or maximise by its :meth:`~repro.api.spec.EvalResult.metric`
path (``"cpi"``, ``"edp"``, ``"energy.total"``, ``"machine.l2_size"``,
``"area_proxy"``, ...); a :class:`Constraint` is one comparison parsed
from the grammar ``"l2_size<=1MB"`` / ``"cpi<1.8"``, applied either to
candidate machines before evaluation (machine constraints prune the
space for free) or to evaluated results (metric constraints filter the
front); :func:`pareto_front` extracts the exact non-dominated subset of
any batch of results.

Everything here is pure stdlib arithmetic — deterministic regardless of
the :mod:`repro.accel` backend, which is what keeps whole search
trajectories byte-identical across backends and job counts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Mapping, Sequence

from repro.api.spec import EvalResult
from repro.machine import SIZE_FIELDS, MachineConfig, area_proxy, parse_size

#: MachineConfig parameters a constraint may test before evaluation
#: (plus the derived ``area_proxy``); anything else is a result metric.
MACHINE_FIELDS = frozenset(
    f.name for f in dataclass_fields(MachineConfig) if f.name != "name"
) | {"area_proxy"}


# ----------------------------------------------------------------------
# Objectives.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Objective:
    """One scalar to optimise: a metric path plus a direction."""

    metric: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(
                f"objective goal must be 'min' or 'max', got {self.goal!r}"
            )
        if not self.metric:
            raise ValueError("objective needs a metric path")

    @classmethod
    def parse(cls, value: "Objective | str | Mapping") -> "Objective":
        """Coerce ``"edp"``, ``"max:ipc"`` or a mapping into an objective."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if ":" in value:
                goal, _, metric = value.partition(":")
                return cls(metric=metric, goal=goal)
            return cls(metric=value)
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - {"metric", "goal"})
            if unknown:
                raise ValueError(
                    f"unknown objective keys {unknown}; allowed: "
                    "['goal', 'metric']"
                )
            return cls(metric=value["metric"], goal=value.get("goal", "min"))
        raise TypeError(f"cannot parse objective from {value!r}")

    @property
    def sign(self) -> float:
        """Multiplier turning the metric into a minimisation coordinate."""
        return 1.0 if self.goal == "min" else -1.0

    def value(self, result: EvalResult) -> float:
        """The raw (caller-facing, un-negated) metric value."""
        return result.metric(self.metric)

    def key(self, result: EvalResult) -> float:
        """The minimisation coordinate (maximisation metrics negated)."""
        return self.sign * result.metric(self.metric)

    def to_dict(self) -> dict:
        return {"metric": self.metric, "goal": self.goal}

    def __str__(self) -> str:
        return self.metric if self.goal == "min" else f"max:{self.metric}"


#: Metric paths that require the evaluation to carry power data.
POWER_METRICS = frozenset({"edp", "energy", "energy.total"})


def needs_power(objectives: Sequence[Objective],
                constraints: Sequence["Constraint"] = ()) -> bool:
    """Whether any objective or metric constraint touches energy/EDP."""
    return (any(obj.metric in POWER_METRICS for obj in objectives)
            or any(con.path in POWER_METRICS for con in constraints))


# ----------------------------------------------------------------------
# Constraints.
# ----------------------------------------------------------------------
#: Comparison operators, longest first so ``<=`` wins over ``<``.
_OPERATORS: tuple[tuple[str, object], ...] = (
    ("<=", lambda a, b: a <= b),
    (">=", lambda a, b: a >= b),
    ("==", lambda a, b: a == b),
    ("!=", lambda a, b: a != b),
    ("<", lambda a, b: a < b),
    (">", lambda a, b: a > b),
)


@dataclass(frozen=True)
class Constraint:
    """One parsed comparison: ``path op value``.

    ``path`` on the left of the operator is either a machine parameter
    (``"l2_size"``, ``"machine.l2_size"``, ``"area_proxy"``) — checked
    against candidate configurations *before* any evaluation is spent on
    them — or a result metric path (``"cpi"``, ``"edp"``,
    ``"cpi_stack.base"``) checked after evaluation.  Byte-count machine
    fields accept size strings on the right (``"l2_size<=1MB"``).
    """

    path: str
    op: str
    value: object
    source: str

    @classmethod
    def parse(cls, text: str) -> "Constraint":
        stripped = text.strip()
        for op, _ in _OPERATORS:
            if op in stripped:
                lhs, _, rhs = stripped.partition(op)
                path, raw = lhs.strip(), rhs.strip()
                if not path or not raw:
                    break
                if path.startswith("machine.") and \
                        path[len("machine."):] in MACHINE_FIELDS:
                    path = path[len("machine."):]
                value: object = raw
                field_name = path
                if field_name in SIZE_FIELDS:
                    value = parse_size(raw)
                else:
                    try:
                        value = int(raw)
                    except ValueError:
                        try:
                            value = float(raw)
                        except ValueError:
                            value = raw  # string (e.g. a predictor name)
                if isinstance(value, str) and op not in ("==", "!="):
                    raise ValueError(
                        f"constraint {text!r}: ordering comparison against "
                        f"non-numeric value {raw!r} (only == and != apply)"
                    )
                return cls(path=path, op=op, value=value, source=stripped)
        raise ValueError(
            f"malformed constraint {text!r}; expected 'path OP value' with "
            "OP one of <=, >=, ==, !=, <, > (e.g. 'l2_size<=1MB', 'cpi<1.8')"
        )

    @property
    def on_machine(self) -> bool:
        """Whether this constraint prunes configurations before evaluation."""
        return self.path in MACHINE_FIELDS

    def _compare(self, left: object) -> bool:
        comparator = dict(_OPERATORS)[self.op]
        # Size fields compare in bytes whichever spelling the candidate
        # uses — axis values may be "256KB" strings while the constraint
        # parsed to an int (a lexicographic comparison would be wrong).
        if self.path in SIZE_FIELDS and isinstance(left, str):
            left = parse_size(left)
        if isinstance(self.value, str) or isinstance(left, str):
            return comparator(str(left), str(self.value))
        return comparator(float(left), float(self.value))

    def admits_value(self, value: object) -> bool:
        """Whether one candidate field value satisfies the comparison."""
        return self._compare(value)

    def admits_machine(self, machine: MachineConfig) -> bool:
        """Whether a resolved configuration satisfies a machine constraint."""
        if not self.on_machine:
            raise ValueError(
                f"constraint {self.source!r} tests result metric "
                f"{self.path!r}, not a machine parameter"
            )
        left = (area_proxy(machine) if self.path == "area_proxy"
                else getattr(machine, self.path))
        return self._compare(left)

    def admits_result(self, result: EvalResult) -> bool:
        """Whether an evaluated result satisfies a metric constraint."""
        return self._compare(result.metric(self.path))

    def to_dict(self) -> str:
        return self.source

    def __str__(self) -> str:
        return self.source


def split_constraints(
    constraints: Sequence[Constraint],
) -> tuple[list[Constraint], list[Constraint]]:
    """(machine constraints, metric constraints), order preserved."""
    machine = [con for con in constraints if con.on_machine]
    metric = [con for con in constraints if not con.on_machine]
    return machine, metric


# ----------------------------------------------------------------------
# Pareto-front extraction.
# ----------------------------------------------------------------------
def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether minimisation vector ``a`` dominates ``b`` (<= everywhere,
    < somewhere)."""
    strictly = False
    for left, right in zip(a, b):
        if left > right:
            return False
        if left < right:
            strictly = True
    return strictly


def pareto_indices(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the exact non-dominated subset of minimisation vectors.

    A point is in the front iff **no** other point dominates it; points
    with identical vectors never dominate each other, so duplicates all
    survive — which makes the returned *set* invariant under permutation
    and duplication of the input.  The returned list is in ascending
    input order (the deterministic tie rule every caller shares).
    """
    order = sorted(range(len(vectors)), key=lambda i: (tuple(vectors[i]), i))
    # After the lexicographic sort a point can only be dominated by an
    # earlier point, and only front members can dominate anything — so one
    # forward sweep against the growing archive is exact.
    archive: list[int] = []
    front: list[int] = []
    for index in order:
        vector = vectors[index]
        if not any(dominates(vectors[kept], vector) for kept in archive):
            archive.append(index)
            front.append(index)
    return sorted(front)


def objective_vector(result: EvalResult,
                     objectives: Sequence[Objective]) -> tuple[float, ...]:
    """The result's minimisation coordinates under ``objectives``."""
    return tuple(objective.key(result) for objective in objectives)


def pareto_front(results: Sequence[EvalResult],
                 objectives: Sequence["Objective | str | Mapping"],
                 ) -> list[int]:
    """Exact Pareto front of a result batch, as ascending input indices.

    ``objectives`` accepts anything :meth:`Objective.parse` does.  With a
    single objective the front is every result tied for the optimum.
    """
    parsed = [Objective.parse(objective) for objective in objectives]
    if not parsed:
        raise ValueError("pareto_front needs at least one objective")
    vectors = [objective_vector(result, parsed) for result in results]
    return pareto_indices(vectors)
