"""Design-space search: objectives, spaces, strategies, serving.

The four layers stack bottom-up:

* :mod:`repro.search.objectives` — :class:`Objective` (any
  :meth:`~repro.api.spec.EvalResult.metric` path, min or max),
  :class:`Constraint` (the ``"l2_size<=1MB"`` / ``"cpi<1.8"`` grammar)
  and exact :func:`pareto_front` extraction;
* :mod:`repro.search.space` — :class:`SearchSpace`, an indexable,
  never-materialised cross product of plain / coupled / conditional
  axes over a base machine spec;
* :mod:`repro.search.strategies` — the :data:`STRATEGIES` registry
  (``exhaustive``, ``random``, ``surrogate``) over a shared budgeted
  :class:`SearchDriver`;
* :mod:`repro.search.optimize` — the :class:`OptimizeRequest` /
  :class:`OptimizeResult` envelopes behind ``repro optimize`` and
  ``POST /v1/optimize``, plus :func:`optimize` itself.

Every layer is pure stdlib arithmetic, so a whole search trajectory is
byte-identical for a given seed across accel backends and job counts.
"""

from repro.search.objectives import (
    Constraint,
    Objective,
    dominates,
    needs_power,
    objective_vector,
    pareto_front,
    pareto_indices,
    split_constraints,
)
from repro.search.optimize import (
    SEARCH_SCHEMA_VERSION,
    OptimizeRequest,
    OptimizeResult,
    optimize,
    validate_optimize_request,
)
from repro.search.space import SPACE_SCHEMA_VERSION, SearchSpace, SpaceAxis
from repro.search.strategies import STRATEGIES, SearchDriver, strategy_names

__all__ = [
    "Constraint",
    "Objective",
    "OptimizeRequest",
    "OptimizeResult",
    "SEARCH_SCHEMA_VERSION",
    "SPACE_SCHEMA_VERSION",
    "STRATEGIES",
    "SearchDriver",
    "SearchSpace",
    "SpaceAxis",
    "dominates",
    "needs_power",
    "objective_vector",
    "optimize",
    "pareto_front",
    "pareto_indices",
    "split_constraints",
    "strategy_names",
    "validate_optimize_request",
]
