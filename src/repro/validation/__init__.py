"""Validation utilities: error metrics and distributions."""

from repro.validation.compare import (
    ValidationRow,
    ValidationSummary,
    cumulative_distribution,
    relative_error,
    summarize,
)

__all__ = [
    "ValidationRow",
    "ValidationSummary",
    "relative_error",
    "cumulative_distribution",
    "summarize",
]
