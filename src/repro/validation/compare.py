"""Error metrics used to validate the model against detailed simulation."""

from __future__ import annotations

from dataclasses import dataclass


def relative_error(predicted: float, reference: float) -> float:
    """Signed relative error of ``predicted`` with respect to ``reference``."""
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return (predicted - reference) / reference


@dataclass(frozen=True)
class ValidationRow:
    """One validation data point: a (workload, configuration) pair."""

    name: str
    configuration: str
    predicted_cpi: float
    simulated_cpi: float

    @property
    def error(self) -> float:
        return relative_error(self.predicted_cpi, self.simulated_cpi)

    @property
    def absolute_error(self) -> float:
        return abs(self.error)


@dataclass(frozen=True)
class ValidationSummary:
    """Aggregate error statistics over a set of validation rows.

    A summary over zero rows is well-defined (count 0, every aggregate
    0.0, never NaN or a division by zero) so empty summaries can be
    merged, rendered and serialized safely; use :meth:`empty` to build
    one explicitly.  :func:`summarize` — the path every experiment takes
    — rejects an empty row list instead, because an experiment producing
    zero validation points is a bug worth a loud error.
    """

    rows: tuple[ValidationRow, ...]

    @classmethod
    def empty(cls) -> "ValidationSummary":
        """The well-defined zero-row summary."""
        return cls(rows=())

    @property
    def count(self) -> int:
        return len(self.rows)

    @property
    def average_absolute_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.absolute_error for row in self.rows) / len(self.rows)

    @property
    def maximum_absolute_error(self) -> float:
        if not self.rows:
            return 0.0
        return max(row.absolute_error for row in self.rows)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of points whose absolute error is below ``threshold``."""
        if not self.rows:
            return 0.0
        within = sum(1 for row in self.rows if row.absolute_error < threshold)
        return within / len(self.rows)

    def worst(self, count: int = 5) -> list[ValidationRow]:
        return sorted(self.rows, key=lambda row: row.absolute_error, reverse=True)[:count]


def summarize(rows: list[ValidationRow]) -> ValidationSummary:
    """Build a :class:`ValidationSummary` from individual rows.

    Raises :class:`ValueError` on an empty list: every caller is
    aggregating experiment output, and zero rows there means the
    benchmark selection or the sweep came back empty.  Build
    :meth:`ValidationSummary.empty` directly if a zero-row summary is
    genuinely intended.
    """
    if not rows:
        raise ValueError(
            "cannot summarize zero validation rows (empty benchmark "
            "selection or sweep?); use ValidationSummary.empty() if an "
            "empty summary is intended"
        )
    return ValidationSummary(rows=tuple(rows))


def cumulative_distribution(values: list[float],
                            points: int = 101) -> list[tuple[float, float]]:
    """Cumulative distribution of ``values`` sampled at ``points`` thresholds.

    Returns (threshold, fraction <= threshold) pairs spanning 0..max(values),
    matching the presentation of the paper's Figure 5.
    """
    if not values:
        return []
    if points < 2:
        raise ValueError("need at least two sample points")
    ordered = sorted(values)
    top = ordered[-1]
    if top == 0:
        return [(0.0, 1.0)]
    curve = []
    for index in range(points):
        # Use the exact maximum for the last point so the curve always ends
        # at a fraction of 1.0 despite floating-point rounding.
        threshold = top if index == points - 1 else top * index / (points - 1)
        covered = sum(1 for value in ordered if value <= threshold)
        curve.append((threshold, covered / len(ordered)))
    return curve
