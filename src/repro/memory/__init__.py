"""Cache, TLB and memory-hierarchy simulation.

This package provides the program-machine profiling substrate of the paper's
framework (Figure 2): set-associative LRU caches, translation lookaside
buffers, a two-level hierarchy used both by the profiler and by the detailed
pipeline simulators, and a single-pass (stack-distance) cache profiler in the
spirit of Mattson et al. / Hill & Smith, which the paper cites for collecting
miss rates for many cache configurations in one profiling run.
"""

from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.hierarchy import (
    AccessOutcome,
    CacheHierarchy,
    HierarchyStats,
    MemoryHierarchyConfig,
)
from repro.memory.single_pass import StackDistanceProfiler

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "TLB",
    "TLBConfig",
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyStats",
    "MemoryHierarchyConfig",
    "StackDistanceProfiler",
]
