"""Set-associative LRU cache model."""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Sizes are in bytes.  ``size = sets * associativity * line_size`` must hold
    with power-of-two sets and line size, as for the caches in the paper's
    design space (Table 2).
    """

    size: int
    associativity: int
    line_size: int = 64
    name: str = "cache"

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size {self.size} is not divisible by "
                f"associativity*line ({self.associativity}x{self.line_size})"
            )
        if not _is_power_of_two(self.sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def sets(self) -> int:
        return self.size // (self.line_size * self.associativity)

    def describe(self) -> str:
        kib = self.size // 1024
        return f"{kib}KB {self.associativity}-way {self.line_size}B lines"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with true-LRU replacement.

    Each set is an ordered list of tags, most recently used last.  The model
    is a tag store only: no data is kept because only hit/miss behaviour
    matters for performance modeling.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self._offset_bits = config.line_size.bit_length() - 1
        self._set_mask = config.sets - 1

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        return line & self._set_mask, line

    def access(self, address: int) -> bool:
        """Access ``address``; return ``True`` on a hit and update LRU state."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        self.stats.accesses += 1
        try:
            ways.remove(tag)
            hit = True
        except ValueError:
            hit = False
            self.stats.misses += 1
            if len(ways) >= self.config.associativity:
                ways.pop(0)
        ways.append(tag)
        return hit

    def probe(self, address: int) -> bool:
        """Check for a hit without updating LRU state or counters."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self.stats = CacheStats()
        self._sets = [[] for _ in range(self.config.sets)]

    def resident_lines(self) -> int:
        """Number of valid lines currently cached (useful for invariants)."""
        return sum(len(ways) for ways in self._sets)
