"""Single-pass (stack-distance) cache profiling.

The paper notes that the mixed program-machine statistics (cache miss rates
for many configurations) can be collected in a single profiling run using
single-pass cache simulation [Hill & Smith; Mattson et al.].  This module
implements the classic per-set LRU stack-distance algorithm: one pass over an
address stream yields the exact miss count of *every* associativity for a
fixed number of sets and line size, because LRU set-associative caches obey
the stack inclusion property.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from dataclasses import dataclass


def suffix_counts(histogram: dict[int, int]) -> array:
    """Cumulative (suffix-sum) form of a stack-distance histogram.

    Entry ``a`` holds the number of accesses whose distance is ``>= a``
    (queries beyond the array are zero), so a miss-count lookup for any
    associativity is O(1) instead of a histogram scan.
    """
    if not histogram:
        return array("q", (0,))
    suffix = array("q", bytes(8 * (max(histogram) + 2)))
    for distance, count in histogram.items():
        suffix[distance] = count
    total = 0
    for distance in range(len(suffix) - 1, -1, -1):
        total += suffix[distance]
        suffix[distance] = total
    return suffix


@dataclass(frozen=True)
class SinglePassResult:
    """Miss counts per associativity for one (sets, line size) geometry."""

    sets: int
    line_size: int
    accesses: int
    cold_misses: int
    #: distance_histogram[d] = number of accesses whose LRU stack distance was d
    distance_histogram: dict[int, int]

    def misses(self, associativity: int) -> int:
        """Exact LRU miss count for a cache of the given associativity (O(1)).

        The histogram is folded once into a suffix-sum array (lazily, so
        instances unpickled from cache entries stay valid) and every query
        after that is a single lookup.
        """
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        suffix = self.__dict__.get("_suffix")
        if suffix is None:
            suffix = suffix_counts(self.distance_histogram)
            object.__setattr__(self, "_suffix", suffix)
        conflict = suffix[associativity] if associativity < len(suffix) else 0
        return self.cold_misses + conflict

    def miss_rate(self, associativity: int) -> float:
        return self.misses(associativity) / self.accesses if self.accesses else 0.0


class StackDistanceProfiler:
    """Collects per-set LRU stack distances in one pass over an address stream.

    ``sets=1`` models a fully associative cache, in which case ``misses(a)``
    gives the miss count of any capacity of ``a`` lines.
    """

    def __init__(self, sets: int, line_size: int = 64):
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        self.sets = sets
        self.line_size = line_size
        self._offset_bits = line_size.bit_length() - 1
        self._set_mask = sets - 1
        self._stacks: list[list[int]] = [[] for _ in range(sets)]
        self._histogram: dict[int, int] = defaultdict(int)
        self._accesses = 0
        self._cold = 0

    def access(self, address: int) -> int:
        """Record one access; returns its stack distance (-1 for a cold miss)."""
        line = address >> self._offset_bits
        stack = self._stacks[line & self._set_mask]
        self._accesses += 1
        try:
            # Stack distance = number of distinct lines touched since the
            # previous access to this line (0 = most recently used).
            position = stack.index(line)
        except ValueError:
            self._cold += 1
            stack.insert(0, line)
            return -1
        del stack[position]
        stack.insert(0, line)
        self._histogram[position] += 1
        return position

    def profile(self, addresses) -> SinglePassResult:
        """Consume an iterable of addresses and return the result summary."""
        for address in addresses:
            self.access(address)
        return self.result()

    def result(self) -> SinglePassResult:
        return SinglePassResult(
            sets=self.sets,
            line_size=self.line_size,
            accesses=self._accesses,
            cold_misses=self._cold,
            distance_histogram=dict(self._histogram),
        )
