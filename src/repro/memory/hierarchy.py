"""Two-level cache hierarchy with TLBs.

The hierarchy is shared by the profiler and by the detailed pipeline
simulators so that both observe exactly the same miss events for a given
trace and configuration — the key property the paper relies on when
validating the analytical model against detailed simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB, TLBConfig


class AccessOutcome(enum.Enum):
    """Where a memory access was satisfied."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    MEMORY = "memory"


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Cache/TLB geometry plus access latencies (in cycles).

    Latencies follow the paper's default configuration: single-cycle L1
    access, a 10 ns L2 (10 cycles at the default 1 GHz) and main memory an
    order of magnitude further away.  The latencies are expressed in cycles so
    the design-space exploration can rescale them when the clock frequency
    changes (Table 2 varies 600 MHz .. 1 GHz).
    """

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 64, name="l1i")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 64, name="l1d")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 64, name="l2")
    )
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(32, name="itlb"))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(32, name="dtlb"))
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 10
    memory_cycles: int = 80
    tlb_miss_cycles: int = 30

    def latency_of(self, outcome: AccessOutcome) -> int:
        """Total access latency (cycles) for an access with ``outcome``."""
        if outcome is AccessOutcome.L1_HIT:
            return self.l1_hit_cycles
        if outcome is AccessOutcome.L2_HIT:
            return self.l1_hit_cycles + self.l2_hit_cycles
        return self.l1_hit_cycles + self.l2_hit_cycles + self.memory_cycles


@dataclass
class HierarchyStats:
    """Miss-event counts accumulated over a trace."""

    instruction_accesses: int = 0
    data_accesses: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    il2_misses: int = 0
    dl2_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0

    @property
    def l1i_l2_hits(self) -> int:
        """Instruction-side L1 misses that were satisfied by the L2."""
        return self.l1i_misses - self.il2_misses

    @property
    def l1d_l2_hits(self) -> int:
        """Data-side L1 misses that were satisfied by the L2."""
        return self.l1d_misses - self.dl2_misses


class CacheHierarchy:
    """L1 instruction/data caches backed by a unified L2, plus TLBs."""

    def __init__(self, config: MemoryHierarchyConfig):
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.itlb = TLB(config.itlb)
        self.dtlb = TLB(config.dtlb)
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    def access_instruction(self, address: int) -> tuple[AccessOutcome, bool]:
        """Fetch-side access; returns (cache outcome, TLB missed?)."""
        self.stats.instruction_accesses += 1
        tlb_miss = not self.itlb.access(address)
        if tlb_miss:
            self.stats.itlb_misses += 1
        if self.l1i.access(address):
            return AccessOutcome.L1_HIT, tlb_miss
        self.stats.l1i_misses += 1
        if self.l2.access(address):
            return AccessOutcome.L2_HIT, tlb_miss
        self.stats.il2_misses += 1
        return AccessOutcome.MEMORY, tlb_miss

    def access_data(self, address: int, is_store: bool = False) -> tuple[AccessOutcome, bool]:
        """Load/store access; returns (cache outcome, TLB missed?).

        Stores allocate on miss (write-allocate, write-back), which matches
        the blocking behaviour assumed by the in-order pipeline.
        """
        self.stats.data_accesses += 1
        tlb_miss = not self.dtlb.access(address)
        if tlb_miss:
            self.stats.dtlb_misses += 1
        if self.l1d.access(address):
            return AccessOutcome.L1_HIT, tlb_miss
        self.stats.l1d_misses += 1
        if self.l2.access(address):
            return AccessOutcome.L2_HIT, tlb_miss
        self.stats.dl2_misses += 1
        return AccessOutcome.MEMORY, tlb_miss

    def latency_of(self, outcome: AccessOutcome, tlb_miss: bool = False) -> int:
        """Cycles needed to satisfy an access, including a page walk if any."""
        latency = self.config.latency_of(outcome)
        if tlb_miss:
            latency += self.config.tlb_miss_cycles
        return latency

    def reset(self) -> None:
        for component in (self.l1i, self.l1d, self.l2, self.itlb, self.dtlb):
            component.reset()
        self.stats = HierarchyStats()
