"""Translation lookaside buffer model (fully associative, LRU)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import CacheStats


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry: number of entries and page size in bytes."""

    entries: int = 32
    page_size: int = 4096
    name: str = "tlb"

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"{self.name}: needs at least one entry")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page size must be a power of two")


class TLB:
    """Fully associative TLB with LRU replacement."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = CacheStats()
        self._entries: list[int] = []
        self._page_shift = config.page_size.bit_length() - 1

    def access(self, address: int) -> bool:
        """Translate ``address``; return ``True`` on a TLB hit."""
        page = address >> self._page_shift
        self.stats.accesses += 1
        try:
            self._entries.remove(page)
            hit = True
        except ValueError:
            hit = False
            self.stats.misses += 1
            if len(self._entries) >= self.config.entries:
                self._entries.pop(0)
        self._entries.append(page)
        return hit

    def reset(self) -> None:
        self.stats = CacheStats()
        self._entries = []
