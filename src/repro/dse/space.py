"""Definition of the paper's architecture design space (Table 2).

The full space crosses

* pipeline depth / frequency: (5 stages, 600 MHz), (7, 800 MHz), (9, 1 GHz),
* processor width: 1, 2, 3, 4,
* L2 size: 128 KB, 256 KB, 512 KB, 1 MB, with 8- or 16-way associativity,
* branch predictor: 1 KB global history or 3.5 KB hybrid,

for 3 x 4 x 8 x 2 = 192 design points, all sharing 32 KB 4-way L1 caches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.machine import MachineConfig

#: (pipeline stages, frequency in MHz) pairs explored by the paper.
DEPTH_FREQUENCY_POINTS: tuple[tuple[int, int], ...] = (
    (5, 600),
    (7, 800),
    (9, 1000),
)

WIDTHS: tuple[int, ...] = (1, 2, 3, 4)

L2_SIZES: tuple[int, ...] = (128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024)

L2_ASSOCIATIVITIES: tuple[int, ...] = (8, 16)

BRANCH_PREDICTORS: tuple[str, ...] = ("global_1kb", "hybrid_3.5kb")


@dataclass(frozen=True)
class DesignSpace:
    """A cross product of microarchitecture parameter choices."""

    depth_frequency: tuple[tuple[int, int], ...] = DEPTH_FREQUENCY_POINTS
    widths: tuple[int, ...] = WIDTHS
    l2_sizes: tuple[int, ...] = L2_SIZES
    l2_associativities: tuple[int, ...] = L2_ASSOCIATIVITIES
    branch_predictors: tuple[str, ...] = BRANCH_PREDICTORS
    base: MachineConfig = field(default_factory=MachineConfig)

    def __len__(self) -> int:
        return (len(self.depth_frequency) * len(self.widths) * len(self.l2_sizes)
                * len(self.l2_associativities) * len(self.branch_predictors))

    def configurations(self) -> list[MachineConfig]:
        """Materialise every design point as a :class:`MachineConfig`."""
        configurations = []
        for (stages, frequency), width, l2_size, l2_assoc, predictor in itertools.product(
            self.depth_frequency,
            self.widths,
            self.l2_sizes,
            self.l2_associativities,
            self.branch_predictors,
        ):
            name = (
                f"w{width}_d{stages}_f{frequency}"
                f"_l2-{l2_size // 1024}k-{l2_assoc}w_{predictor}"
            )
            configurations.append(
                self.base.with_(
                    width=width,
                    pipeline_stages=stages,
                    frequency_mhz=frequency,
                    l2_size=l2_size,
                    l2_associativity=l2_assoc,
                    branch_predictor=predictor,
                    name=name,
                )
            )
        return configurations

    def __iter__(self):
        return iter(self.configurations())

    def to_sweep(self, workloads, *, backends=("analytical",),
                 with_power: bool = False, flags: str = "O3"):
        """Express this space in the :mod:`repro.api` sweep grammar.

        The sweep carries the space's configurations as an explicit machine
        grid (preset + minimal overrides), preserving the generated point
        names, so ``space.to_sweep(names).expand()`` asks exactly the
        questions ``DesignSpaceExplorer`` over this space would — but as
        declarative, JSON-serializable requests that batch through
        :func:`repro.api.evaluate_many`.
        """
        from repro.api.spec import MachineSpec, WorkloadSpec
        from repro.api.sweep import SweepRequest

        return SweepRequest(
            workloads=tuple(WorkloadSpec(name, flags) for name in workloads),
            machines=tuple(MachineSpec.from_machine(machine)
                           for machine in self.configurations()),
            backends=tuple(backends),
            with_power=with_power,
        )

    def to_search_space(self):
        """Express this space as a :class:`repro.search.space.SearchSpace`.

        Point ``i`` of the returned space resolves to *exactly*
        ``self.configurations()[i]`` — same enumeration order (depth/
        frequency most significant, predictor least, matching the
        ``itertools.product`` above) and same generated names via the
        name template — so an exhaustive search over it reproduces
        :class:`~repro.dse.explorer.DesignSpaceExplorer` selections
        byte-for-byte, while indexed access costs O(axes) instead of
        materialising the cross product.
        """
        from repro.api.spec import MachineSpec
        from repro.search.space import SearchSpace

        return SearchSpace.make(
            [
                {"axis": "pipeline_stages,frequency_mhz",
                 "values": list(self.depth_frequency)},
                {"axis": "width", "values": list(self.widths)},
                {"axis": "l2_size", "values": list(self.l2_sizes)},
                {"axis": "l2_associativity",
                 "values": list(self.l2_associativities)},
                {"axis": "branch_predictor",
                 "values": list(self.branch_predictors)},
            ],
            base=MachineSpec.from_machine(self.base),
            name_template=("w{width}_d{pipeline_stages}_f{frequency_mhz}"
                           "_l2-{l2_size_kb}k-{l2_associativity}w"
                           "_{branch_predictor}"),
        )


def default_design_space() -> DesignSpace:
    """The paper's full 192-point design space."""
    return DesignSpace()


def reduced_design_space() -> DesignSpace:
    """A 24-point subsample used where detailed simulation of all 192 points
    would be too slow (e.g. the default benchmark harness settings).

    The subsample keeps the extremes and the default of every dimension, so
    error statistics computed on it are representative of the full space.
    """
    return DesignSpace(
        depth_frequency=((5, 600), (9, 1000)),
        widths=(1, 2, 4),
        l2_sizes=(128 * 1024, 512 * 1024),
        l2_associativities=(8,),
        branch_predictors=("global_1kb", "hybrid_3.5kb"),
    )
