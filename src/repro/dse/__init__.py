"""Design-space exploration (Table 2 and Figures 5 and 9 of the paper)."""

from repro.dse.space import DesignSpace, default_design_space, reduced_design_space
from repro.dse.explorer import (
    DesignPointResult,
    DesignSpaceExplorer,
    EDPResult,
)

__all__ = [
    "DesignSpace",
    "default_design_space",
    "reduced_design_space",
    "DesignSpaceExplorer",
    "DesignPointResult",
    "EDPResult",
]
