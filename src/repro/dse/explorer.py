"""Design-space exploration driver.

The explorer is a thin adapter over the :mod:`repro.api` evaluation
backends: each (workload, configuration) point is answered by the
registered ``analytical`` backend (fast path: the single-pass
stack-distance engine profiles each workload once per cache geometry and
once per branch predictor, then every configuration is answered from the
cached histograms) and optionally by the ``simulator`` backend (the
cycle-accurate reference).  Power comes from the same backends' energy
attachment, reproducing the paper's Figures 5 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.backends import PointEvaluation, get_backend
from repro.machine import MachineConfig
from repro.runtime.session import Session
from repro.validation.compare import ValidationRow, ValidationSummary, summarize
from repro.workloads.base import Workload


@dataclass
class DesignPointResult:
    """Model (and optionally simulator) outcome for one (workload, config) pair."""

    workload: str
    machine: MachineConfig
    model: PointEvaluation
    simulated_cycles: int | None = None
    model_energy_joules: float | None = None
    simulated_energy_joules: float | None = None

    @property
    def model_cpi(self) -> float:
        return self.model.cpi

    @property
    def simulated_cpi(self) -> float | None:
        if self.simulated_cycles is None:
            return None
        return self.simulated_cycles / self.model.instructions

    @property
    def model_edp(self) -> float | None:
        if self.model_energy_joules is None:
            return None
        time_seconds = self.model.cycles * self.machine.cycle_ns * 1e-9
        return self.model_energy_joules * time_seconds

    @property
    def simulated_edp(self) -> float | None:
        if self.simulated_energy_joules is None or self.simulated_cycles is None:
            return None
        time_seconds = self.simulated_cycles * self.machine.cycle_ns * 1e-9
        return self.simulated_energy_joules * time_seconds


@dataclass
class EDPResult:
    """EDP exploration outcome for one workload across a design space."""

    workload: str
    points: list[DesignPointResult]

    def best_by_model(self) -> DesignPointResult:
        scored = [point for point in self.points if point.model_edp is not None]
        if not scored:
            raise ValueError(
                "no model EDP available; evaluate the design points with "
                "with_power=True before asking for the EDP optimum"
            )
        return min(scored, key=lambda point: point.model_edp)

    def best_by_simulation(self) -> DesignPointResult:
        simulated = [point for point in self.points if point.simulated_edp is not None]
        if not simulated:
            raise ValueError("no simulated points available")
        return min(simulated, key=lambda point: point.simulated_edp)

    def model_choice_edp_gap(self) -> float:
        """Relative EDP difference between the model's pick and the true optimum.

        This is the paper's Figure 9 headline: for most benchmarks the model
        picks the optimal configuration; when it does not, the EDP of its pick
        is within a fraction of a percent of the optimum.
        """
        best_simulated = self.best_by_simulation()
        model_pick = self.best_by_model()
        model_pick_simulated_edp = next(
            point.simulated_edp
            for point in self.points
            if point.machine.name == model_pick.machine.name
        )
        return (model_pick_simulated_edp - best_simulated.simulated_edp) / best_simulated.simulated_edp


class DesignSpaceExplorer:
    """Evaluate workloads across a set of machine configurations.

    Each point is answered by a registered :mod:`repro.api` backend
    (``backend`` for the estimate, the ``simulator`` backend for the
    reference), drawing every profile through the shared
    :class:`~repro.runtime.session.Session` (memoized per trace and machine
    — configurations hash by geometry, never by display name — and, when
    the session has a cache directory, persisted across processes and
    runs).  Omitting ``session`` creates an ephemeral in-memory one.
    """

    def __init__(self, configurations: list[MachineConfig],
                 session: Session | None = None, backend: str = "analytical"):
        if not configurations:
            raise ValueError("the design space is empty")
        self.configurations = configurations
        self.session = session if session is not None else Session()
        self.backend = get_backend(backend)
        self.simulator = get_backend("simulator")

    @classmethod
    def from_space(cls, space, session: Session | None = None,
                   backend: str = "analytical") -> "DesignSpaceExplorer":
        """Explorer over every configuration of a :class:`~repro.dse.space.DesignSpace`."""
        return cls(space.configurations(), session=session, backend=backend)

    # ------------------------------------------------------------------
    def evaluate(self, workload: Workload, *, simulate: bool = False,
                 with_power: bool = False) -> list[DesignPointResult]:
        """Run the model (and optionally the simulator) across all configurations."""
        results = []
        for machine in self.configurations:
            model = self.backend.evaluate(
                self.session, workload, machine, with_power=with_power
            )
            point = DesignPointResult(
                workload=workload.name, machine=machine, model=model,
                model_energy_joules=model.energy_joules,
            )
            if simulate:
                detailed = self.simulator.evaluate(
                    self.session, workload, machine, with_power=with_power
                )
                point.simulated_cycles = int(detailed.cycles)
                point.simulated_energy_joules = detailed.energy_joules
            results.append(point)
        return results

    def validate(self, workloads: list[Workload]) -> ValidationSummary:
        """Model-versus-simulator error across the whole space (Figure 5)."""
        rows: list[ValidationRow] = []
        for workload in workloads:
            for point in self.evaluate(workload, simulate=True):
                rows.append(
                    ValidationRow(
                        name=workload.name,
                        configuration=point.machine.name,
                        predicted_cpi=point.model_cpi,
                        simulated_cpi=point.simulated_cpi,
                    )
                )
        return summarize(rows)

    def explore_edp(self, workload: Workload, *, simulate: bool = True) -> EDPResult:
        """Energy-delay-product exploration for one workload (Figure 9)."""
        points = self.evaluate(workload, simulate=simulate, with_power=True)
        return EDPResult(workload=workload.name, points=points)
