"""repro: mechanistic performance model for superscalar in-order processors.

A from-scratch reproduction of Breughe, Eyerman & Eeckhout, "A Mechanistic
Performance Model for Superscalar In-Order Processors" (ISPASS 2012),
including every substrate the paper depends on: an ISA with a functional
simulator, MiBench-like and SPEC-like workload kernels, cache/TLB and
branch-predictor models, cycle-accurate in-order and out-of-order pipeline
simulators, the mechanistic analytical model itself, a McPAT-style power
model and a design-space exploration driver.

Typical use::

    from repro import DEFAULT_MACHINE, predict_workload, InOrderPipeline
    from repro.workloads import get_workload

    workload = get_workload("sha")
    model = predict_workload(workload, DEFAULT_MACHINE)
    detailed = InOrderPipeline(DEFAULT_MACHINE).run(workload.trace())
    print(model.cpi, detailed.cpi)
"""

from repro.machine import DEFAULT_MACHINE, MachineConfig
from repro.core.model import InOrderMechanisticModel, ModelResult, predict_workload
from repro.core.cpi_stack import CPIComponent, CPIStack
from repro.core.ooo import OutOfOrderIntervalModel
from repro.pipeline.inorder import InOrderPipeline, InOrderResult
from repro.pipeline.ooo import OutOfOrderPipeline

__version__ = "0.4.0"

__all__ = [
    "MachineConfig",
    "DEFAULT_MACHINE",
    "InOrderMechanisticModel",
    "OutOfOrderIntervalModel",
    "ModelResult",
    "predict_workload",
    "CPIComponent",
    "CPIStack",
    "InOrderPipeline",
    "InOrderResult",
    "OutOfOrderPipeline",
    "__version__",
]
