"""The evaluation facade: single calls, batches, and request files.

:func:`evaluate` answers one :class:`~repro.api.spec.EvalRequest`;
:func:`evaluate_many` shards a batch across the
:class:`~repro.runtime.session.Session` process pool (``jobs=N``) while
keeping the output order — and therefore the serialized output bytes —
identical to a serial run.  :func:`parse_request_payload` turns the JSON
request-file forms the ``repro-experiments eval`` subcommand accepts into
a flat request list.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

from repro.api.backends import BACKENDS, get_backend
from repro.api.spec import EvalRequest, EvalResult
from repro.api.sweep import SweepRequest
from repro.runtime.session import Session


def _machine_label(request: EvalRequest, machine) -> str:
    """A result label that distinguishes override-modified machines.

    A spec that overrides geometry fields without renaming the machine
    would otherwise report the base preset's display name, making e.g. a
    ``{"l2_size": "1MB"}`` variant indistinguishable from the plain preset
    in a results table.  Byte-count overrides are normalized through
    :func:`~repro.machine.format_size`, so ``1048576``, ``"1024KB"`` and
    ``"1MB"`` all label as ``l2_size=1MB``.
    """
    from repro.machine import SIZE_FIELDS, format_size, parse_size

    overrides = request.machine.overrides
    if "name" in overrides or not overrides:
        return machine.name
    rendered = {
        key: format_size(parse_size(value)) if key in SIZE_FIELDS else value
        for key, value in overrides.items()
    }
    return (request.machine.preset + "+"
            + ",".join(f"{key}={value}" for key, value in sorted(rendered.items())))


def _failed_result(request: EvalRequest, machines: dict,
                   error: str) -> EvalResult:
    """The structured per-item error envelope of a contained failure.

    A quarantined or crashed unit keeps its slot in the batch: same
    request/workload/machine labels as a success, zeroed metrics, and the
    failure message in ``error`` — so a 76-point sweep with one poison
    workload returns 72 answers plus 4 addressable errors instead of
    nothing.
    """
    machine = machines.get(request.machine)
    if machine is None:
        machine = request.machine.resolve()
    return EvalResult(
        request=request,
        backend=BACKENDS.canonical(request.backend),
        workload=request.workload.name,
        machine=_machine_label(request, machine),
        instructions=0,
        cycles=0.0,
        seconds=0.0,
        error=error,
    )


def _evaluate_one(session: Session, request: EvalRequest) -> EvalResult:
    """One request through its backend (module-level: process-pool unit)."""
    backend = get_backend(request.backend)
    workload = request.workload.resolve(session)
    machine = request.machine.resolve()
    point = backend.evaluate(
        session, workload, machine,
        with_power=request.with_power, mlp_window=request.mlp_window,
    )
    return EvalResult(
        request=request,
        backend=BACKENDS.canonical(request.backend),
        workload=workload.name,
        machine=_machine_label(request, machine),
        instructions=point.instructions,
        cycles=point.cycles,
        seconds=point.execution_time_seconds,
        cpi_stack=point.cpi_stack,
        energy_joules=point.energy_joules,
    )


def evaluate(request: "EvalRequest | Mapping", *,
             session: Session | None = None) -> EvalResult:
    """Answer one evaluation request (a fresh ephemeral session if none given)."""
    return _evaluate_one(session if session is not None else Session(),
                         EvalRequest.parse(request))


def validate_requests(requests: Sequence[EvalRequest], *,
                      machines: dict | None = None) -> None:
    """Fail fast on unresolvable requests, before any evaluation work.

    Checks every backend name, machine spec (preset, override fields, size
    strings) and workload name/flags against their registries, so a typo
    surfaces as one clear error instead of a traceback out of a worker
    process mid-batch.  ``machines`` (spec -> resolved config) memoizes
    resolution across the batch — a 192-point sweep resolves 192 machines,
    not one per request — and is shared with the sweep planner.
    """
    from repro.runtime.session import COMPILER_FLAGS
    from repro.search.optimize import (
        OptimizeRequest,
        validate_optimize_request,
    )
    from repro.workloads.registry import WORKLOADS

    if machines is None:
        machines = {}
    checked: set[tuple] = set()
    for index, request in enumerate(requests):
        if isinstance(request, OptimizeRequest):
            # Whole-search requests validate structurally (named-field
            # errors for infeasible constraints, zero-cardinality spaces,
            # bad strategies/budgets) instead of per-evaluation.
            errors = validate_optimize_request(request)
            if errors:
                message = "; ".join(errors)
                if len(requests) > 1:
                    message = f"request[{index}]: {message}"
                raise ValueError(message)
            continue
        # A sweep repeats the same (backend, workload, machine) coordinates
        # thousands of times; validate each distinct combination once.
        key = (request.backend, request.workload.name,
               request.workload.flags, request.machine)
        if key in checked:
            continue
        try:
            get_backend(request.backend)
            if request.machine not in machines:
                machines[request.machine] = request.machine.resolve()
            if request.workload.name not in WORKLOADS:
                known = ", ".join(WORKLOADS.names())
                raise ValueError(
                    f"unknown workload {request.workload.name!r}; known: {known}"
                )
            if request.workload.flags not in COMPILER_FLAGS:
                known = ", ".join(COMPILER_FLAGS)
                raise ValueError(
                    f"unknown compiler flags {request.workload.flags!r}; "
                    f"known: {known}"
                )
        except (ValueError, KeyError) as exc:
            # Every message names the bad value AND lists the valid choices
            # (the registries do this for presets/backends); add which
            # request of the batch failed so a bad sweep is a one-read fix.
            message = str(exc)
            if len(requests) > 1:
                message = f"request[{index}]: {message}"
            raise type(exc)(message) from exc
        checked.add(key)


def evaluate_many(requests: Iterable["EvalRequest | Mapping"], *,
                  session: Session | None = None, jobs: int | None = None,
                  cache_dir=None, plan: bool = True) -> list[EvalResult]:
    """Answer a batch of requests, optionally sharded across processes.

    The batch runs through the sweep planner (:mod:`repro.api.planner`):
    requests are grouped by workload and ordered by pass signature, so
    each profiling pass is computed exactly once per trace across the
    whole batch — also under sharding, where each group goes to one worker
    and traces the parent already holds ship as raw column bytes.
    ``plan=False`` falls back to request-by-request sharding (same
    results, byte for byte — planning only changes *where* work happens).

    With ``jobs > 1`` the batch is distributed over a process pool whose
    workers share the session's artifact-cache directory (a run-scoped
    temporary directory when no ``cache_dir`` is given, so workers never
    redo each other's compilations); results keep request order, so
    parallel output is byte-identical to serial output.  Pass either an
    existing ``session`` or ``jobs``/``cache_dir`` to build one — not both.
    """
    from repro.runtime.session import pooled_session

    parsed = [EvalRequest.parse(request) for request in requests]
    machines: dict = {}
    validate_requests(parsed, machines=machines)
    if session is not None:
        if jobs is not None or cache_dir is not None:
            raise ValueError(
                "pass either an existing session or jobs/cache_dir, not both "
                "(the session already fixes its job count and cache directory)"
            )
        return _run_batch(session, parsed, machines, plan)
    with pooled_session(cache_dir, jobs if jobs is not None else 1) as pooled:
        return _run_batch(pooled, parsed, machines, plan)


def _run_batch(session: Session, parsed: list[EvalRequest],
               machines: dict, plan: bool) -> list[EvalResult]:
    import time

    from repro.api.planner import evaluate_group_timed, plan_requests
    from repro.obs.tracing import emit_span, span
    from repro.resilience.containment import UnitFailure

    if not plan or len(parsed) <= 1:
        return session.map(_evaluate_one, parsed)
    with span("planner.plan", requests=len(parsed)) as plan_span:
        groups = plan_requests(parsed, jobs=session.jobs, machines=machines)
        plan_span.set(groups=len(groups))
    if session.jobs > 1:
        # Ship traces the parent already holds through the active data
        # plane — a shared-memory segment handle the workers attach
        # zero-copy, or raw column bytes on platforms without POSIX shared
        # memory; cold traces are built (or cache-loaded) by the worker
        # that owns them.
        started = time.perf_counter()
        groups = [
            group.with_payload(session.ship_trace(group.workload,
                                                  group.flags))
            for group in groups
        ]
        elapsed = time.perf_counter() - started
        session.stages.add("ship", elapsed)
        emit_span("planner.ship", elapsed, groups=len(groups))
    with span("planner.dispatch", groups=len(groups), jobs=session.jobs):
        # Resilient dispatch: a group whose unit is quarantined (or whose
        # worker failed) comes back as a UnitFailure instead of sinking
        # the whole batch; its requests become per-item error results.
        grouped = session.map_resilient(evaluate_group_timed, groups)
    started = time.perf_counter()
    results: list[EvalResult | None] = [None] * len(parsed)
    for group, outcome in zip(groups, grouped):
        if isinstance(outcome, UnitFailure):
            for index in group.indices:
                results[index] = _failed_result(parsed[index], machines,
                                                outcome.error)
            continue
        answers, stages = outcome
        session.stages.merge(stages)
        for index, answer in zip(group.indices, answers):
            results[index] = answer
    elapsed = time.perf_counter() - started
    session.stages.add("collect", elapsed)
    emit_span("planner.collect", elapsed, requests=len(parsed))
    return results


# ----------------------------------------------------------------------
# Request files.
# ----------------------------------------------------------------------
def parse_request_payload(payload) -> list[EvalRequest]:
    """Flatten a decoded request file into a list of evaluation requests.

    Accepted top-level forms:

    * a single request object (has a ``"workload"`` key);
    * a list of request objects;
    * a sweep object (has ``"workloads"`` plus ``"axes"``/``"machines"``);
    * an envelope ``{"requests": [...], "sweeps": [...]}`` combining both.
    """
    if isinstance(payload, Sequence) and not isinstance(payload, (str, bytes, Mapping)):
        return [EvalRequest.parse(item) for item in payload]
    if not isinstance(payload, Mapping):
        raise ValueError(f"cannot interpret request payload of type {type(payload).__name__}")
    if "requests" in payload or "sweeps" in payload:
        extra = sorted(set(payload) - {"requests", "sweeps", "schema_version"})
        if extra:
            raise ValueError(f"unknown request-envelope keys {extra}")
        requests = [EvalRequest.parse(item) for item in payload.get("requests", ())]
        for sweep in payload.get("sweeps", ()):
            requests.extend(SweepRequest.from_dict(sweep).expand())
        return requests
    if "workloads" in payload:
        return SweepRequest.from_dict(payload).expand()
    return [EvalRequest.parse(payload)]


def load_requests(text: str) -> list[EvalRequest]:
    """Parse a JSON request-file body into evaluation requests."""
    return parse_request_payload(json.loads(text))


def results_table(results: Sequence[EvalResult]):
    """Batch results as an :class:`~repro.runtime.result.ExperimentResult`.

    This is the bridge to the existing reporters: the ``repro-experiments
    eval`` subcommand renders the returned table through the same
    text/json/csv renderers the experiments use, and the full per-result
    payloads ride along in ``metadata["results"]`` so the JSON form stays
    lossless.
    """
    from repro.runtime.result import ExperimentResult

    def _scientific(value: float | None) -> str | None:
        return None if value is None else f"{value:.4e}"

    rows = tuple(
        (
            result.workload,
            result.request.workload.flags,
            result.machine,
            result.backend,
            result.instructions,
            result.cycles,
            result.cpi,
            _scientific(result.energy_joules),
            _scientific(result.edp),
        )
        for result in results
    )
    backends = sorted({result.backend for result in results})
    return ExperimentResult(
        experiment="eval",
        title=f"repro.api evaluation — {len(rows)} request(s)",
        headers=("workload", "flags", "machine", "backend", "instructions",
                 "cycles", "cpi", "energy (J)", "EDP (J*s)"),
        rows=rows,
        metadata={
            "requests": len(rows),
            "backends": backends,
            "results": [result.to_dict() for result in results],
        },
    )
