"""Geometry-grouped execution planning for request batches.

``evaluate_many`` used to shard a batch request-by-request: every worker
resolved its own machines and recomputed every profiling pass its shard
touched, so a 192-point sweep sharded four ways paid for the same base
pass four times.  The planner regroups the batch before any work starts:

* requests are grouped by **trace identity** ``(workload name, compiler
  flags)`` — the unit that owns profiling passes — and, within a group,
  ordered by pass signature ``(front-end geometry, L2 geometry, predictor
  spec, mlp window)``, so the engine computes each unique pass exactly
  once per trace *across the whole batch* and in cache-friendly order;
* each group becomes one work item for :meth:`Session.map`; a trace the
  parent session already holds ships to the worker through the active
  data plane — a zero-copy shared-memory
  :class:`~repro.runtime.dataplane.SegmentHandle` the worker attaches, or
  raw column bytes (``array.tobytes``/``frombytes`` — see
  :meth:`~repro.trace.trace.Trace.to_payload`) on platforms without POSIX
  shared memory — instead of a pickled object graph, and cold traces are
  built by the owning worker, keeping cold batches as parallel as before;
* machines are resolved and labelled **once per unique spec** per group
  instead of once per request;
* for plain ``analytical`` requests the group is answered through the
  active :mod:`repro.accel` kernel backend's batched model evaluation
  when it offers one (the NumPy kernels do), falling back to the scalar
  backend call otherwise — both produce byte-identical results.

Groups larger than a fair share are split along pass-signature boundaries
when the batch has fewer groups than workers, so a single-workload sweep
still saturates the pool.

Everything is order-preserving: results are reassembled into request
order, so planned output is byte-identical to the unplanned path at any
job count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.api.backends import BACKENDS, get_backend
from repro.api.spec import EvalRequest, EvalResult, MachineSpec
from repro.machine import MachineConfig
from repro.obs.tracing import emit_span, span
from repro.runtime.dataplane import SegmentHandle, attach_trace
from repro.trace.trace import TRACE_SCHEMA_VERSION, Trace


def _pass_signature(machine: MachineConfig, request: EvalRequest) -> tuple:
    """Sort key grouping requests that share profiling passes."""
    line = machine.line_size
    return (
        # Front-end geometry (base pass).
        machine.l1i_size, machine.l1i_associativity,
        machine.l1d_size, machine.l1d_associativity, line, machine.page_size,
        # L2 geometry (L2 pass).
        machine.l2_size // (machine.l2_associativity * line), line,
        # Branch pass and miss-run memo key.
        machine.branch_predictor, request.mlp_window,
    )


@dataclass(frozen=True)
class PlannedGroup:
    """One work item: requests sharing a trace, in pass-signature order."""

    workload: str
    flags: str
    #: Trace schema the payload (if any) was packed with.
    trace_version: int
    #: Positions of ``requests`` in the original batch.
    indices: tuple[int, ...]
    requests: tuple[EvalRequest, ...]
    #: Machines resolved and labelled at planning time — (spec, config,
    #: label) triples — so workers do neither per group.
    machines: tuple = ()
    #: Trace transport: a shared-memory ``SegmentHandle``, a column-bytes
    #: payload dict, or ``None`` (the worker builds/loads the trace).
    payload: "SegmentHandle | dict | None" = None

    def with_payload(self, payload) -> "PlannedGroup":
        return PlannedGroup(self.workload, self.flags, self.trace_version,
                            self.indices, self.requests, self.machines,
                            payload)


def plan_requests(requests, *, jobs: int = 1,
                  machines: dict | None = None) -> list[PlannedGroup]:
    """Group a parsed batch into planned work items.

    ``machines`` is an optional shared resolution memo (spec -> config);
    passing the one built during validation avoids resolving every unique
    machine twice.
    """
    from repro.api.batch import _machine_label

    if machines is None:
        machines = {}
    labels: dict[MachineSpec, str] = {}
    by_trace: dict[tuple[str, str], list[int]] = {}
    for index, request in enumerate(requests):
        by_trace.setdefault(
            (request.workload.name, request.workload.flags), []
        ).append(index)

    groups: list[PlannedGroup] = []
    for (name, flags), indices in by_trace.items():
        def signature(index: int) -> tuple:
            request = requests[index]
            machine = machines.get(request.machine)
            if machine is None:
                machine = request.machine.resolve()
                machines[request.machine] = machine
            return _pass_signature(machine, request)

        ordered = sorted(indices, key=signature)
        chunks = _fair_chunks(ordered, signature, len(by_trace), jobs)
        for chunk in chunks:
            specs = {requests[i].machine: requests[i] for i in chunk}
            resolved = []
            for spec, request in specs.items():
                label = labels.get(spec)
                if label is None:
                    label = _machine_label(request, machines[spec])
                    labels[spec] = label
                resolved.append((spec, machines[spec], label))
            groups.append(PlannedGroup(
                workload=name, flags=flags,
                trace_version=TRACE_SCHEMA_VERSION,
                indices=tuple(chunk),
                requests=tuple(requests[i] for i in chunk),
                machines=tuple(resolved),
            ))
    return groups


def _fair_chunks(ordered, signature, group_count: int, jobs: int):
    """Split one group along signature boundaries when workers outnumber
    groups, so small batches of large sweeps still fill the pool."""
    if jobs <= group_count or len(ordered) <= 1:
        return [ordered]
    parts = min(-(-jobs // group_count), len(ordered))
    size = -(-len(ordered) // parts)
    chunks = []
    start = 0
    while start < len(ordered):
        end = min(start + size, len(ordered))
        # Extend to the signature boundary so one worker owns each pass.
        while end < len(ordered) and signature(ordered[end]) == signature(ordered[end - 1]):
            end += 1
        chunks.append(ordered[start:end])
        start = end
    return chunks


# ----------------------------------------------------------------------
# Group execution (module-level: process-pool unit).
# ----------------------------------------------------------------------
def _install_group_trace(session, group: PlannedGroup) -> None:
    """Adopt the group's shipped trace into the session (the attach stage).

    A persistent pool worker that already holds the workload from an
    earlier batch skips the transport entirely — neither the segment
    attach nor the payload deserialization is repeated.
    """
    if group.payload is None or session.has_workload(group.workload,
                                                     group.flags):
        return
    if isinstance(group.payload, SegmentHandle):
        if group.payload.schema_version != group.trace_version:
            raise ValueError("planned group carries a mismatched trace segment")
        trace = attach_trace(group.payload)
    else:
        if group.payload["schema_version"] != group.trace_version:
            raise ValueError("planned group carries a mismatched trace payload")
        trace = Trace.from_payload(group.payload)
    session.adopt_trace(group.workload, group.flags, trace)


def evaluate_group(session, group: PlannedGroup) -> list[EvalResult]:
    """Answer one planned group through a session (results in group order)."""
    results, _ = evaluate_group_timed(session, group)
    return results


def evaluate_group_timed(
    session, group: PlannedGroup
) -> tuple[list[EvalResult], dict[str, float]]:
    """:func:`evaluate_group` plus the per-stage timing breakdown.

    The returned mapping accounts the group's wall time to the data-plane
    stages ``attach`` (trace transport into this session), ``profile``
    (miss profiles + program profiles through the single-pass engine) and
    ``model`` (mechanistic-model evaluation; scalar backends fold their
    profiling in here).  This is the :meth:`Session.map` work unit the
    batch layer dispatches, so stage timings ride back with each group's
    results and are merged into the parent session.  When tracing is
    enabled the group and its stages become spans — children of whatever
    dispatched the group, across the process boundary.
    """
    with span("planner.group", workload=group.workload, flags=group.flags,
              requests=len(group.requests)):
        return _evaluate_group_body(session, group)


def _evaluate_group_body(
    session, group: PlannedGroup
) -> tuple[list[EvalResult], dict[str, float]]:
    from repro.api.batch import _machine_label

    stages: dict[str, float] = {}
    started = time.perf_counter()
    _install_group_trace(session, group)
    workload = session.workload(group.workload, group.flags)
    stages["attach"] = time.perf_counter() - started
    emit_span("planner.attach", stages["attach"], workload=group.workload)

    machines: dict[MachineSpec, MachineConfig] = {}
    labels: dict[MachineSpec, str] = {}
    for spec, machine, label in group.machines:
        machines[spec] = machine
        labels[spec] = label
    results: list[EvalResult | None] = [None] * len(group.requests)

    def resolved(request: EvalRequest) -> tuple[MachineConfig, str]:
        machine = machines.get(request.machine)
        if machine is None:
            machine = request.machine.resolve()
            machines[request.machine] = machine
        label = labels.get(request.machine)
        if label is None:
            label = _machine_label(request, machine)
            labels[request.machine] = label
        return machine, label

    # Fast path: plain analytical requests answered through the kernel
    # backend's batched model evaluation (when it provides one).
    batched: list[int] = []
    for position, request in enumerate(group.requests):
        try:
            canonical = BACKENDS.canonical(request.backend)
        except KeyError:
            canonical = None
        if canonical == "analytical" and not request.with_power:
            batched.append(position)

    if batched:
        from repro.accel import get_kernels

        started = time.perf_counter()
        program = session.program_profile(workload)
        pairs = [resolved(group.requests[position]) for position in batched]
        # Miss counts only depend on the memory/predictor side of the
        # configuration — width/depth/frequency variants share one
        # assembled profile, so a 192-point sweep assembles ~16.
        shared: dict[tuple, object] = {}
        profiles = []
        for (machine, _), position in zip(pairs, batched):
            mlp_window = group.requests[position].mlp_window
            key = (
                machine.l1i_size, machine.l1i_associativity,
                machine.l1d_size, machine.l1d_associativity,
                machine.line_size, machine.page_size, machine.tlb_entries,
                machine.l2_size, machine.l2_associativity,
                machine.branch_predictor, mlp_window,
            )
            profile = shared.get(key)
            if profile is None:
                profile = session.miss_profile(workload, machine,
                                               mlp_window=mlp_window)
                shared[key] = profile
            profiles.append(profile)
        stages["profile"] = time.perf_counter() - started
        emit_span("planner.profile", stages["profile"],
                  workload=group.workload, profiles=len(shared))
        started = time.perf_counter()
        predictions = get_kernels().predict_batch(
            program, profiles, [machine for machine, _ in pairs]
        )
        if predictions is None:
            batched = []
        else:
            for position, (machine, label), (cycles, cpi_stack) in zip(
                batched, pairs, predictions
            ):
                request = group.requests[position]
                results[position] = EvalResult(
                    request=request,
                    backend="analytical",
                    workload=workload.name,
                    machine=label,
                    instructions=program.instructions,
                    cycles=cycles,
                    seconds=cycles * machine.cycle_ns * 1e-9,
                    cpi_stack=cpi_stack,
                    energy_joules=None,
                )
        stages["model"] = time.perf_counter() - started
        emit_span("planner.model", stages["model"],
                  workload=group.workload, points=len(batched))

    remaining = [position for position in range(len(group.requests))
                 if results[position] is None]
    if remaining:
        started = time.perf_counter()
    for position in remaining:
        request = group.requests[position]
        backend = get_backend(request.backend)
        machine, label = resolved(request)
        point = backend.evaluate(
            session, workload, machine,
            with_power=request.with_power, mlp_window=request.mlp_window,
        )
        results[position] = EvalResult(
            request=request,
            backend=BACKENDS.canonical(request.backend),
            workload=workload.name,
            machine=label,
            instructions=point.instructions,
            cycles=point.cycles,
            seconds=point.execution_time_seconds,
            cpi_stack=point.cpi_stack,
            energy_joules=point.energy_joules,
        )
    if remaining:
        # Scalar backends interleave profiling with the model; account the
        # whole fallback to the model stage rather than guessing a split.
        elapsed = time.perf_counter() - started
        stages["model"] = stages.get("model", 0.0) + elapsed
        emit_span("planner.model", elapsed, workload=group.workload,
                  points=len(remaining))
    return results, stages
