"""Batch sweep grammar: parameter grids expanded into evaluation requests.

A :class:`SweepRequest` names a list of workloads, a base machine and a
grid of machine-parameter axes, and expands into the cross product of
:class:`~repro.api.spec.EvalRequest` objects.  Two grid forms exist:

* ``axes`` — a mapping from machine field to a list of values.  A key may
  couple several comma-separated fields (``"pipeline_stages,frequency_mhz"``)
  whose values are then tuples of matching arity, expressing correlated
  parameters (the paper couples pipeline depth and clock frequency);
* ``machines`` — an explicit list of :class:`~repro.api.spec.MachineSpec`
  entries, used when the grid is irregular or the caller wants to control
  the generated configuration names (this is how
  :meth:`repro.dse.space.DesignSpace.to_sweep` re-expresses the paper's
  Table 2 space without renaming its 192 points).

Expansion order is deterministic — workloads outermost, then grid points
in axis order, then backends — so batch output is reproducible
byte-for-byte regardless of the job count.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.api.spec import API_SCHEMA_VERSION, EvalRequest, MachineSpec, WorkloadSpec
from repro.machine import MachineConfig


def _freeze(value):
    """Tuples all the way down, so sweep requests stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class SweepRequest:
    """A parameter-grid batch of evaluations."""

    workloads: tuple[WorkloadSpec, ...]
    base: MachineSpec = field(default_factory=MachineSpec)
    #: ((axis key, (value, ...)), ...); an axis key may couple fields:
    #: ``"pipeline_stages,frequency_mhz"`` with pair-valued entries.
    axes: tuple[tuple[str, tuple], ...] = ()
    #: Explicit machine grid; mutually exclusive with ``axes``/``base``.
    machines: tuple[MachineSpec, ...] = ()
    backends: tuple[str, ...] = ("analytical",)
    with_power: bool = False
    mlp_window: int = 64

    @classmethod
    def make(cls, workloads: Sequence, *, base=None, axes: Mapping | None = None,
             machines: Sequence = (), backends: Sequence[str] = ("analytical",),
             with_power: bool = False, mlp_window: int = 64) -> "SweepRequest":
        """Build a sweep from friendly inputs (names, dicts, lists)."""
        return cls(
            workloads=tuple(WorkloadSpec.parse(w) for w in workloads),
            base=MachineSpec.parse(base if base is not None else {}),
            axes=tuple((key, _freeze(values))
                       for key, values in (axes or {}).items()),
            machines=tuple(MachineSpec.parse(m) for m in machines),
            backends=tuple(backends),
            with_power=with_power,
            mlp_window=mlp_window,
        )

    # ------------------------------------------------------------------
    # Grid expansion.
    # ------------------------------------------------------------------
    def machine_grid(self) -> list[MachineSpec]:
        """The machine specs this sweep covers, in deterministic order."""
        if self.machines:
            if self.axes or self.base != MachineSpec():
                raise ValueError(
                    "a sweep takes either an explicit 'machines' list or a "
                    "base 'machine' plus an 'axes' grid, not both"
                )
            return list(self.machines)
        if not self.axes:
            return [self.base]
        axis_fields = [tuple(key.split(",")) for key, _ in self.axes]
        axis_values = [values for _, values in self.axes]
        grid = []
        for combo in itertools.product(*axis_values):
            overrides: dict[str, object] = {}
            for fields_group, value in zip(axis_fields, combo):
                if len(fields_group) == 1:
                    overrides[fields_group[0]] = value
                else:
                    if not isinstance(value, (tuple, list)) or len(value) != len(fields_group):
                        raise ValueError(
                            f"coupled axis {','.join(fields_group)!r} needs "
                            f"{len(fields_group)}-tuples, got {value!r}"
                        )
                    overrides.update(zip(fields_group, value))
            if "name" not in overrides:
                overrides["name"] = ",".join(
                    f"{field_name}={value}"
                    for field_name, value in overrides.items()
                )
            grid.append(self.base.with_overrides(**overrides))
        return grid

    def configurations(self) -> list[MachineConfig]:
        """Resolved :class:`MachineConfig` objects of the grid."""
        return [spec.resolve() for spec in self.machine_grid()]

    def expand(self) -> list[EvalRequest]:
        """The full request batch: workloads × machine grid × backends."""
        grid = self.machine_grid()
        return [
            EvalRequest(
                workload=workload,
                machine=machine,
                backend=backend,
                with_power=self.with_power,
                mlp_window=self.mlp_window,
            )
            for workload in self.workloads
            for machine in grid
            for backend in self.backends
        ]

    def __len__(self) -> int:
        return len(self.workloads) * len(self.machine_grid()) * len(self.backends)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {
            "schema_version": API_SCHEMA_VERSION,
            "workloads": [workload.to_dict() for workload in self.workloads],
            "machine": self.base.to_dict(),
            "backends": list(self.backends),
            "with_power": self.with_power,
            "mlp_window": self.mlp_window,
        }
        if self.machines:
            payload["machines"] = [machine.to_dict() for machine in self.machines]
        else:
            payload["axes"] = {
                key: [list(v) if isinstance(v, tuple) else v for v in values]
                for key, values in self.axes
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepRequest":
        allowed = {"schema_version", "workloads", "machine", "axes",
                   "machines", "backends", "with_power", "mlp_window"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(f"unknown sweep keys {unknown}; allowed: {sorted(allowed)}")
        if "workloads" not in payload:
            raise ValueError("sweep request needs a 'workloads' list")
        return cls.make(
            payload["workloads"],
            base=payload.get("machine", {}),
            axes=payload.get("axes"),
            machines=payload.get("machines", ()),
            backends=tuple(payload.get("backends", ("analytical",))),
            with_power=bool(payload.get("with_power", False)),
            mlp_window=int(payload.get("mlp_window", 64)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepRequest":
        return cls.from_dict(json.loads(text))
