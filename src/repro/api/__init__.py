"""``repro.api`` — the public evaluation facade.

One entry point for "evaluate workload W on machine M with backend B",
declaratively and batchable::

    from repro import api

    request = api.EvalRequest(
        workload=api.WorkloadSpec("sha"),
        machine=api.MachineSpec.make("paper_default", l2_size="1MB",
                                     branch_predictor="hybrid_3.5kb"),
        backend="analytical",
    )
    result = api.evaluate(request)
    print(result.cpi, result.cpi_stack)

    # The identical question, cycle-accurately:
    detailed = api.evaluate(api.EvalRequest(request.workload, request.machine,
                                            backend="simulator"))

Batches shard through the session scheduler and stay byte-identical to a
serial run::

    results = api.evaluate_many(sweep.expand(), jobs=4, cache_dir=".cache")

Requests, results and sweeps round-trip losslessly through JSON, which is
what the ``repro-experiments eval`` subcommand consumes.  Backends,
machine presets, branch predictors and workloads are all string-addressed
registries with ``register()`` decorators, so new components plug in
without touching the core modules.
"""

from repro.api.backends import (
    BACKENDS,
    BackendCapabilities,
    EvalBackend,
    PointEvaluation,
    backend_names,
    capability_matrix,
    get_backend,
    register_backend,
)
from repro.api.batch import (
    evaluate,
    evaluate_many,
    load_requests,
    parse_request_payload,
    validate_requests,
)
from repro.api.spec import (
    API_SCHEMA_VERSION,
    EvalRequest,
    EvalResult,
    MachineSpec,
    WorkloadSpec,
)
from repro.api.sweep import SweepRequest

__all__ = [
    "API_SCHEMA_VERSION",
    "BACKENDS",
    "BackendCapabilities",
    "EvalBackend",
    "EvalRequest",
    "EvalResult",
    "MachineSpec",
    "PointEvaluation",
    "SweepRequest",
    "WorkloadSpec",
    "backend_names",
    "capability_matrix",
    "evaluate",
    "evaluate_many",
    "get_backend",
    "load_requests",
    "parse_request_payload",
    "register_backend",
    "validate_requests",
]
