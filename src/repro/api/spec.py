"""Typed, JSON-round-trippable request and result objects.

The schema is the public contract of :mod:`repro.api`:

* :class:`WorkloadSpec` — a workload by registry name plus compiler-flag
  treatment (``"O3"``, ``"nosched"``, ``"unroll"``);
* :class:`MachineSpec` — a machine as a named preset plus keyword
  overrides, e.g. ``{"preset": "paper_default", "l2_size": "1MB",
  "branch_predictor": "hybrid_3.5kb"}``;
* :class:`EvalRequest` — "evaluate workload W on machine M with backend B";
* :class:`EvalResult` — the answer, carrying the predicted/simulated cycle
  count, the CPI stack (when the backend produces one) and optional energy.

Every object round-trips losslessly through ``to_dict``/``from_dict`` (and
JSON), which is what makes evaluations addressable from request files, the
CLI and remote callers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.machine import MachineConfig, machine_from_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.runtime.session import Session
    from repro.workloads.base import Workload

#: Version stamped into every serialized request/result.
API_SCHEMA_VERSION = 1


def _reject_unknown_keys(payload: Mapping, allowed: set[str], what: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ValueError(f"unknown {what} keys {unknown}; allowed: {sorted(allowed)}")


# ----------------------------------------------------------------------
# Workload specification.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by name plus its compiler-flag treatment."""

    name: str
    flags: str = "O3"

    @classmethod
    def parse(cls, value: "WorkloadSpec | str | Mapping") -> "WorkloadSpec":
        """Coerce a name string or mapping into a :class:`WorkloadSpec`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            _reject_unknown_keys(value, {"name", "flags"}, "workload spec")
            return cls(name=value["name"], flags=value.get("flags", "O3"))
        raise TypeError(f"cannot parse workload spec from {value!r}")

    def resolve(self, session: "Session") -> "Workload":
        """The (trace-ready) workload this spec names, via the session."""
        return session.workload(self.name, self.flags)

    def to_dict(self) -> dict:
        return {"name": self.name, "flags": self.flags}


# ----------------------------------------------------------------------
# Machine specification.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineSpec:
    """A machine as a named preset plus keyword overrides.

    Overrides are stored as a sorted tuple of ``(field, value)`` pairs so
    specs are hashable and equality is order-insensitive; byte-count fields
    accept size strings (``"1MB"``), which are preserved verbatim through
    serialization and parsed only at :meth:`resolve` time.
    """

    preset: str = "paper_default"
    items: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, preset: str = "paper_default", **overrides) -> "MachineSpec":
        return cls(preset=preset, items=tuple(sorted(overrides.items())))

    @classmethod
    def parse(cls, value: "MachineSpec | MachineConfig | str | Mapping") -> "MachineSpec":
        """Coerce a preset name, override mapping or config into a spec."""
        if isinstance(value, cls):
            return value
        if isinstance(value, MachineConfig):
            return cls.from_machine(value)
        if isinstance(value, str):
            return cls(preset=value)
        if isinstance(value, Mapping):
            payload = dict(value)
            preset = payload.pop("preset", "paper_default")
            return cls(preset=preset, items=tuple(sorted(payload.items())))
        raise TypeError(f"cannot parse machine spec from {value!r}")

    @classmethod
    def from_machine(cls, machine: MachineConfig,
                     preset: str = "paper_default") -> "MachineSpec":
        """Express an explicit config as ``preset`` + minimal overrides.

        The overrides are exactly the fields on which ``machine`` differs
        from the preset (the display ``name`` included), so
        ``spec.resolve()`` reproduces ``machine`` bit-for-bit.
        """
        from dataclasses import fields as dataclass_fields

        base = machine_from_spec(preset)
        overrides = {
            f.name: getattr(machine, f.name)
            for f in dataclass_fields(MachineConfig)
            if getattr(machine, f.name) != getattr(base, f.name)
        }
        return cls.make(preset, **overrides)

    @property
    def overrides(self) -> dict:
        return dict(self.items)

    def with_overrides(self, **overrides) -> "MachineSpec":
        """A copy with additional overrides layered on top (sweep expansion)."""
        merged = {**self.overrides, **overrides}
        return MachineSpec.make(self.preset, **merged)

    def resolve(self) -> MachineConfig:
        """Materialise the :class:`MachineConfig` this spec describes."""
        return machine_from_spec({"preset": self.preset, **self.overrides})

    def to_dict(self) -> dict:
        return {"preset": self.preset, **self.overrides}


# ----------------------------------------------------------------------
# Evaluation request.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvalRequest:
    """One evaluation: workload W on machine M answered by backend B."""

    workload: WorkloadSpec
    machine: MachineSpec = field(default_factory=MachineSpec)
    backend: str = "analytical"
    with_power: bool = False
    mlp_window: int = 64
    #: Opaque caller correlation tag, carried through to the result.
    tag: str = ""

    @classmethod
    def parse(cls, value: "EvalRequest | Mapping") -> "EvalRequest":
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot parse evaluation request from {value!r}")

    def to_dict(self) -> dict:
        return {
            "schema_version": API_SCHEMA_VERSION,
            "workload": self.workload.to_dict(),
            "machine": self.machine.to_dict(),
            "backend": self.backend,
            "with_power": self.with_power,
            "mlp_window": self.mlp_window,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EvalRequest":
        _reject_unknown_keys(
            payload,
            {"schema_version", "workload", "machine", "backend",
             "with_power", "mlp_window", "tag"},
            "evaluation request",
        )
        if "workload" not in payload:
            raise ValueError("evaluation request needs a 'workload' entry")
        return cls(
            workload=WorkloadSpec.parse(payload["workload"]),
            machine=MachineSpec.parse(payload.get("machine", {})),
            backend=payload.get("backend", "analytical"),
            with_power=bool(payload.get("with_power", False)),
            mlp_window=int(payload.get("mlp_window", 64)),
            tag=payload.get("tag", ""),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EvalRequest":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Evaluation result.
# ----------------------------------------------------------------------
@dataclass
class EvalResult:
    """The backend's answer to one :class:`EvalRequest`.

    ``cycles`` is the predicted (analytical backends) or measured
    (simulator) cycle count; ``cpi_stack`` maps CPI-component names to
    cycle counts for backends that decompose their prediction, and is
    ``None`` for the cycle-accurate simulator.  ``energy_joules`` is
    ``None`` unless the request asked for power.  ``sampling`` carries the
    interval-sampling metadata (plan geometry, fraction profiled,
    per-metric estimated relative errors) when the result came from a
    sampled evaluation of a chunked trace, and is ``None`` for exact
    evaluations.

    ``error`` is the structured per-item failure channel: ``None`` on
    every successful evaluation, a human-readable message on a unit that
    was quarantined or failed while the rest of its batch succeeded (see
    :func:`repro.api.batch.evaluate_many`).  A failed result carries
    zeroed metrics; check ``error`` before consuming them.
    """

    request: EvalRequest
    backend: str
    workload: str
    machine: str
    instructions: int
    cycles: float
    seconds: float
    cpi_stack: dict[str, float] | None = None
    energy_joules: float | None = None
    sampling: dict | None = None
    schema_version: int = API_SCHEMA_VERSION
    error: str | None = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def edp(self) -> float | None:
        """Energy-delay product in joule-seconds (``None`` without power)."""
        if self.energy_joules is None:
            return None
        return self.energy_joules * self.seconds

    # ------------------------------------------------------------------
    # Metric paths.
    # ------------------------------------------------------------------
    def _machine_config(self):
        """The resolved machine config, memoized per result."""
        machine = getattr(self, "_resolved_machine", None)
        if machine is None:
            machine = self.request.machine.resolve()
            object.__setattr__(self, "_resolved_machine", machine)
        return machine

    def metric_paths(self) -> list[str]:
        """Every metric path :meth:`metric` answers for *this* result.

        The stable vocabulary shared by search objectives, constraints and
        reporters: scalar result metrics (``"cpi"``, ``"cycles"``, ...),
        energy/EDP when the evaluation carried power, the CPI-stack
        components the backend produced (``"cpi_stack.base"``), and the
        machine's own parameters (``"machine.l2_size"``, plus the
        ``"frequency"``/``"area_proxy"`` shorthands).
        """
        from dataclasses import fields as dataclass_fields

        machine = self._machine_config()
        paths = ["cpi", "ipc", "cycles", "instructions", "seconds",
                 "frequency", "area_proxy"]
        if self.energy_joules is not None:
            paths += ["energy", "energy.total", "edp"]
        if self.cpi_stack:
            paths += [f"cpi_stack.{name}" for name in self.cpi_stack]
        # Only numeric machine parameters are metrics (branch_predictor is
        # a label — constrain it with ``branch_predictor==...`` instead).
        paths += [
            f"machine.{f.name}" for f in dataclass_fields(type(machine))
            if f.name != "name"
            and isinstance(getattr(machine, f.name), (int, float))
            and not isinstance(getattr(machine, f.name), bool)
        ]
        paths += ["machine.area_proxy", "machine.frontend_depth"]
        return paths

    def metric(self, path: str) -> float:
        """Look up one scalar metric by its stable path name.

        Unknown paths — and paths this result cannot answer, like
        ``"edp"`` on an evaluation run without power — raise a
        :class:`KeyError` listing every valid path, so objectives,
        constraints and reporters share one clear failure mode instead of
        ad-hoc attribute digging.
        """
        from repro.machine import area_proxy

        scalars = {
            "cpi": lambda: self.cpi,
            "ipc": lambda: self.ipc,
            "cycles": lambda: float(self.cycles),
            "instructions": lambda: float(self.instructions),
            "seconds": lambda: self.seconds,
            "frequency": lambda: float(self._machine_config().frequency_mhz),
            "area_proxy": lambda: area_proxy(self._machine_config()),
        }
        if path in scalars:
            return scalars[path]()
        if path in ("energy", "energy.total", "edp"):
            if self.energy_joules is None:
                raise KeyError(
                    f"metric {path!r} needs power data; re-evaluate with "
                    f"with_power=True (valid paths here: "
                    f"{', '.join(self.metric_paths())})"
                )
            return self.energy_joules if path != "edp" else self.edp
        if path.startswith("cpi_stack."):
            component = path[len("cpi_stack."):]
            if self.cpi_stack and component in self.cpi_stack:
                return float(self.cpi_stack[component])
            known = sorted(self.cpi_stack) if self.cpi_stack else []
            raise KeyError(
                f"unknown CPI-stack component {component!r}; this result "
                f"has: {', '.join(known) or '<none>'}"
            )
        if path.startswith("machine."):
            field_name = path[len("machine."):]
            machine = self._machine_config()
            if field_name == "area_proxy":
                return area_proxy(machine)
            value = getattr(machine, field_name, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        raise KeyError(
            f"unknown metric path {path!r}; valid paths: "
            f"{', '.join(self.metric_paths())}"
        )

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "request": self.request.to_dict(),
            "backend": self.backend,
            "workload": self.workload,
            "machine": self.machine,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "cpi_stack": self.cpi_stack,
            "energy_joules": self.energy_joules,
            "sampling": self.sampling,
        }
        # Only failed results carry the key: success payloads stay
        # byte-identical to every earlier schema generation.
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EvalResult":
        return cls(
            request=EvalRequest.from_dict(payload["request"]),
            backend=payload["backend"],
            workload=payload["workload"],
            machine=payload["machine"],
            instructions=payload["instructions"],
            cycles=payload["cycles"],
            seconds=payload["seconds"],
            cpi_stack=payload.get("cpi_stack"),
            energy_joules=payload.get("energy_joules"),
            sampling=payload.get("sampling"),
            schema_version=payload.get("schema_version", API_SCHEMA_VERSION),
            error=payload.get("error"),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EvalResult":
        return cls.from_dict(json.loads(text))
