"""Pluggable evaluation backends behind one protocol.

A backend answers "how long does workload W take on machine M" from
already-resolved objects (a :class:`~repro.workloads.base.Workload` and a
:class:`~repro.machine.MachineConfig`), drawing every profile through the
shared :class:`~repro.runtime.session.Session` so repeated questions hit
the memoized (and, with a cache directory, persisted) state.

Three estimators ship by default, unified for the first time behind the
same call:

* ``analytical`` — the mechanistic model fed by the single-pass
  stack-distance engine (fast path: one trace walk per cache geometry);
* ``analytical_exact`` — the same model fed by a full trace replay
  through the cache hierarchy (the engine's cross-check fallback);
* ``simulator`` — the cycle-accurate in-order pipeline.

Backends register with :func:`register_backend` and are addressable by
string from :class:`~repro.api.spec.EvalRequest`, so third-party
estimators (a different core model, a learned predictor, an RPC proxy)
plug in without touching this module.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.machine import MachineConfig
from repro.registry import Registry
from repro.runtime.session import Session
from repro.workloads.base import Workload


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can answer; consumed by callers and the docs matrix."""

    #: Produces a per-component CPI decomposition.
    cpi_stack: bool = False
    #: Cycles come from cycle-accurate simulation, not a model.
    cycle_accurate: bool = False
    #: Miss events come from exact replay rather than stack-distance math.
    exact_miss_events: bool = False
    #: Honours ``with_power`` by attaching the power model.
    power: bool = True

    def to_dict(self) -> dict:
        return {
            "cpi_stack": self.cpi_stack,
            "cycle_accurate": self.cycle_accurate,
            "exact_miss_events": self.exact_miss_events,
            "power": self.power,
        }


@dataclass
class PointEvaluation:
    """In-process outcome of one backend call (pre-serialization).

    This is what :class:`~repro.dse.explorer.DesignSpaceExplorer` consumes
    directly; the :mod:`repro.api.batch` facade flattens it into the
    JSON-round-trippable :class:`~repro.api.spec.EvalResult`.
    """

    machine: MachineConfig
    instructions: int
    cycles: float
    #: CPI component name -> cycles (None for cycle-accurate backends).
    cpi_stack: dict[str, float] | None = None
    energy_joules: float | None = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def execution_time_seconds(self) -> float:
        return self.cycles * self.machine.cycle_ns * 1e-9

    @property
    def edp(self) -> float | None:
        if self.energy_joules is None:
            return None
        return self.energy_joules * self.execution_time_seconds


#: Registry of backend *instances* (backends are stateless; all state lives
#: in the session passed to every call).
BACKENDS = Registry("evaluation backend")


def register_backend(name: str, *, aliases: tuple[str, ...] = ()):
    """Class decorator: instantiate and register an :class:`EvalBackend`."""

    def adder(cls):
        BACKENDS.register(name, aliases=aliases)(cls())
        return cls

    return adder


def get_backend(name: str) -> "EvalBackend":
    """The backend instance registered under ``name`` (or an alias)."""
    return BACKENDS.get(name)


def backend_names() -> list[str]:
    return BACKENDS.names()


def capability_matrix() -> list[tuple[str, BackendCapabilities]]:
    """(name, capabilities) for every registered backend, sorted by name."""
    return [(name, backend.capabilities) for name, backend in BACKENDS.items()]


class EvalBackend(abc.ABC):
    """Protocol every evaluation backend implements."""

    name: str = "backend"
    capabilities: BackendCapabilities = BackendCapabilities()

    @abc.abstractmethod
    def evaluate(self, session: Session, workload: Workload,
                 machine: MachineConfig, *, with_power: bool = False,
                 mlp_window: int = 64) -> PointEvaluation:
        """Answer one (workload, machine) question through the session."""


class _MechanisticBackend(EvalBackend):
    """Shared body of the two analytical backends (exact flag differs)."""

    exact = False

    def evaluate(self, session: Session, workload: Workload,
                 machine: MachineConfig, *, with_power: bool = False,
                 mlp_window: int = 64) -> PointEvaluation:
        from repro.core.model import InOrderMechanisticModel
        from repro.power.model import PowerModel

        program = session.program_profile(workload)
        misses = session.miss_profile(workload, machine,
                                      mlp_window=mlp_window, exact=self.exact)
        model = InOrderMechanisticModel(machine).predict(program, misses)
        energy = None
        if with_power:
            energy = PowerModel(machine).energy(program, misses, model.cycles).total
        return PointEvaluation(
            machine=machine,
            instructions=model.instructions,
            cycles=model.cycles,
            cpi_stack={component.value: cycles
                       for component, cycles in model.stack.cycles.items()},
            energy_joules=energy,
        )


@register_backend("analytical", aliases=("model",))
class AnalyticalBackend(_MechanisticBackend):
    """Mechanistic model over single-pass stack-distance histograms."""

    name = "analytical"
    capabilities = BackendCapabilities(cpi_stack=True)
    exact = False


@register_backend("analytical_exact", aliases=("exact",))
class AnalyticalExactBackend(_MechanisticBackend):
    """Mechanistic model over an exact cache/branch replay (fallback path)."""

    name = "analytical_exact"
    capabilities = BackendCapabilities(cpi_stack=True, exact_miss_events=True)
    exact = True


@register_backend("simulator", aliases=("detailed",))
class SimulatorBackend(EvalBackend):
    """Cycle-accurate in-order pipeline simulation (the reference)."""

    name = "simulator"
    capabilities = BackendCapabilities(cycle_accurate=True, exact_miss_events=True)

    def evaluate(self, session: Session, workload: Workload,
                 machine: MachineConfig, *, with_power: bool = False,
                 mlp_window: int = 64) -> PointEvaluation:
        from repro.pipeline.inorder import InOrderPipeline
        from repro.power.model import PowerModel

        simulated = InOrderPipeline(machine).run(workload.trace())
        energy = None
        if with_power:
            # Energy uses the same profile-driven activity counts as the
            # analytical estimate, scaled by the simulated cycle count —
            # identical to the paper's detailed-EDP procedure.
            program = session.program_profile(workload)
            misses = session.miss_profile(workload, machine, mlp_window=mlp_window)
            energy = PowerModel(machine).energy(program, misses, simulated.cycles).total
        return PointEvaluation(
            machine=machine,
            instructions=simulated.instructions,
            cycles=float(simulated.cycles),
            cpi_stack=None,
            energy_joules=energy,
        )
