"""Figure 4: CPI stacks as a function of superscalar width (W = 1..4).

The paper contrasts three benchmarks: ``sha`` scales well with width (plenty
of ILP), ``dijkstra`` barely benefits beyond 2-wide because the shrinking base
component is offset by a growing dependency component, and ``tiffdither`` sits
in between.  The detailed-simulation CPI is shown as a reference line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import InOrderMechanisticModel
from repro.experiments.common import FIGURE4_BENCHMARKS, default_machine, ensure_session
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.runtime import ExperimentResult, Session, experiment


@dataclass
class WidthPoint:
    benchmark: str
    width: int
    stack: CPIStack
    simulated_cpi: float


@dataclass
class Figure4Result:
    machine: MachineConfig
    widths: tuple[int, ...]
    points: list[WidthPoint]

    def for_benchmark(self, name: str) -> list[WidthPoint]:
        return [point for point in self.points if point.benchmark == name]


def _width_sweep(session: Session, item) -> list[WidthPoint]:
    """All width points of one benchmark (a parallel work unit)."""
    name, widths, base_machine = item
    workload = session.workload(name)
    program = session.program_profile(workload)
    points = []
    for width in widths:
        configured = base_machine.with_(width=width, name=f"W={width}")
        misses = session.miss_profile(workload, configured)
        model = InOrderMechanisticModel(configured).predict(program, misses)
        simulated = InOrderPipeline(configured).run(workload.trace())
        points.append(
            WidthPoint(
                benchmark=name,
                width=width,
                stack=model.stack,
                simulated_cpi=simulated.cpi,
            )
        )
    return points


def run(benchmarks: tuple[str, ...] = FIGURE4_BENCHMARKS,
        widths: tuple[int, ...] = (1, 2, 3, 4),
        machine: MachineConfig | None = None,
        session: Session | None = None) -> Figure4Result:
    session = ensure_session(session)
    base_machine = machine if machine is not None else default_machine()
    sweeps = session.map(
        _width_sweep, [(name, tuple(widths), base_machine) for name in benchmarks]
    )
    points = [point for sweep in sweeps for point in sweep]
    return Figure4Result(machine=base_machine, widths=tuple(widths), points=points)


def to_experiment_result(result: Figure4Result) -> ExperimentResult:
    # Collect every stack component that shows up so the table has stable columns.
    labels: list[str] = []
    for point in result.points:
        for label in point.stack.grouped():
            if label not in labels:
                labels.append(label)
    rows = []
    for point in result.points:
        grouped = point.stack.grouped()
        rows.append(
            tuple([f"{point.benchmark} W={point.width}"]
                  + [grouped.get(label, 0.0) for label in labels]
                  + [point.stack.cpi, point.simulated_cpi])
        )
    return ExperimentResult(
        experiment="figure4",
        title="Figure 4 — CPI stacks vs superscalar width",
        headers=tuple(["configuration"] + labels + ["model CPI", "detailed CPI"]),
        rows=tuple(rows),
        metadata={
            "benchmarks": sorted({point.benchmark for point in result.points}),
            "widths": list(result.widths),
        },
    )


def format_result(result: Figure4Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure4",
    title="Figure 4 — CPI stacks vs superscalar width",
    options=("benchmarks", "widths"),
    smoke={"benchmarks": ("sha", "dijkstra"), "widths": (1, 4)},
)
def figure4_experiment(session: Session,
                       benchmarks: tuple[str, ...] = FIGURE4_BENCHMARKS,
                       widths: tuple[int, ...] = (1, 2, 3, 4)) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, widths=widths,
                                    session=session))
