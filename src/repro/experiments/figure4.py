"""Figure 4: CPI stacks as a function of superscalar width (W = 1..4).

The paper contrasts three benchmarks: ``sha`` scales well with width (plenty
of ILP), ``dijkstra`` barely benefits beyond 2-wide because the shrinking base
component is offset by a growing dependency component, and ``tiffdither`` sits
in between.  The detailed-simulation CPI is shown as a reference line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import predict_workload
from repro.experiments.common import FIGURE4_BENCHMARKS, default_machine, format_table
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.profiler.program import profile_program
from repro.workloads import get_workload


@dataclass
class WidthPoint:
    benchmark: str
    width: int
    stack: CPIStack
    simulated_cpi: float


@dataclass
class Figure4Result:
    machine: MachineConfig
    widths: tuple[int, ...]
    points: list[WidthPoint]

    def for_benchmark(self, name: str) -> list[WidthPoint]:
        return [point for point in self.points if point.benchmark == name]


def run(benchmarks: tuple[str, ...] = FIGURE4_BENCHMARKS,
        widths: tuple[int, ...] = (1, 2, 3, 4),
        machine: MachineConfig | None = None) -> Figure4Result:
    base_machine = machine if machine is not None else default_machine()
    points: list[WidthPoint] = []
    for name in benchmarks:
        workload = get_workload(name)
        program = profile_program(workload.trace())
        for width in widths:
            configured = base_machine.with_(width=width, name=f"W={width}")
            model = predict_workload(workload, configured, program=program)
            simulated = InOrderPipeline(configured).run(workload.trace())
            points.append(
                WidthPoint(
                    benchmark=name,
                    width=width,
                    stack=model.stack,
                    simulated_cpi=simulated.cpi,
                )
            )
    return Figure4Result(machine=base_machine, widths=widths, points=points)


def format_result(result: Figure4Result) -> str:
    # Collect every stack component that shows up so the table has stable columns.
    labels: list[str] = []
    for point in result.points:
        for label in point.stack.grouped():
            if label not in labels:
                labels.append(label)
    rows = []
    for point in result.points:
        grouped = point.stack.grouped()
        rows.append(
            [f"{point.benchmark} W={point.width}"]
            + [grouped.get(label, 0.0) for label in labels]
            + [point.stack.cpi, point.simulated_cpi]
        )
    table = format_table(
        ["configuration"] + labels + ["model CPI", "detailed CPI"], rows
    )
    return "Figure 4 — CPI stacks vs superscalar width\n" + table


def main() -> Figure4Result:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
