"""Figure 7: in-order versus out-of-order CPI stacks.

The in-order stacks come from the paper's new model, the out-of-order stacks
from the interval model for out-of-order processors [Eyerman et al.].  The
expected observations (Section 6.1):

* dependency and multiply/divide components are large in order, hidden out of order;
* the per-misprediction cost is larger out of order (branch resolution time);
* the data L2 miss component shrinks out of order (memory-level parallelism);
* the instruction-side miss components are identical on both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import InOrderMechanisticModel
from repro.core.ooo import OutOfOrderIntervalModel
from repro.experiments.common import FIGURE7_BENCHMARKS, default_machine, format_table
from repro.machine import MachineConfig
from repro.pipeline.ooo import OutOfOrderPipeline
from repro.profiler.machine_stats import profile_machine
from repro.profiler.program import profile_program
from repro.workloads import get_workload


@dataclass
class InOrderVsOutOfOrder:
    benchmark: str
    in_order: CPIStack
    out_of_order: CPIStack
    out_of_order_simulated_cpi: float


@dataclass
class Figure7Result:
    machine: MachineConfig
    rows: list[InOrderVsOutOfOrder]


def run(benchmarks: tuple[str, ...] = FIGURE7_BENCHMARKS,
        machine: MachineConfig | None = None) -> Figure7Result:
    machine = machine if machine is not None else default_machine()
    rows: list[InOrderVsOutOfOrder] = []
    for name in benchmarks:
        workload = get_workload(name)
        trace = workload.trace()
        program = profile_program(trace)
        misses = profile_machine(trace, machine)
        in_order = InOrderMechanisticModel(machine).predict(program, misses)
        out_of_order = OutOfOrderIntervalModel(machine).predict(program, misses)
        ooo_simulated = OutOfOrderPipeline(machine).run(trace)
        rows.append(
            InOrderVsOutOfOrder(
                benchmark=name,
                in_order=in_order.stack,
                out_of_order=out_of_order.stack,
                out_of_order_simulated_cpi=ooo_simulated.cpi,
            )
        )
    return Figure7Result(machine=machine, rows=rows)


def format_result(result: Figure7Result) -> str:
    labels: list[str] = []
    for row in result.rows:
        for stack in (row.in_order, row.out_of_order):
            for label in stack.grouped():
                if label not in labels:
                    labels.append(label)
    table_rows = []
    for row in result.rows:
        for kind, stack in (("in-order", row.in_order), ("out-of-order", row.out_of_order)):
            grouped = stack.grouped()
            table_rows.append(
                [f"{row.benchmark} ({kind})"]
                + [grouped.get(label, 0.0) for label in labels]
                + [stack.cpi]
            )
    table = format_table(["configuration"] + labels + ["CPI"], table_rows)
    return (
        "Figure 7 — in-order vs out-of-order CPI stacks "
        f"(both {result.machine.width}-wide)\n" + table
    )


def main() -> Figure7Result:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
