"""Figure 7: in-order versus out-of-order CPI stacks.

The in-order stacks come from the paper's new model, the out-of-order stacks
from the interval model for out-of-order processors [Eyerman et al.].  The
expected observations (Section 6.1):

* dependency and multiply/divide components are large in order, hidden out of order;
* the per-misprediction cost is larger out of order (branch resolution time);
* the data L2 miss component shrinks out of order (memory-level parallelism);
* the instruction-side miss components are identical on both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import InOrderMechanisticModel
from repro.core.ooo import OutOfOrderIntervalModel
from repro.experiments.common import FIGURE7_BENCHMARKS, default_machine, ensure_session
from repro.machine import MachineConfig
from repro.pipeline.ooo import OutOfOrderPipeline
from repro.runtime import ExperimentResult, Session, experiment


@dataclass
class InOrderVsOutOfOrder:
    benchmark: str
    in_order: CPIStack
    out_of_order: CPIStack
    out_of_order_simulated_cpi: float


@dataclass
class Figure7Result:
    machine: MachineConfig
    rows: list[InOrderVsOutOfOrder]


def _stack_pair(session: Session, item) -> InOrderVsOutOfOrder:
    """Both models plus the OoO simulation for one benchmark (work unit)."""
    name, machine = item
    workload = session.workload(name)
    trace = workload.trace()
    program = session.program_profile(workload)
    misses = session.miss_profile(workload, machine)
    in_order = InOrderMechanisticModel(machine).predict(program, misses)
    out_of_order = OutOfOrderIntervalModel(machine).predict(program, misses)
    ooo_simulated = OutOfOrderPipeline(machine).run(trace)
    return InOrderVsOutOfOrder(
        benchmark=name,
        in_order=in_order.stack,
        out_of_order=out_of_order.stack,
        out_of_order_simulated_cpi=ooo_simulated.cpi,
    )


def run(benchmarks: tuple[str, ...] = FIGURE7_BENCHMARKS,
        machine: MachineConfig | None = None,
        session: Session | None = None) -> Figure7Result:
    session = ensure_session(session)
    machine = machine if machine is not None else default_machine()
    rows = session.map(_stack_pair, [(name, machine) for name in benchmarks])
    return Figure7Result(machine=machine, rows=rows)


def to_experiment_result(result: Figure7Result) -> ExperimentResult:
    labels: list[str] = []
    for row in result.rows:
        for stack in (row.in_order, row.out_of_order):
            for label in stack.grouped():
                if label not in labels:
                    labels.append(label)
    table_rows = []
    for row in result.rows:
        for kind, stack in (("in-order", row.in_order),
                            ("out-of-order", row.out_of_order)):
            grouped = stack.grouped()
            table_rows.append(
                tuple([f"{row.benchmark} ({kind})"]
                      + [grouped.get(label, 0.0) for label in labels]
                      + [stack.cpi])
            )
    return ExperimentResult(
        experiment="figure7",
        title=(
            "Figure 7 — in-order vs out-of-order CPI stacks "
            f"(both {result.machine.width}-wide)"
        ),
        headers=tuple(["configuration"] + labels + ["CPI"]),
        rows=tuple(table_rows),
        metadata={"benchmarks": [row.benchmark for row in result.rows],
                  "machine": result.machine.describe()},
    )


def format_result(result: Figure7Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure7",
    title="Figure 7 — in-order vs out-of-order CPI stacks",
    options=("benchmarks",),
    smoke={"benchmarks": ("dijkstra", "tiff2bw")},
)
def figure7_experiment(session: Session,
                       benchmarks: tuple[str, ...] = FIGURE7_BENCHMARKS) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, session=session))
