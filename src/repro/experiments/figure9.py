"""Figure 9: energy-delay-product design-space exploration.

For each benchmark, every design point of Table 2 is evaluated with the
analytical model plus the power model (estimated EDP) and with the detailed
simulator plus the power model (detailed EDP).  The paper's finding: for most
benchmarks the model identifies the same EDP-optimal configuration as detailed
simulation, and when it does not the EDP difference is below a few percent.

The default invocation uses the reduced design space to keep the detailed
simulations affordable; pass ``full=True`` for the complete 192-point space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.explorer import DesignSpaceExplorer, EDPResult
from repro.dse.space import default_design_space, reduced_design_space
from repro.experiments.common import FIGURE9_BENCHMARKS, format_table
from repro.workloads import get_workload


@dataclass
class Figure9Row:
    benchmark: str
    model_best: str
    simulated_best: str
    same_choice: bool
    edp_gap: float
    exploration: EDPResult


@dataclass
class Figure9Result:
    rows: list[Figure9Row]
    design_points: int

    @property
    def matching_choices(self) -> int:
        return sum(1 for row in self.rows if row.same_choice)


def run(benchmarks: tuple[str, ...] = FIGURE9_BENCHMARKS,
        full: bool = False) -> Figure9Result:
    space = default_design_space() if full else reduced_design_space()
    explorer = DesignSpaceExplorer(space.configurations())
    rows: list[Figure9Row] = []
    for name in benchmarks:
        workload = get_workload(name)
        exploration = explorer.explore_edp(workload, simulate=True)
        model_best = exploration.best_by_model()
        simulated_best = exploration.best_by_simulation()
        rows.append(
            Figure9Row(
                benchmark=name,
                model_best=model_best.machine.name,
                simulated_best=simulated_best.machine.name,
                same_choice=model_best.machine.name == simulated_best.machine.name,
                edp_gap=exploration.model_choice_edp_gap(),
                exploration=exploration,
            )
        )
    return Figure9Result(rows=rows, design_points=len(space))


def format_result(result: Figure9Result) -> str:
    table_rows = [
        (
            row.benchmark,
            row.model_best,
            row.simulated_best,
            "yes" if row.same_choice else "no",
            f"{row.edp_gap:.2%}",
        )
        for row in result.rows
    ]
    table = format_table(
        ("benchmark", "model optimum", "detailed optimum", "same?", "EDP gap"),
        table_rows,
    )
    return (
        f"Figure 9 — EDP exploration over {result.design_points} design points\n"
        f"{table}\n"
        f"model picks the detailed optimum for {result.matching_choices}/"
        f"{len(result.rows)} benchmarks "
        "(paper: 12/19 exact, 6 more within 0.5% EDP, worst case <5%)"
    )


def main(full: bool = False) -> Figure9Result:
    result = run(full=full)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
