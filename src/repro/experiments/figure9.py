"""Figure 9: energy-delay-product design-space exploration.

For each benchmark, every design point of Table 2 is evaluated with the
analytical model plus the power model (estimated EDP) and with the detailed
simulator plus the power model (detailed EDP).  The paper's finding: for most
benchmarks the model identifies the same EDP-optimal configuration as detailed
simulation, and when it does not the EDP difference is below a few percent.

The default invocation uses the reduced design space to keep the detailed
simulations affordable; pass ``full=True`` for the complete 192-point space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.explorer import DesignSpaceExplorer, EDPResult
from repro.dse.space import default_design_space, reduced_design_space
from repro.experiments.common import FIGURE9_BENCHMARKS, ensure_session
from repro.runtime import ExperimentResult, Session, experiment


@dataclass
class Figure9Row:
    benchmark: str
    model_best: str
    simulated_best: str
    same_choice: bool
    edp_gap: float
    exploration: EDPResult


@dataclass
class Figure9Result:
    rows: list[Figure9Row]
    design_points: int

    @property
    def matching_choices(self) -> int:
        return sum(1 for row in self.rows if row.same_choice)


def _edp_exploration(session: Session, item) -> Figure9Row:
    """One benchmark's EDP sweep over the space (a parallel work unit)."""
    name, full = item
    space = default_design_space() if full else reduced_design_space()
    explorer = DesignSpaceExplorer.from_space(space, session=session)
    exploration = explorer.explore_edp(session.workload(name), simulate=True)
    model_best = exploration.best_by_model()
    simulated_best = exploration.best_by_simulation()
    return Figure9Row(
        benchmark=name,
        model_best=model_best.machine.name,
        simulated_best=simulated_best.machine.name,
        same_choice=model_best.machine.name == simulated_best.machine.name,
        edp_gap=exploration.model_choice_edp_gap(),
        exploration=exploration,
    )


def run(benchmarks: tuple[str, ...] = FIGURE9_BENCHMARKS,
        full: bool = False,
        session: Session | None = None) -> Figure9Result:
    session = ensure_session(session)
    space = default_design_space() if full else reduced_design_space()
    rows = session.map(_edp_exploration, [(name, full) for name in benchmarks])
    return Figure9Result(rows=rows, design_points=len(space))


def to_experiment_result(result: Figure9Result) -> ExperimentResult:
    return ExperimentResult(
        experiment="figure9",
        title=(
            f"Figure 9 — EDP exploration over {result.design_points} design points"
        ),
        headers=("benchmark", "model optimum", "detailed optimum", "same?", "EDP gap"),
        rows=tuple(
            (
                row.benchmark,
                row.model_best,
                row.simulated_best,
                row.same_choice,
                f"{row.edp_gap:.2%}",
            )
            for row in result.rows
        ),
        footnotes=(
            f"model picks the detailed optimum for {result.matching_choices}/"
            f"{len(result.rows)} benchmarks "
            "(paper: 12/19 exact, 6 more within 0.5% EDP, worst case <5%)",
        ),
        metadata={
            "design_points": result.design_points,
            "benchmarks": [row.benchmark for row in result.rows],
            "matching_choices": result.matching_choices,
        },
    )


def format_result(result: Figure9Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure9",
    title="Figure 9 — EDP design-space exploration",
    options=("full", "benchmarks"),
    smoke={"benchmarks": ("gsm_c",)},
)
def figure9_experiment(session: Session, full: bool = False,
                       benchmarks: tuple[str, ...] = FIGURE9_BENCHMARKS) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, full=full,
                                    session=session))
