"""Figure 5: cumulative distribution of the model error across the design space.

The paper validates the model on a 192-point design space (Table 2) crossed
with 19 benchmarks: 90% of the design points show an error below 6%, the
average error is 2.5% and the maximum 9.6%.  Because each point requires a
detailed simulation, the default invocation uses the reduced design space and
a representative benchmark subset; pass ``full=True`` to sweep everything the
paper did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.space import default_design_space, reduced_design_space
from repro.experiments.common import (
    FIGURE5_FAST_BENCHMARKS,
    ensure_session,
    mibench_names,
)
from repro.runtime import ExperimentResult, Session, experiment
from repro.validation.compare import (
    ValidationRow,
    ValidationSummary,
    cumulative_distribution,
    summarize,
)


@dataclass
class Figure5Result:
    summary: ValidationSummary
    cdf: list[tuple[float, float]]
    design_points: int
    benchmarks: tuple[str, ...]

    @property
    def fraction_below_6_percent(self) -> float:
        return self.summary.fraction_below(0.06)


def _space_validation(session: Session, item) -> tuple[ValidationRow, ...]:
    """All design-space points of one benchmark (a parallel work unit).

    The space is re-expressed through the :mod:`repro.api` sweep grammar:
    every (configuration, backend) question becomes a declarative
    :class:`~repro.api.spec.EvalRequest` answered by the batch facade, and
    the model/simulator answers are paired back into validation rows.
    """
    from repro.api import evaluate_many

    name, full = item
    space = default_design_space() if full else reduced_design_space()
    sweep = space.to_sweep((name,), backends=("analytical", "simulator"))
    results = evaluate_many(sweep.expand(), session=session)
    rows = []
    for predicted, simulated in zip(results[0::2], results[1::2]):
        rows.append(
            ValidationRow(
                name=predicted.workload,
                configuration=predicted.machine,
                predicted_cpi=predicted.cpi,
                simulated_cpi=simulated.cpi,
            )
        )
    return tuple(rows)


def run(full: bool = False, benchmarks: tuple[str, ...] | None = None,
        session: Session | None = None) -> Figure5Result:
    session = ensure_session(session)
    space = default_design_space() if full else reduced_design_space()
    if benchmarks is None:
        benchmarks = (
            tuple(mibench_names()) if full else FIGURE5_FAST_BENCHMARKS
        )
    per_benchmark = session.map(
        _space_validation, [(name, full) for name in benchmarks]
    )
    rows = [row for benchmark_rows in per_benchmark for row in benchmark_rows]
    summary = summarize(rows)
    errors = [row.absolute_error for row in summary.rows]
    return Figure5Result(
        summary=summary,
        cdf=cumulative_distribution(errors, points=21),
        design_points=len(space),
        benchmarks=tuple(benchmarks),
    )


def to_experiment_result(result: Figure5Result) -> ExperimentResult:
    summary = result.summary
    return ExperimentResult(
        experiment="figure5",
        title=(
            f"Figure 5 — error CDF over {result.design_points} design points x "
            f"{len(result.benchmarks)} benchmarks ({summary.count} points)"
        ),
        headers=("absolute error <=", "fraction of points"),
        rows=tuple(
            (f"{threshold:.1%}", f"{fraction:.0%}")
            for threshold, fraction in result.cdf
        ),
        footnotes=(
            f"average |error| = {summary.average_absolute_error:.1%}  "
            f"max |error| = {summary.maximum_absolute_error:.1%}  "
            f"fraction below 6% = {result.fraction_below_6_percent:.0%}  "
            "(paper: 2.5% average, 9.6% max, 90% below 6%)",
        ),
        metadata={
            "design_points": result.design_points,
            "benchmarks": list(result.benchmarks),
            "average_absolute_error": summary.average_absolute_error,
            "maximum_absolute_error": summary.maximum_absolute_error,
            "fraction_below_6_percent": result.fraction_below_6_percent,
        },
    )


def format_result(result: Figure5Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure5",
    title="Figure 5 — error CDF across the design space",
    options=("full", "benchmarks"),
    smoke={"benchmarks": ("sha", "qsort")},
)
def figure5_experiment(session: Session, full: bool = False,
                       benchmarks: tuple[str, ...] | None = None) -> ExperimentResult:
    return to_experiment_result(run(full=full, benchmarks=benchmarks,
                                    session=session))
