"""Figure 5: cumulative distribution of the model error across the design space.

The paper validates the model on a 192-point design space (Table 2) crossed
with 19 benchmarks: 90% of the design points show an error below 6%, the
average error is 2.5% and the maximum 9.6%.  Because each point requires a
detailed simulation, the default invocation uses the reduced design space and
a representative benchmark subset; pass ``full=True`` to sweep everything the
paper did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.space import default_design_space, reduced_design_space
from repro.experiments.common import FIGURE5_FAST_BENCHMARKS, format_table
from repro.validation.compare import ValidationSummary, cumulative_distribution
from repro.workloads import mibench_suite


@dataclass
class Figure5Result:
    summary: ValidationSummary
    cdf: list[tuple[float, float]]
    design_points: int
    benchmarks: tuple[str, ...]

    @property
    def fraction_below_6_percent(self) -> float:
        return self.summary.fraction_below(0.06)


def run(full: bool = False, benchmarks: tuple[str, ...] | None = None) -> Figure5Result:
    space = default_design_space() if full else reduced_design_space()
    if benchmarks is None:
        benchmarks = (
            tuple(sorted(w.name for w in mibench_suite()))
            if full
            else FIGURE5_FAST_BENCHMARKS
        )
    workloads = mibench_suite(list(benchmarks))
    explorer = DesignSpaceExplorer(space.configurations())
    summary = explorer.validate(workloads)
    errors = [row.absolute_error for row in summary.rows]
    return Figure5Result(
        summary=summary,
        cdf=cumulative_distribution(errors, points=21),
        design_points=len(space),
        benchmarks=tuple(benchmarks),
    )


def format_result(result: Figure5Result) -> str:
    rows = [(f"{threshold:.1%}", f"{fraction:.0%}") for threshold, fraction in result.cdf]
    table = format_table(("absolute error <=", "fraction of points"), rows)
    summary = result.summary
    return (
        f"Figure 5 — error CDF over {result.design_points} design points x "
        f"{len(result.benchmarks)} benchmarks ({summary.count} points)\n{table}\n"
        f"average |error| = {summary.average_absolute_error:.1%}  "
        f"max |error| = {summary.maximum_absolute_error:.1%}  "
        f"fraction below 6% = {result.fraction_below_6_percent:.0%}  "
        f"(paper: 2.5% average, 9.6% max, 90% below 6%)"
    )


def main(full: bool = False) -> Figure5Result:
    result = run(full=full)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
