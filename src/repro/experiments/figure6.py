"""Figure 6: model validation on memory-intensive SPEC CPU2006-like workloads.

The paper reports an average error of 4.1% and a maximum of 10.7% on its SPEC
CPU2006 subset, whose CPIs are much higher than MiBench's because of the
memory-bound behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import predict_workload
from repro.experiments.common import default_machine, format_table
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.validation.compare import ValidationRow, ValidationSummary, summarize
from repro.workloads import spec_suite


@dataclass
class Figure6Result:
    machine: MachineConfig
    rows: list[ValidationRow]
    summary: ValidationSummary


def run(benchmarks: list[str] | None = None,
        machine: MachineConfig | None = None) -> Figure6Result:
    machine = machine if machine is not None else default_machine()
    rows: list[ValidationRow] = []
    for workload in spec_suite(benchmarks):
        simulated = InOrderPipeline(machine).run(workload.trace())
        model = predict_workload(workload, machine)
        rows.append(
            ValidationRow(
                name=workload.name,
                configuration=machine.name or "default",
                predicted_cpi=model.cpi,
                simulated_cpi=simulated.cpi,
            )
        )
    return Figure6Result(machine=machine, rows=rows, summary=summarize(rows))


def format_result(result: Figure6Result) -> str:
    table_rows = [
        (row.name, row.predicted_cpi, row.simulated_cpi, f"{row.error:+.1%}")
        for row in result.rows
    ]
    table = format_table(("benchmark", "model CPI", "detailed CPI", "error"), table_rows)
    summary = result.summary
    return (
        "Figure 6 — SPEC-like memory-intensive workloads, model vs detailed simulation\n"
        f"{table}\n"
        f"average |error| = {summary.average_absolute_error:.1%}  "
        f"max |error| = {summary.maximum_absolute_error:.1%}  "
        f"(paper: 4.1% average, 10.7% max)"
    )


def main() -> Figure6Result:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
