"""Figure 6: model validation on memory-intensive SPEC CPU2006-like workloads.

The paper reports an average error of 4.1% and a maximum of 10.7% on its SPEC
CPU2006 subset, whose CPIs are much higher than MiBench's because of the
memory-bound behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import default_machine, ensure_session, spec_names
from repro.experiments.figure3 import _validation_row
from repro.machine import MachineConfig
from repro.runtime import ExperimentResult, Session, experiment
from repro.validation.compare import ValidationRow, ValidationSummary, summarize


@dataclass
class Figure6Result:
    machine: MachineConfig
    rows: list[ValidationRow]
    summary: ValidationSummary


def run(benchmarks: list[str] | None = None,
        machine: MachineConfig | None = None,
        session: Session | None = None) -> Figure6Result:
    session = ensure_session(session)
    machine = machine if machine is not None else default_machine()
    names = spec_names(benchmarks)
    rows = session.map(_validation_row, [(name, machine) for name in names])
    return Figure6Result(machine=machine, rows=rows, summary=summarize(rows))


def to_experiment_result(result: Figure6Result) -> ExperimentResult:
    summary = result.summary
    return ExperimentResult(
        experiment="figure6",
        title=(
            "Figure 6 — SPEC-like memory-intensive workloads, "
            "model vs detailed simulation"
        ),
        headers=("benchmark", "model CPI", "detailed CPI", "error"),
        rows=tuple(
            (row.name, row.predicted_cpi, row.simulated_cpi, f"{row.error:+.1%}")
            for row in result.rows
        ),
        footnotes=(
            f"average |error| = {summary.average_absolute_error:.1%}  "
            f"max |error| = {summary.maximum_absolute_error:.1%}  "
            "(paper: 4.1% average, 10.7% max)",
        ),
        metadata={
            "machine": result.machine.describe(),
            "benchmarks": [row.name for row in result.rows],
            "average_absolute_error": summary.average_absolute_error,
            "maximum_absolute_error": summary.maximum_absolute_error,
        },
    )


def format_result(result: Figure6Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure6",
    title="Figure 6 — model vs detailed simulation, SPEC-like suite",
    options=("benchmarks",),
    smoke={"benchmarks": ("mcf_like", "libquantum_like")},
)
def figure6_experiment(session: Session,
                       benchmarks: tuple[str, ...] | None = None) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, session=session))
