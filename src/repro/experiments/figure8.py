"""Figure 8: effect of compiler optimizations on in-order performance.

Normalized cycle stacks (CPI stack times dynamic instruction count, normalized
to the ``-O3`` variant) for three code-generation strategies: no instruction
scheduling, ``-O3``, and ``-O3`` with loop unrolling.  The paper's findings:
scheduling stretches dependency distances and shrinks the dependency
component; unrolling additionally reduces the dynamic instruction count and
the taken-branch penalty.

The three variants are first-class compiler flags of the session runtime
(``nosched`` / ``O3`` / ``unroll``), so their traces land in the artifact
cache like any other workload's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import InOrderMechanisticModel
from repro.experiments.common import FIGURE8_BENCHMARKS, default_machine, ensure_session
from repro.machine import MachineConfig
from repro.runtime import ExperimentResult, Session, experiment

#: Order in which the paper presents the variants.
VARIANT_ORDER = ("nosched", "O3", "unroll")


@dataclass
class CompilerVariantResult:
    benchmark: str
    variant: str
    instructions: int
    cycle_stack: CPIStack          # absolute cycles per component
    normalized_cycles: float        # total cycles / cycles of the O3 variant


@dataclass
class Figure8Result:
    machine: MachineConfig
    rows: list[CompilerVariantResult]

    def for_benchmark(self, name: str) -> list[CompilerVariantResult]:
        return [row for row in self.rows if row.benchmark == name]


def _variant_sweep(session: Session, item) -> list[CompilerVariantResult]:
    """All compiler variants of one benchmark (a parallel work unit)."""
    name, machine = item
    models = {}
    for variant in VARIANT_ORDER:
        workload = session.workload(name, flags=variant)
        program = session.program_profile(workload)
        misses = session.miss_profile(workload, machine)
        models[variant] = InOrderMechanisticModel(machine).predict(program, misses)
    o3_cycles = models["O3"].cycles
    return [
        CompilerVariantResult(
            benchmark=name,
            variant=variant,
            instructions=models[variant].instructions,
            cycle_stack=models[variant].stack,
            normalized_cycles=models[variant].cycles / o3_cycles,
        )
        for variant in VARIANT_ORDER
    ]


def run(benchmarks: tuple[str, ...] = FIGURE8_BENCHMARKS,
        machine: MachineConfig | None = None,
        session: Session | None = None) -> Figure8Result:
    session = ensure_session(session)
    machine = machine if machine is not None else default_machine()
    sweeps = session.map(_variant_sweep, [(name, machine) for name in benchmarks])
    rows = [row for sweep in sweeps for row in sweep]
    return Figure8Result(machine=machine, rows=rows)


def to_experiment_result(result: Figure8Result) -> ExperimentResult:
    labels: list[str] = []
    for row in result.rows:
        for label in row.cycle_stack.grouped():
            if label not in labels:
                labels.append(label)
    table_rows = []
    for row in result.rows:
        grouped = row.cycle_stack.grouped()
        # Report normalized cycle components: CPI * N / cycles(O3).
        o3_cycles = next(
            other.cycle_stack.total_cycles
            for other in result.rows
            if other.benchmark == row.benchmark and other.variant == "O3"
        )
        table_rows.append(
            tuple([f"{row.benchmark} {row.variant}", row.instructions]
                  + [grouped.get(label, 0.0) * row.instructions / o3_cycles
                     for label in labels]
                  + [row.normalized_cycles])
        )
    return ExperimentResult(
        experiment="figure8",
        title="Figure 8 — compiler optimizations, normalized cycle stacks",
        headers=tuple(["configuration", "N"] + labels + ["normalized cycles"]),
        rows=tuple(table_rows),
        metadata={
            "benchmarks": sorted({row.benchmark for row in result.rows}),
            "variants": list(VARIANT_ORDER),
        },
    )


def format_result(result: Figure8Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure8",
    title="Figure 8 — compiler optimizations, normalized cycle stacks",
    options=("benchmarks",),
    smoke={"benchmarks": ("sha", "tiffdither")},
)
def figure8_experiment(session: Session,
                       benchmarks: tuple[str, ...] = FIGURE8_BENCHMARKS) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, session=session))
