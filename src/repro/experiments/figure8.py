"""Figure 8: effect of compiler optimizations on in-order performance.

Normalized cycle stacks (CPI stack times dynamic instruction count, normalized
to the ``-O3`` variant) for three code-generation strategies: no instruction
scheduling, ``-O3``, and ``-O3`` with loop unrolling.  The paper's findings:
scheduling stretches dependency distances and shrinks the dependency
component; unrolling additionally reduces the dynamic instruction count and
the taken-branch penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpi_stack import CPIStack
from repro.core.model import predict_workload
from repro.experiments.common import FIGURE8_BENCHMARKS, default_machine, format_table
from repro.machine import MachineConfig
from repro.workloads import get_workload
from repro.workloads.compiler import optimization_variants

#: Order in which the paper presents the variants.
VARIANT_ORDER = ("nosched", "O3", "unroll")


@dataclass
class CompilerVariantResult:
    benchmark: str
    variant: str
    instructions: int
    cycle_stack: CPIStack          # absolute cycles per component
    normalized_cycles: float        # total cycles / cycles of the O3 variant


@dataclass
class Figure8Result:
    machine: MachineConfig
    rows: list[CompilerVariantResult]

    def for_benchmark(self, name: str) -> list[CompilerVariantResult]:
        return [row for row in self.rows if row.benchmark == name]


def run(benchmarks: tuple[str, ...] = FIGURE8_BENCHMARKS,
        machine: MachineConfig | None = None) -> Figure8Result:
    machine = machine if machine is not None else default_machine()
    rows: list[CompilerVariantResult] = []
    for name in benchmarks:
        # The raw (unscheduled) kernel is the -fno-schedule-insns baseline.
        workload = get_workload(name, use_cache=False, optimize=False)
        variants = optimization_variants(workload)
        results = {}
        for variant in VARIANT_ORDER:
            results[variant] = predict_workload(variants[variant], machine)
        o3_cycles = results["O3"].cycles
        for variant in VARIANT_ORDER:
            model = results[variant]
            rows.append(
                CompilerVariantResult(
                    benchmark=name,
                    variant=variant,
                    instructions=model.instructions,
                    cycle_stack=model.stack,
                    normalized_cycles=model.cycles / o3_cycles,
                )
            )
    return Figure8Result(machine=machine, rows=rows)


def format_result(result: Figure8Result) -> str:
    labels: list[str] = []
    for row in result.rows:
        for label in row.cycle_stack.grouped():
            if label not in labels:
                labels.append(label)
    table_rows = []
    for row in result.rows:
        grouped = row.cycle_stack.grouped()
        # Report normalized cycle components: CPI * N / cycles(O3).
        o3_cycles = next(
            other.cycle_stack.total_cycles
            for other in result.rows
            if other.benchmark == row.benchmark and other.variant == "O3"
        )
        table_rows.append(
            [f"{row.benchmark} {row.variant}", row.instructions]
            + [grouped.get(label, 0.0) * row.instructions / o3_cycles for label in labels]
            + [row.normalized_cycles]
        )
    table = format_table(
        ["configuration", "N"] + labels + ["normalized cycles"], table_rows
    )
    return "Figure 8 — compiler optimizations, normalized cycle stacks\n" + table


def main() -> Figure8Result:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
