"""Section 5: model-versus-simulation speedup.

The paper reports that exploring the 192-point design space takes 290 days of
detailed simulation but only 4.5 hours with the mechanistic model (profiling
dominates; evaluating the formulas takes seconds) — a speedup of roughly three
orders of magnitude.  This experiment measures the same ratio on our
infrastructure: time to evaluate the analytical model across a set of machine
configurations (excluding the one-off profiling pass, reported separately)
versus time to run the detailed simulator on the same configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.model import InOrderMechanisticModel
from repro.dse.space import reduced_design_space
from repro.experiments.common import format_table
from repro.pipeline.inorder import InOrderPipeline
from repro.profiler.machine_stats import profile_machine
from repro.profiler.program import profile_program
from repro.workloads import get_workload


@dataclass
class SpeedupResult:
    benchmark: str
    configurations: int
    profiling_seconds: float
    model_seconds: float
    simulation_seconds: float

    @property
    def speedup_model_only(self) -> float:
        """Simulation time over pure model-evaluation time."""
        return self.simulation_seconds / max(self.model_seconds, 1e-9)

    @property
    def speedup_including_profiling(self) -> float:
        """Simulation time over profiling + model time (the paper's 4.5 hours)."""
        total = self.profiling_seconds + self.model_seconds
        return self.simulation_seconds / max(total, 1e-9)


def run(benchmark: str = "sha", configurations: int | None = None) -> SpeedupResult:
    workload = get_workload(benchmark)
    trace = workload.trace()
    machines = reduced_design_space().configurations()
    if configurations is not None:
        machines = machines[:configurations]

    start = time.perf_counter()
    program = profile_program(trace)
    miss_profiles = [profile_machine(trace, machine) for machine in machines]
    profiling_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for machine, misses in zip(machines, miss_profiles):
        InOrderMechanisticModel(machine).predict(program, misses)
    model_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for machine in machines:
        InOrderPipeline(machine).run(trace)
    simulation_seconds = time.perf_counter() - start

    return SpeedupResult(
        benchmark=benchmark,
        configurations=len(machines),
        profiling_seconds=profiling_seconds,
        model_seconds=model_seconds,
        simulation_seconds=simulation_seconds,
    )


def format_result(result: SpeedupResult) -> str:
    rows = [
        ("profiling (one-off)", f"{result.profiling_seconds:.3f} s"),
        ("model evaluation", f"{result.model_seconds:.4f} s"),
        ("detailed simulation", f"{result.simulation_seconds:.3f} s"),
        ("speedup (model only)", f"{result.speedup_model_only:,.0f}x"),
        ("speedup (incl. profiling)", f"{result.speedup_including_profiling:.1f}x"),
    ]
    table = format_table(("quantity", "value"), rows)
    return (
        f"Speedup — {result.benchmark} across {result.configurations} configurations\n"
        f"{table}\n"
        "(paper: ~3 orders of magnitude once the one-off profiling is amortised)"
    )


def main() -> SpeedupResult:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
