"""Section 5: model-versus-simulation speedup.

The paper reports that exploring the 192-point design space takes 290 days of
detailed simulation but only 4.5 hours with the mechanistic model (profiling
dominates; evaluating the formulas takes seconds) — a speedup of roughly three
orders of magnitude.  This experiment measures the same ratio on our
infrastructure: time to evaluate the analytical model across a set of machine
configurations (excluding the one-off profiling pass, reported separately)
versus time to run the detailed simulator on the same configurations.

Profiling is timed on a *fresh* single-pass engine so a warm artifact cache
(which can satisfy the trace without regenerating it) does not hide the cost
being measured.  The measurements are wall-clock, so this experiment is
registered as non-deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.model import InOrderMechanisticModel
from repro.dse.space import reduced_design_space
from repro.experiments.common import ensure_session
from repro.pipeline.inorder import InOrderPipeline
from repro.profiler.program import profile_program
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.runtime import ExperimentResult, Session, experiment


@dataclass
class SpeedupResult:
    benchmark: str
    configurations: int
    profiling_seconds: float
    model_seconds: float
    simulation_seconds: float

    @property
    def speedup_model_only(self) -> float:
        """Simulation time over pure model-evaluation time."""
        return self.simulation_seconds / max(self.model_seconds, 1e-9)

    @property
    def speedup_including_profiling(self) -> float:
        """Simulation time over profiling + model time (the paper's 4.5 hours)."""
        total = self.profiling_seconds + self.model_seconds
        return self.simulation_seconds / max(total, 1e-9)


def run(benchmark: str = "sha", configurations: int | None = None,
        session: Session | None = None) -> SpeedupResult:
    session = ensure_session(session)
    workload = session.workload(benchmark)
    trace = workload.trace()
    machines = reduced_design_space().configurations()
    if configurations is not None:
        machines = machines[:configurations]

    # A fresh engine (not the session-persisted one): the profiling pass is
    # exactly what this experiment wants to time.
    engine = SinglePassEngine(trace)
    start = time.perf_counter()
    program = profile_program(trace)
    miss_profiles = [engine.miss_profile(machine) for machine in machines]
    profiling_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for machine, misses in zip(machines, miss_profiles):
        InOrderMechanisticModel(machine).predict(program, misses)
    model_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for machine in machines:
        InOrderPipeline(machine).run(trace)
    simulation_seconds = time.perf_counter() - start

    return SpeedupResult(
        benchmark=benchmark,
        configurations=len(machines),
        profiling_seconds=profiling_seconds,
        model_seconds=model_seconds,
        simulation_seconds=simulation_seconds,
    )


def to_experiment_result(result: SpeedupResult) -> ExperimentResult:
    rows = (
        ("profiling (one-off)", f"{result.profiling_seconds:.3f} s"),
        ("model evaluation", f"{result.model_seconds:.4f} s"),
        ("detailed simulation", f"{result.simulation_seconds:.3f} s"),
        ("speedup (model only)", f"{result.speedup_model_only:,.0f}x"),
        ("speedup (incl. profiling)", f"{result.speedup_including_profiling:.1f}x"),
    )
    return ExperimentResult(
        experiment="speedup",
        title=(
            f"Speedup — {result.benchmark} across "
            f"{result.configurations} configurations"
        ),
        headers=("quantity", "value"),
        rows=rows,
        footnotes=(
            "(paper: ~3 orders of magnitude once the one-off profiling "
            "is amortised)",
        ),
        metadata={
            "benchmark": result.benchmark,
            "configurations": result.configurations,
            "profiling_seconds": result.profiling_seconds,
            "model_seconds": result.model_seconds,
            "simulation_seconds": result.simulation_seconds,
            "speedup_model_only": result.speedup_model_only,
            "speedup_including_profiling": result.speedup_including_profiling,
        },
        deterministic=False,
    )


def format_result(result: SpeedupResult) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "speedup",
    title="Section 5 — model vs detailed-simulation speedup",
    options=("benchmark", "configurations"),
    smoke={"configurations": 4},
    deterministic=False,
)
def speedup_experiment(session: Session, benchmark: str = "sha",
                       configurations: int | None = None) -> ExperimentResult:
    return to_experiment_result(run(benchmark=benchmark,
                                    configurations=configurations,
                                    session=session))
