"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.machine import DEFAULT_MACHINE, MachineConfig

#: Benchmarks highlighted in Figure 4 (width scaling behaviour).
FIGURE4_BENCHMARKS = ("sha", "tiffdither", "dijkstra")

#: Benchmarks shown in Figure 7 (in-order vs out-of-order CPI stacks); the
#: paper's cjpeg/djpeg/toast map onto our jpeg_c/jpeg_d/gsm_c kernels.
FIGURE7_BENCHMARKS = (
    "jpeg_c", "dijkstra", "jpeg_d", "lame", "patricia",
    "susan_c", "susan_e", "susan_s", "tiff2bw", "tiff2rgba",
    "tiffdither", "tiffmedian", "gsm_c",
)

#: Benchmarks shown in Figure 8 (largest compiler-optimization impact).
FIGURE8_BENCHMARKS = ("gsm_c", "sha", "stringsearch", "susan_s", "tiffdither")

#: Benchmarks shown in Figure 9 (EDP exploration).
FIGURE9_BENCHMARKS = ("adpcm_d", "gsm_c", "lame", "patricia")

#: Workload subset used by default for design-space validation (Figure 5)
#: when running the fast configuration; the full run uses all 19.
FIGURE5_FAST_BENCHMARKS = (
    "sha", "dijkstra", "qsort", "tiff2bw", "tiffdither", "patricia",
)


def default_machine() -> MachineConfig:
    """The paper's default processor configuration (Table 2)."""
    return DEFAULT_MACHINE


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a plain-text table (the experiments print, they do not plot)."""
    materialized = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
