"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from repro.machine import DEFAULT_MACHINE, MachineConfig
from repro.runtime.reporters import format_table  # noqa: F401  (re-export)
from repro.runtime.session import Session

#: Benchmarks highlighted in Figure 4 (width scaling behaviour).
FIGURE4_BENCHMARKS = ("sha", "tiffdither", "dijkstra")

#: Benchmarks shown in Figure 7 (in-order vs out-of-order CPI stacks); the
#: paper's cjpeg/djpeg/toast map onto our jpeg_c/jpeg_d/gsm_c kernels.
FIGURE7_BENCHMARKS = (
    "jpeg_c", "dijkstra", "jpeg_d", "lame", "patricia",
    "susan_c", "susan_e", "susan_s", "tiff2bw", "tiff2rgba",
    "tiffdither", "tiffmedian", "gsm_c",
)

#: Benchmarks shown in Figure 8 (largest compiler-optimization impact).
FIGURE8_BENCHMARKS = ("gsm_c", "sha", "stringsearch", "susan_s", "tiffdither")

#: Benchmarks shown in Figure 9 (EDP exploration).
FIGURE9_BENCHMARKS = ("adpcm_d", "gsm_c", "lame", "patricia")

#: Workload subset used by default for design-space validation (Figure 5)
#: when running the fast configuration; the full run uses all 19.
FIGURE5_FAST_BENCHMARKS = (
    "sha", "dijkstra", "qsort", "tiff2bw", "tiffdither", "patricia",
)


def default_machine() -> MachineConfig:
    """The paper's default processor configuration (Table 2)."""
    return DEFAULT_MACHINE


def ensure_session(session: Session | None) -> Session:
    """The given session, or a fresh ephemeral (uncached, serial) one.

    Every experiment's ``run`` accepts ``session=None`` so the modules stay
    usable as plain libraries; the CLI always passes its configured session.
    """
    return session if session is not None else Session()


def _validated_names(suite: str, label: str, names) -> list[str]:
    from repro.workloads.registry import suite_names

    known = suite_names(suite)
    if names is None:
        return known
    unknown = [name for name in names if name not in known]
    if unknown:
        raise KeyError(f"not {label} workloads: {unknown}")
    return list(names)


def mibench_names(names=None) -> list[str]:
    """Validated MiBench benchmark selection (default: all 19, sorted)."""
    return _validated_names("mibench", "MiBench", names)


def spec_names(names=None) -> list[str]:
    """Validated SPEC-like benchmark selection (default: all, sorted)."""
    return _validated_names("spec", "SPEC", names)
