"""Figure 3: model CPI versus detailed-simulation CPI on MiBench (default config).

The paper reports an average absolute CPI prediction error of 3.1% and a
maximum of 8.4% for the 19 MiBench benchmarks on the default configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import InOrderMechanisticModel
from repro.experiments.common import default_machine, ensure_session, mibench_names
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.runtime import ExperimentResult, Session, experiment
from repro.validation.compare import ValidationRow, ValidationSummary, summarize


@dataclass
class Figure3Result:
    machine: MachineConfig
    rows: list[ValidationRow]
    summary: ValidationSummary


def _validation_row(session: Session, item: tuple[str, MachineConfig]) -> ValidationRow:
    """One benchmark's model-vs-simulation point (a parallel work unit)."""
    name, machine = item
    workload = session.workload(name)
    program = session.program_profile(workload)
    misses = session.miss_profile(workload, machine)
    model = InOrderMechanisticModel(machine).predict(program, misses)
    simulated = InOrderPipeline(machine).run(workload.trace())
    return ValidationRow(
        name=workload.name,
        configuration=machine.name or "default",
        predicted_cpi=model.cpi,
        simulated_cpi=simulated.cpi,
    )


def run(benchmarks: list[str] | None = None,
        machine: MachineConfig | None = None,
        session: Session | None = None) -> Figure3Result:
    session = ensure_session(session)
    machine = machine if machine is not None else default_machine()
    names = mibench_names(benchmarks)
    rows = session.map(_validation_row, [(name, machine) for name in names])
    return Figure3Result(machine=machine, rows=rows, summary=summarize(rows))


def to_experiment_result(result: Figure3Result) -> ExperimentResult:
    summary = result.summary
    return ExperimentResult(
        experiment="figure3",
        title=(
            "Figure 3 — CPI predicted by the model vs detailed simulation "
            f"({result.machine.describe()})"
        ),
        headers=("benchmark", "model CPI", "detailed CPI", "error"),
        rows=tuple(
            (row.name, row.predicted_cpi, row.simulated_cpi, f"{row.error:+.1%}")
            for row in result.rows
        ),
        footnotes=(
            f"average |error| = {summary.average_absolute_error:.1%}  "
            f"max |error| = {summary.maximum_absolute_error:.1%}  "
            "(paper: 3.1% average, 8.4% max)",
        ),
        metadata={
            "machine": result.machine.describe(),
            "benchmarks": [row.name for row in result.rows],
            "average_absolute_error": summary.average_absolute_error,
            "maximum_absolute_error": summary.maximum_absolute_error,
        },
    )


def format_result(result: Figure3Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "figure3",
    title="Figure 3 — model vs detailed simulation, MiBench, default config",
    options=("benchmarks",),
    smoke={"benchmarks": ("sha", "qsort", "tiff2bw")},
)
def figure3_experiment(session: Session,
                       benchmarks: tuple[str, ...] | None = None) -> ExperimentResult:
    return to_experiment_result(run(benchmarks=benchmarks, session=session))
