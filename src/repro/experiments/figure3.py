"""Figure 3: model CPI versus detailed-simulation CPI on MiBench (default config).

The paper reports an average absolute CPI prediction error of 3.1% and a
maximum of 8.4% for the 19 MiBench benchmarks on the default configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import predict_workload
from repro.experiments.common import default_machine, format_table
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.validation.compare import ValidationRow, ValidationSummary, summarize
from repro.workloads import mibench_suite


@dataclass
class Figure3Result:
    machine: MachineConfig
    rows: list[ValidationRow]
    summary: ValidationSummary


def run(benchmarks: list[str] | None = None,
        machine: MachineConfig | None = None) -> Figure3Result:
    machine = machine if machine is not None else default_machine()
    rows: list[ValidationRow] = []
    for workload in mibench_suite(benchmarks):
        trace = workload.trace()
        simulated = InOrderPipeline(machine).run(trace)
        model = predict_workload(workload, machine)
        rows.append(
            ValidationRow(
                name=workload.name,
                configuration=machine.name or "default",
                predicted_cpi=model.cpi,
                simulated_cpi=simulated.cpi,
            )
        )
    return Figure3Result(machine=machine, rows=rows, summary=summarize(rows))


def format_result(result: Figure3Result) -> str:
    table_rows = [
        (row.name, row.predicted_cpi, row.simulated_cpi, f"{row.error:+.1%}")
        for row in result.rows
    ]
    table = format_table(
        ("benchmark", "model CPI", "detailed CPI", "error"), table_rows
    )
    summary = result.summary
    return (
        "Figure 3 — CPI predicted by the model vs detailed simulation "
        f"({result.machine.describe()})\n{table}\n"
        f"average |error| = {summary.average_absolute_error:.1%}  "
        f"max |error| = {summary.maximum_absolute_error:.1%}  "
        f"(paper: 3.1% average, 8.4% max)"
    )


def main() -> Figure3Result:
    result = run()
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
