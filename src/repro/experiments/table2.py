"""Table 2: the architecture design space and the default configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dse.space import DesignSpace, default_design_space
from repro.experiments.common import default_machine
from repro.machine import MachineConfig
from repro.runtime import ExperimentResult, Session, experiment


@dataclass
class Table2Result:
    """The default configuration plus the enumerated design space."""

    default: MachineConfig
    space: DesignSpace

    @property
    def design_points(self) -> int:
        return len(self.space)


def run(session: Session | None = None) -> Table2Result:
    return Table2Result(default=default_machine(), space=default_design_space())


def to_experiment_result(result: Table2Result) -> ExperimentResult:
    default = result.default
    space = result.space
    rows = (
        ("I-cache", f"{default.l1i_size // 1024}KB {default.l1i_associativity}-way",
         "fixed"),
        ("D-cache", f"{default.l1d_size // 1024}KB {default.l1d_associativity}-way",
         "fixed"),
        ("L2 cache", f"{default.l2_size // 1024}KB {default.l2_associativity}-way",
         " / ".join(f"{size // 1024}KB" for size in space.l2_sizes)
         + f"; {' vs '.join(str(a) for a in space.l2_associativities)}-way"),
        ("pipeline depth", f"{default.pipeline_stages} stages",
         " / ".join(f"{stages} stages @ {freq}MHz"
                    for stages, freq in space.depth_frequency)),
        ("frequency", f"{default.frequency_mhz} MHz", "tied to depth"),
        ("width", f"{default.width} slots",
         " / ".join(str(width) for width in space.widths)),
        ("branch predictor", default.branch_predictor,
         " / ".join(space.branch_predictors)),
    )
    return ExperimentResult(
        experiment="table2",
        title=f"Table 2 — design space ({result.design_points} design points)",
        headers=("parameter", "default", "range"),
        rows=rows,
        metadata={"design_points": result.design_points,
                  "default_machine": default.describe()},
    )


def format_result(result: Table2Result) -> str:
    from repro.runtime.reporters import render_text

    return render_text(to_experiment_result(result))


@experiment(
    "table2",
    title="Table 2 — architecture design space",
)
def table2_experiment(session: Session) -> ExperimentResult:
    return to_experiment_result(run(session=session))
