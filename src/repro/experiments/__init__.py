"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a library-level ``run(...)`` returning a typed domain
result, a ``to_experiment_result`` adapter producing the uniform
:class:`~repro.runtime.result.ExperimentResult`, and a declarative runner
registered with the :func:`repro.runtime.registry.experiment` decorator.
The registry metadata (second and third columns) is what the CLI consumes —
options apply uniformly, there are no per-experiment special cases:

=============  ====================  ==========================================
Experiment     Declared options      Paper artefact
=============  ====================  ==========================================
``table2``     —                     Table 2 — architecture design space
``figure3``    benchmarks            Figure 3 — model vs simulation, MiBench
``figure4``    benchmarks, widths    Figure 4 — CPI stacks vs superscalar width
``figure5``    full, benchmarks      Figure 5 — error CDF across the space
``figure6``    benchmarks            Figure 6 — model vs simulation, SPEC-like
``figure7``    benchmarks            Figure 7 — in-order vs out-of-order stacks
``figure8``    benchmarks            Figure 8 — compiler optimizations
``figure9``    full, benchmarks      Figure 9 — EDP design-space exploration
``speedup``    benchmark,            Section 5 — model vs simulation speedup
               configurations        (wall-clock; non-deterministic)
=============  ====================  ==========================================

Importing this package populates :data:`repro.runtime.registry.EXPERIMENTS`
(registration happens at module import, in paper order).
"""

from repro.experiments import (  # noqa: F401  (import order = registry order)
    table2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    speedup,
)

#: Name → module index (the declarative specs live in the runtime registry).
ALL_EXPERIMENTS = {
    "table2": table2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "speedup": speedup,
}

__all__ = ["ALL_EXPERIMENTS"]
