"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run(...)`` function returning structured results and a
``main()`` entry point that prints the same rows/series the paper reports:

=================  ==========================================================
Module             Paper artefact
=================  ==========================================================
``table2``         Table 2 — architecture design space
``figure3``        Figure 3 — model vs detailed simulation, MiBench, default
``figure4``        Figure 4 — CPI stacks vs superscalar width
``figure5``        Figure 5 — error CDF across the design space
``figure6``        Figure 6 — model vs detailed simulation, SPEC-like suite
``figure7``        Figure 7 — in-order vs out-of-order CPI stacks
``figure8``        Figure 8 — compiler optimizations, normalized cycle stacks
``figure9``        Figure 9 — EDP design-space exploration
``speedup``        Section 5 — model vs detailed-simulation speedup
=================  ==========================================================
"""

from repro.experiments import (  # noqa: F401
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    speedup,
    table2,
)

ALL_EXPERIMENTS = {
    "table2": table2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "speedup": speedup,
}

__all__ = ["ALL_EXPERIMENTS"]
