"""Token-bucket per-client rate limiting for the service edge.

A :class:`TokenBucket` refills at ``rate`` tokens/second up to ``burst``;
each admitted request spends one token.  :class:`RateLimiter` keeps one
bucket per client key (the server keys on peer IP) and answers the only
question the edge asks: *admit, or tell the client how long to wait* —
the latter becoming a ``429`` with a ``Retry-After`` header.

Buckets are created lazily and pruned once they have been idle long
enough to refill completely, so the limiter's memory is bounded by the
number of *concurrently active* clients, not every address ever seen.
Time is injectable (monotonic clock by default) so tests drive refill
deterministically.
"""

from __future__ import annotations

import math
import threading
import time


class TokenBucket:
    """One client's budget: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: int, now: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        self.updated_at = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now

    def take(self, now: float) -> float:
        """Spend one token; 0.0 on admit, else seconds until one refills."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

    def idle_for(self, now: float) -> float:
        return max(0.0, now - self.updated_at)


class RateLimiter:
    """Per-client token buckets with bounded memory.

    ``rate <= 0`` disables limiting (every check admits), which is the
    server's default so existing deployments see no behavior change.
    """

    def __init__(self, rate: float, burst: int = 0,
                 clock=time.monotonic):
        self.rate = float(rate)
        #: Default burst: one second's worth of budget, at least 1.
        self.burst = int(burst) if burst > 0 else max(1, math.ceil(self.rate))
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str) -> float:
        """0.0 when ``client`` may proceed, else a ``Retry-After`` hint."""
        if not self.enabled:
            return 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, now
                )
            wait = bucket.take(now)
            if len(self._buckets) > 1:
                self._prune(now)
            return wait

    def _prune(self, now: float) -> None:
        # A bucket idle long enough to be full again is indistinguishable
        # from a fresh one — drop it.
        full_after = self.burst / self.rate
        stale = [client for client, bucket in self._buckets.items()
                 if bucket.idle_for(now) > full_after]
        for client in stale:
            del self._buckets[client]

    def active_clients(self) -> int:
        with self._lock:
            return len(self._buckets)
