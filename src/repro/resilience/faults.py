"""Seeded fault-injection harness wired into the stack's real seams.

A *fault plan* is a list of :class:`FaultSpec` rules plus a seed.  Each
rule names an **injection point** (a seam the runtime and service layers
already call into, see :data:`POINTS`), a **mode** (``error`` raises an
:class:`InjectedFault`, ``delay`` sleeps, ``corrupt`` flips one byte of a
payload in flight, ``kill`` SIGKILLs the current process — a pool worker,
in practice), and a **firing window**: skip the first ``after`` matching
hits, then fire ``count`` times (``count=-1`` fires forever).  ``match``
restricts a rule to operation keys containing the substring — e.g. only
the ``sha`` workload's worker entries — which is how a plan models a
*poison unit* versus a transient crash.

Determinism has two halves.  *Which* hit fires is pure counting — no
randomness — so the same plan against the same request stream fails the
same way every run.  *What* a corruption does (which byte flips) is drawn
from ``random.Random(f"{seed}:{point}:{match}:{ordinal}")``, so different seeds corrupt
different bytes but one seed always corrupts the same one.  Hit counters
live in memory by default; a plan with a ``state_dir`` counts hits in
append-only files instead, so the window is shared across the parent and
every pool worker (``count=1`` then means *one* kill fleet-wide, not one
per respawned worker).

The plan travels like the other per-process knobs: ``REPRO_FAULTS`` holds
a plan file path or inline JSON (the CLI's ``--faults`` exports it), and
the scheduler ships :func:`worker_config` through the pool initializer so
spawned workers — which inherit no module state — enforce the same plan.

With no plan installed every hook is one module-global load plus an
``is None`` test, mirroring :mod:`repro.obs.tracing`'s disabled path.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs import tracing

#: Environment variable carrying the fault plan (a file path or inline
#: JSON) into spawned workers and subcommands.
FAULTS_ENV = "REPRO_FAULTS"

#: Every registered injection point, by layer.
POINTS = (
    "worker.entry",       # scheduler: a unit entering a pool worker
    "cache.read",         # ArtifactCache.load
    "cache.write",        # ArtifactCache.store (corrupt: bytes on disk)
    "dataplane.publish",  # SegmentRegistry.publish
    "dataplane.attach",   # attach_trace, after the segment is mapped
    "http.accept",        # server: a connection was accepted
    "http.read",          # server: about to read the request
    "http.write",         # server: about to write the response
    "jobs.admit",         # EvalExecutor: a job entering the bounded queue
)

#: Supported fault modes.
MODES = ("error", "delay", "corrupt", "kill")


class InjectedFault(RuntimeError):
    """An ``error``-mode fault fired; carries its point and operation key."""

    def __init__(self, point: str, key: str = ""):
        detail = f" ({key})" if key else ""
        super().__init__(f"injected fault at {point}{detail}")
        self.point = point
        self.key = key


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan (see the module docstring for semantics)."""

    point: str
    mode: str = "error"
    #: Substring of the operation key this rule applies to ("" = all).
    match: str = ""
    #: Matching hits skipped before the rule starts firing.
    after: int = 0
    #: Fires before the rule goes dormant; -1 fires forever.
    count: int = 1
    #: Sleep length for ``delay`` mode.
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"known: {', '.join(POINTS)}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: {', '.join(MODES)}"
            )
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def to_dict(self) -> dict:
        return {"point": self.point, "mode": self.mode, "match": self.match,
                "after": self.after, "count": self.count,
                "delay_s": self.delay_s}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        unknown = sorted(set(payload) - {"point", "mode", "match", "after",
                                         "count", "delay_s"})
        if unknown:
            raise ValueError(f"unknown fault-spec keys {unknown}")
        if "point" not in payload:
            raise ValueError("fault spec needs a 'point' entry")
        return cls(
            point=payload["point"],
            mode=payload.get("mode", "error"),
            match=payload.get("match", ""),
            after=int(payload.get("after", 0)),
            count=int(payload.get("count", 1)),
            delay_s=float(payload.get("delay_s", 0.05)),
        )


class FaultPlan:
    """A seeded set of fault rules plus their (possibly shared) hit state."""

    def __init__(self, specs, seed: int = 0, state_dir=None):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.specs)
        self._fires = [0] * len(self.specs)

    # ------------------------------------------------------------------
    # Serialization (plan files, REPRO_FAULTS, pool-worker config).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"seed": self.seed,
                   "faults": [spec.to_dict() for spec in self.specs]}
        if self.state_dir is not None:
            payload["state_dir"] = str(self.state_dir)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        unknown = sorted(set(payload) - {"seed", "faults", "state_dir"})
        if unknown:
            raise ValueError(f"unknown fault-plan keys {unknown}")
        specs = [FaultSpec.from_dict(item)
                 for item in payload.get("faults", ())]
        return cls(specs, seed=int(payload.get("seed", 0)),
                   state_dir=payload.get("state_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Hit accounting.
    # ------------------------------------------------------------------
    def _state_file(self, index: int, kind: str) -> Path:
        assert self.state_dir is not None
        return self.state_dir / f"spec{index}.{kind}"

    def _advance(self, index: int, kind: str) -> int:
        """Count one event; returns how many happened *before* it.

        With a ``state_dir`` the counter is the size of an append-only
        file, which every process sharing the plan advances atomically
        (O_APPEND), so firing windows span the whole worker fleet.
        """
        if self.state_dir is None:
            with self._lock:
                counters = self._hits if kind == "hits" else self._fires
                before = counters[index]
                counters[index] = before + 1
                return before
        descriptor = os.open(self._state_file(index, kind),
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(descriptor, b"1")
            return os.fstat(descriptor).st_size - 1
        finally:
            os.close(descriptor)

    def _count(self, index: int, kind: str) -> int:
        if self.state_dir is None:
            with self._lock:
                return (self._hits if kind == "hits" else self._fires)[index]
        try:
            return self._state_file(index, kind).stat().st_size
        except OSError:
            return 0

    def action_for(self, point: str, key: str,
                   corrupting: bool) -> tuple[FaultSpec, int] | None:
        """The first rule due to fire at this hit, plus its fire ordinal.

        ``corrupting`` selects between byte-transform rules (consulted by
        :func:`corrupt_bytes`) and control-flow rules (consulted by
        :func:`fire`); the two never see each other's hit counters.
        """
        for index, spec in enumerate(self.specs):
            if spec.point != point or (spec.mode == "corrupt") != corrupting:
                continue
            if spec.match and spec.match not in key:
                continue
            hits = self._advance(index, "hits")
            if hits < spec.after:
                continue
            if spec.count >= 0 and hits >= spec.after + spec.count:
                continue
            return spec, self._advance(index, "fires")
        return None

    def report(self) -> dict:
        """Per-rule hit/fire counts (the chaos CLI's plan summary)."""
        return {
            "seed": self.seed,
            "rules": [
                {**spec.to_dict(),
                 "hits": self._count(index, "hits"),
                 "fires": self._count(index, "fires")}
                for index, spec in enumerate(self.specs)
            ],
        }


# ----------------------------------------------------------------------
# The installed plan (module-global, mirroring the tracing sink).
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Activate ``plan`` process-wide (``None`` disables injection)."""
    global _PLAN
    _PLAN = plan


def active_plan() -> FaultPlan | None:
    return _PLAN


def clear() -> None:
    install(None)


def install_from_env() -> FaultPlan | None:
    """Install the :data:`FAULTS_ENV` plan, if any (path or inline JSON)."""
    value = os.environ.get(FAULTS_ENV, "").strip()
    if not value:
        return None
    if value.lstrip().startswith("{"):
        plan = FaultPlan.from_json(value)
    else:
        plan = FaultPlan.from_file(value)
    install(plan)
    return plan


def worker_config() -> str | None:
    """What a pool initializer must ship so workers enforce the same plan."""
    return None if _PLAN is None else _PLAN.to_json()


def apply_worker_config(config: str | None) -> None:
    """Initializer-side counterpart of :func:`worker_config`."""
    if config:
        install(FaultPlan.from_json(config))


# ----------------------------------------------------------------------
# The hooks the seams call.
# ----------------------------------------------------------------------
def _execute(spec: FaultSpec, point: str, key: str, *,
             sleeper=time.sleep) -> None:
    tracing.emit_span(f"fault.{spec.mode}", spec.delay_s
                      if spec.mode == "delay" else 0.0, point=point, key=key)
    if spec.mode == "delay":
        sleeper(spec.delay_s)
        return
    if spec.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedFault(point, key)


def fire(point: str, key: str = "") -> None:
    """Run the control-flow fault due at this hit, if any.

    ``error`` raises :class:`InjectedFault`, ``delay`` sleeps, ``kill``
    SIGKILLs the process.  ``corrupt`` rules are never consulted here —
    byte transforms go through :func:`corrupt_bytes` at the seams that
    move payloads.  No-op (one global load, one ``is None`` test) when no
    plan is installed.
    """
    plan = _PLAN
    if plan is None:
        return
    action = plan.action_for(point, key, corrupting=False)
    if action is not None:
        _execute(action[0], point, key)


async def async_fire(point: str, key: str = "") -> None:
    """:func:`fire` for event-loop seams: ``delay`` awaits, never blocks."""
    plan = _PLAN
    if plan is None:
        return
    action = plan.action_for(point, key, corrupting=False)
    if action is None:
        return
    spec = action[0]
    if spec.mode == "delay":
        import asyncio

        tracing.emit_span("fault.delay", spec.delay_s, point=point, key=key)
        await asyncio.sleep(spec.delay_s)
        return
    _execute(spec, point, key)


def corrupt_bytes(point: str, data: bytes, key: str = "") -> bytes:
    """Apply the ``corrupt`` rule due at this hit: flip one seeded byte."""
    plan = _PLAN
    if plan is None or not data:
        return data
    action = plan.action_for(point, key, corrupting=True)
    if action is None:
        return data
    spec, ordinal = action
    # String seeds are deterministic across runs and platforms (CPython
    # hashes them with a fixed algorithm, unlike tuple hashing under PYTHONHASHSEED).
    rng = random.Random(f"{plan.seed}:{spec.point}:{spec.match}:{ordinal}")
    position = rng.randrange(len(data))
    mutated = bytearray(data)
    mutated[position] ^= 0xFF
    tracing.emit_span("fault.corrupt", 0.0, point=point, key=key,
                      position=position)
    return bytes(mutated)
