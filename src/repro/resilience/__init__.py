"""repro.resilience — fault injection, containment, and degradation.

Three pieces, all stdlib-only:

* :mod:`repro.resilience.faults` — a seeded, env/CLI-configurable fault
  plan (``REPRO_FAULTS`` / ``--faults plan.json``) with injection points
  registered at the real seams (worker entry, cache read/write, dataplane
  publish/attach, HTTP accept/read/write, job-queue admission) that can
  raise, delay, corrupt bytes, or kill the worker process — deterministic
  per seed, so failures reproduce in CI;
* :mod:`repro.resilience.containment` — the scheduler's failure policy:
  per-unit retry budgets with exponential backoff, bisection quarantine of
  poison units, and a consecutive-crash circuit breaker that degrades
  ``jobs=N`` to serial in-process execution instead of dying;
* :mod:`repro.resilience.ratelimit` — token-bucket per-client rate
  limiting for the service edge (429 + ``Retry-After``).

:mod:`repro.resilience.chaos` drives a seeded fault plan against a live
server and asserts the invariants the ``repro-experiments chaos``
subcommand reports: no hang, no wrong bytes, bounded error rate.
"""

from .containment import (
    PoolCrashError,
    PoolHealth,
    RetryPolicy,
    UnitFailure,
    resilient_map,
)
from .faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    install,
    install_from_env,
)
from .ratelimit import RateLimiter, TokenBucket

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PoolCrashError",
    "PoolHealth",
    "RateLimiter",
    "RetryPolicy",
    "TokenBucket",
    "UnitFailure",
    "active_plan",
    "install",
    "install_from_env",
    "resilient_map",
]
