"""Chaos drill: seeded fault plans against a live server, with invariants.

``repro-experiments chaos`` (and :func:`run_chaos` in-process) stands up
real evaluation servers and attacks them with the same fault machinery
:mod:`repro.resilience.faults` provides everywhere else — worker kills,
artifact-cache corruption, slow reads — then *checks the contract* the
resilience layer claims to uphold:

1. **No hang** — every request is answered within the client timeout,
   faults or not.
2. **No wrong bytes** — every result produced under faults is identical
   to the fault-free answer for the same request.  Degradation may cost
   throughput or drop units, never correctness.
3. **Bounded failure** — a poison unit is quarantined and reported as a
   structured per-item error; it cannot take the batch down with it.
4. **Graceful degradation** — a pool that keeps crashing trips the
   circuit breaker and the server falls back to serial in-process
   evaluation, still answering correctly, and says so in ``/v1/health``.

The drill runs two acts against fresh servers (each act installs its
fault plan *before* the server's worker pool spins up, so pool workers
inherit it):

* **Act 1 — poison unit.**  A kill rule matched to one workload murders
  any worker that picks it up, plus a couple of artifact-cache
  corruptions and slowed reads for background noise.  The breaker is
  configured out of reach: the sweep must come back with the poisoned
  workload quarantined (per-item errors) and every other result
  byte-identical to the baseline.
* **Act 2 — total pool failure.**  A kill rule matching everything
  murders every worker.  The breaker (threshold 3) must trip, the sweep
  must complete serially with *every* result byte-identical to the
  baseline, and health must report the degraded state.

Determinism: both acts derive everything from the drill seed and fixed
fault plans, so two runs with the same seed make the same checks.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.resilience.faults import FaultPlan, FaultSpec

#: Default drill seed (the paper's year, like every other seed here).
DEFAULT_SEED = 2012


@dataclass
class ChaosCheck:
    """One verified invariant: what was asserted and what happened."""

    name: str
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail}


@dataclass
class ChaosReport:
    """Everything a ``repro-experiments chaos`` run observed."""

    seed: int
    jobs: int
    requests: int
    duration_s: float = 0.0
    checks: list[ChaosCheck] = field(default_factory=list)
    #: Per-act fault-plan reports (spec, hits, fires).
    fault_reports: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "requests": self.requests,
            "duration_s": round(self.duration_s, 3),
            "passed": self.passed,
            "checks": [check.as_dict() for check in self.checks],
            "fault_reports": self.fault_reports,
        }

    def render(self) -> str:
        lines = [f"chaos drill: seed={self.seed} jobs={self.jobs} "
                 f"requests={self.requests} "
                 f"duration={self.duration_s:.2f}s"]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"  [{mark}] {check.name}{detail}")
        lines.append("verdict: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def _result_key(entry: dict) -> tuple:
    return (entry["workload"], entry["machine"], entry["backend"])


def _strip_error(entry: dict) -> dict:
    return {key: value for key, value in entry.items() if key != "error"}


def _compare(baseline: dict, outcome: list[dict],
             expect_errors: set | None = None) -> tuple[list, list]:
    """Split a faulted sweep against the baseline.

    Returns ``(mismatched, errored)`` where ``mismatched`` holds keys
    whose successful result differs from the fault-free answer and
    ``errored`` the keys answered with a per-item error.
    """
    mismatched, errored = [], []
    for entry in outcome:
        key = _result_key(entry)
        if entry.get("error"):
            errored.append(key)
            continue
        if _strip_error(entry) != baseline[key]:
            mismatched.append(key)
    return mismatched, errored


def run_chaos(*, seed: int = DEFAULT_SEED, jobs: int = 2,
              workloads=None, presets=None,
              timeout: float = 120.0) -> ChaosReport:
    """Run the two-act drill and return the checked invariants.

    ``workloads``/``presets`` default to the full MiBench-19 suite across
    every machine preset (76 requests per sweep); trim them for a quick
    smoke.  ``timeout`` is the per-request client deadline — it *is* the
    no-hang invariant: a server that stops answering fails the drill
    instead of wedging it.
    """
    from repro.machine import MACHINE_PRESETS
    from repro.api.sweep import SweepRequest
    from repro.resilience import faults
    from repro.resilience.containment import RetryPolicy
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.server import ServerThread, ServiceConfig

    if workloads is None:
        from repro.workloads.registry import suite_names

        workloads = suite_names("mibench")
    workloads = list(workloads)
    if presets is None:
        presets = MACHINE_PRESETS.names()
    presets = list(presets)
    sweep = SweepRequest.make(
        workloads, machines=[{"preset": name} for name in presets])
    report = ChaosReport(seed=seed, jobs=jobs,
                         requests=len(workloads) * len(presets))
    started = time.perf_counter()
    poison = workloads[0]

    def check(name: str, passed: bool, detail: str = "") -> None:
        report.checks.append(ChaosCheck(name, bool(passed), detail))

    def act(name: str, plan: FaultPlan | None, policy: RetryPolicy):
        """One fresh server under one plan; returns (results, health, metrics)."""
        faults.clear()
        if plan is not None:
            faults.install(plan)
        try:
            config = ServiceConfig(port=0, jobs=jobs)
            with ServerThread(config) as running:
                running.server.session.retry_policy = policy
                client = ServiceClient(port=running.port, timeout=timeout)
                client.wait_ready(timeout=min(timeout, 30.0))
                results = [result.to_dict()
                           for result in client.sweep(sweep)]
                health = client.health()
                metrics = client.metrics()
            if plan is not None:
                report.fault_reports[name] = plan.report()
            return results, health, metrics
        finally:
            faults.clear()

    # Fast backoffs keep the drill quick; thresholds are per act.
    calm = RetryPolicy(backoff_base=0.01, backoff_max=0.05,
                       breaker_threshold=10_000)
    default = RetryPolicy(backoff_base=0.01, backoff_max=0.05)

    # ------------------------------------------------------------------
    # Baseline: the fault-free answers every act is compared against.
    # ------------------------------------------------------------------
    results, health, _ = act("baseline", None, default)
    baseline = {_result_key(entry): _strip_error(entry) for entry in results}
    check("baseline.clean", not any(entry.get("error") for entry in results),
          f"{len(results)} fault-free results")
    check("baseline.healthy", health.get("status") == "ok"
          and not health.get("degraded"), f"status={health.get('status')}")

    # ------------------------------------------------------------------
    # Act 1: poison unit -> quarantine, everything else untouched.
    # ------------------------------------------------------------------
    act1_plan = FaultPlan(specs=(
        FaultSpec(point="worker.entry", mode="kill", match=poison, count=99),
        FaultSpec(point="cache.write", mode="corrupt", count=2),
        FaultSpec(point="http.read", mode="delay", delay_s=0.02, count=2),
    ), seed=seed)
    try:
        results, health, metrics = act("act1", act1_plan, calm)
    except ServiceError as exc:
        check("act1.no_hang", False, f"sweep failed: {exc}")
    else:
        mismatched, errored = _compare(baseline, results)
        expected_errors = {key for key in baseline if key[0] == poison}
        check("act1.no_hang", True,
              f"sweep answered under worker kills ({len(results)} entries)")
        check("act1.no_wrong_bytes", not mismatched,
              f"{len(mismatched)} results differ from baseline"
              if mismatched else
              f"{len(results) - len(errored)} results byte-identical")
        check("act1.poison_quarantined", set(errored) == expected_errors,
              f"errored={sorted(set(key[0] for key in errored))} "
              f"expected={{{poison!r}}}")
        quarantined = metrics.get("resilience", {}).get("quarantined", {})
        check("act1.quarantine_reported", poison in quarantined,
              f"/v1/metrics resilience.quarantined={sorted(quarantined)}")
        check("act1.breaker_closed", not health.get("degraded"),
              f"degraded={health.get('degraded')}")
        rate = len(errored) / max(1, len(results))
        check("act1.bounded_error_rate", rate <= len(presets) / max(
            1, len(results)) + 1e-9, f"error rate {rate:.3f}")

    # ------------------------------------------------------------------
    # Act 2: every worker dies -> breaker trips -> serial, all correct.
    # ------------------------------------------------------------------
    act2_plan = FaultPlan(specs=(
        FaultSpec(point="worker.entry", mode="kill", count=10_000),
    ), seed=seed)
    try:
        results, health, metrics = act("act2", act2_plan, default)
    except ServiceError as exc:
        check("act2.no_hang", False, f"sweep failed: {exc}")
    else:
        mismatched, errored = _compare(baseline, results)
        check("act2.no_hang", True,
              "sweep answered under total pool failure")
        check("act2.all_correct", not mismatched and not errored,
              f"mismatched={len(mismatched)} errored={len(errored)}"
              if (mismatched or errored) else
              f"all {len(results)} results byte-identical after fallback")
        check("act2.breaker_tripped", bool(health.get("degraded"))
              and health.get("status") == "degraded",
              f"status={health.get('status')} "
              f"degraded={health.get('degraded')}")
        resilience = metrics.get("resilience", {})
        check("act2.crashes_counted",
              resilience.get("pool_crashes", 0) >= 3,
              f"pool_crashes={resilience.get('pool_crashes')}")

    report.duration_s = time.perf_counter() - started
    return report


def main_json(report: ChaosReport) -> str:
    return json.dumps(report.as_dict(), indent=2)
