"""Failure containment for pooled maps: budgets, quarantine, breaker.

:func:`resilient_map` is what :func:`repro.runtime.scheduler.session_map`
runs instead of the old blind "reset the pool and rerun everything once".
It submits each unit as its own future, so a worker crash only voids the
units that had not finished, and it answers three questions the old retry
could not:

* **Who did it?**  Units that were in flight when the pool broke are
  resubmitted, bisecting multi-unit batches down to singletons; a unit
  that breaks the pool alone :attr:`~RetryPolicy.unit_crash_limit` times
  is the culprit — it is *quarantined* (never pooled again this session)
  and reported as a per-unit :class:`UnitFailure` instead of sinking the
  batch.
* **When do we stop retrying?**  Every pool respawn costs seconds; a map
  exceeding :attr:`~RetryPolicy.max_pool_crashes` raises a typed
  :class:`PoolCrashError` naming the suspect units rather than looping.
  Respawns back off exponentially so a flapping host is not hammered.
* **When do we stop pooling?**  :class:`PoolHealth` counts *consecutive*
  crashes across maps (a map with zero crashes resets the streak); at
  :attr:`~RetryPolicy.breaker_threshold` the circuit breaker trips and
  every remaining and future unit runs serially in-process — degraded
  throughput, not an outage.  Quarantined units stay failed even in
  serial mode: a unit that killed two workers is never run in the parent.

``strict=True`` restores the all-or-nothing contract (``session.map``):
any unit failure raises.  ``strict=False`` (``session.map_resilient``,
used by the batch API) returns a :class:`UnitFailure` in the failed
unit's slot and results elsewhere — order preserved either way, so the
byte-identity guarantee of serial-vs-parallel output holds for every
unit that succeeds.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable

from repro.obs import tracing


@dataclass(frozen=True)
class RetryPolicy:
    """Containment budgets for one session's pooled maps."""

    #: Solo pool crashes before a unit is quarantined as poison.
    unit_crash_limit: int = 2
    #: Pool respawns a single map may spend before raising PoolCrashError.
    max_pool_crashes: int = 8
    #: First respawn backoff; doubles per crash within a map.
    backoff_base: float = 0.05
    #: Backoff ceiling.
    backoff_max: float = 1.0
    #: Consecutive cross-map crashes that trip the serial-fallback breaker.
    breaker_threshold: int = 3

    def backoff(self, crash_number: int) -> float:
        """Seconds to wait before respawn ``crash_number`` (1-based)."""
        return min(self.backoff_max,
                   self.backoff_base * (2 ** max(0, crash_number - 1)))


@dataclass(frozen=True)
class UnitFailure:
    """A unit's structured per-item error (the non-strict failure slot)."""

    index: int
    label: str
    error: str
    #: Solo pool crashes attributed to the unit (0 for plain exceptions).
    crashes: int = 0

    def to_dict(self) -> dict:
        return {"index": self.index, "label": self.label,
                "error": self.error, "crashes": self.crashes}


class PoolCrashError(RuntimeError):
    """A map exhausted its crash budget (or hit poison under ``strict``).

    ``suspects`` names the unit labels in flight at the fatal crash —
    the shortlist a human starts from.
    """

    def __init__(self, message: str, suspects=()):
        self.suspects = tuple(suspects)
        if self.suspects:
            message = f"{message} (suspect units: {', '.join(self.suspects)})"
        super().__init__(message)


class PoolHealth:
    """Cross-map crash accounting, breaker state and the quarantine list.

    Lives on the session (one per pool); counters land in the session's
    metrics registry as ``resilience_events_total{event=...}`` so they
    render under the service's ``repro_`` Prometheus prefix.
    """

    def __init__(self, registry=None):
        from repro.obs.metrics import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        self._events = registry.counter(
            "resilience_events_total",
            "Containment events: pool crashes, retries, quarantines, "
            "breaker trips, serial-fallback units.",
            labels=("event",),
        )
        self.pool_crashes = 0
        self.consecutive_crashes = 0
        self.breaker_open = False
        #: label -> error string of units banned from the pool (and from
        #: serial fallback — they already killed workers twice).
        self.quarantined: dict[str, str] = {}

    def _count(self, event: str, amount: int = 1) -> None:
        self._events.labels(event=event).inc(amount)

    def record_crash(self) -> None:
        self.pool_crashes += 1
        self.consecutive_crashes += 1
        self._count("pool_crash")

    def record_retry(self, units: int = 1) -> None:
        self._count("retry", units)

    def record_clean_map(self) -> None:
        """A map finished without any pool crash: the streak resets."""
        self.consecutive_crashes = 0

    def quarantine(self, label: str, error: str) -> None:
        if label not in self.quarantined:
            self.quarantined[label] = error
            self._count("quarantine")

    def trip_breaker(self) -> None:
        if not self.breaker_open:
            self.breaker_open = True
            self._count("breaker_trip")
            tracing.emit_span("resilience.breaker_trip", 0.0,
                              consecutive=self.consecutive_crashes)

    def reset_breaker(self) -> None:
        """Re-arm pooled execution (operator/test hook; not automatic)."""
        self.breaker_open = False
        self.consecutive_crashes = 0

    def record_serial_units(self, units: int) -> None:
        self._count("serial_fallback", units)

    def as_dict(self) -> dict:
        return {
            "pool_crashes": self.pool_crashes,
            "consecutive_crashes": self.consecutive_crashes,
            "breaker_open": self.breaker_open,
            "quarantined": dict(self.quarantined),
        }


def unit_label(item) -> str:
    """A stable human name for a work unit (fault plans match on this)."""
    label = getattr(item, "workload", None)
    if label is None:
        label = getattr(item, "name", None)
    return str(item if label is None else label)


def _quarantine_failure(index: int, label: str, error: str,
                        crashes: int) -> UnitFailure:
    return UnitFailure(index=index, label=label, error=error,
                       crashes=crashes)


def resilient_map(session, fn: Callable, items: list, *,
                  strict: bool = True,
                  policy: RetryPolicy | None = None,
                  health: PoolHealth | None = None,
                  sleeper: Callable[[float], None] = time.sleep) -> list:
    """Pooled ``fn(session, item)`` with containment (see module doc).

    Returns one outcome per item, in item order: the unit's result, or —
    with ``strict=False`` — a :class:`UnitFailure`.  With ``strict=True``
    any unit failure raises (:class:`PoolCrashError` for crash-attributed
    ones, the unit's own exception otherwise).
    """
    if policy is None:
        policy = getattr(session, "retry_policy", None) or RetryPolicy()
    if health is None:
        health = getattr(session, "health", None) or PoolHealth()

    items = list(items)
    labels = [unit_label(item) for item in items]
    outcomes: list = [None] * len(items)
    done = [False] * len(items)

    def fail(index: int, error: str, crashes: int = 0):
        if strict:
            if crashes:
                raise PoolCrashError(error, suspects=[labels[index]])
            raise RuntimeError(error)
        outcomes[index] = _quarantine_failure(index, labels[index], error,
                                              crashes)
        done[index] = True

    # Units already quarantined by an earlier map fail immediately.
    runnable = []
    for index in range(len(items)):
        prior = health.quarantined.get(labels[index])
        if prior is None:
            runnable.append(index)
        else:
            fail(index, prior, crashes=policy.unit_crash_limit)

    pending: deque[list[int]] = deque()
    if runnable:
        pending.append(runnable)
    crash_counts: dict[int, int] = {}
    map_crashes = 0

    def run_serial(indices: list[int]) -> None:
        health.record_serial_units(len(indices))
        for index in indices:
            try:
                with tracing.span("resilience.serial_unit",
                                  unit=labels[index]):
                    outcomes[index] = fn(session, items[index])
                done[index] = True
            except Exception as exc:
                if strict:
                    raise
                fail(index, f"{type(exc).__name__}: {exc}")

    while pending:
        if health.breaker_open:
            remaining = [index for batch in pending for index in batch]
            pending.clear()
            run_serial(remaining)
            break

        batch = pending.popleft()
        futures = session.pool().submit_all(fn, [items[i] for i in batch])
        crashed: list[int] = []
        unit_errors: list[tuple[int, Exception]] = []
        for index, future in zip(batch, futures):
            try:
                outcomes[index] = future.result()
                done[index] = True
            except BrokenExecutor:
                crashed.append(index)
            except Exception as exc:  # the unit itself failed, pool intact
                unit_errors.append((index, exc))

        for index, exc in unit_errors:
            if strict:
                raise exc
            fail(index, f"{type(exc).__name__}: {exc}")

        if not crashed:
            continue

        # The pool broke under this batch.  Account, respawn, back off.
        map_crashes += 1
        health.record_crash()
        tracing.emit_span("resilience.pool_crash", 0.0,
                          in_flight=len(crashed),
                          suspects=",".join(labels[i] for i in crashed))
        session.reset_pool()
        if map_crashes > policy.max_pool_crashes:
            raise PoolCrashError(
                f"pool crashed {map_crashes} times in one map, "
                f"exceeding the budget of {policy.max_pool_crashes}",
                suspects=[labels[i] for i in crashed],
            )
        sleeper(policy.backoff(map_crashes))

        if len(crashed) == 1:
            # Solo crash: unambiguous attribution.
            index = crashed[0]
            count = crash_counts[index] = crash_counts.get(index, 0) + 1
            if count >= policy.unit_crash_limit:
                error = (f"unit {labels[index]!r} quarantined: broke the "
                         f"worker pool {count} times")
                health.quarantine(labels[index], error)
                fail(index, error, crashes=count)
            else:
                health.record_retry()
                pending.appendleft([index])
        else:
            # Ambiguous: bisect the in-flight set so the culprit isolates
            # within O(log n) respawns.  Small sets go straight to
            # singletons — one respawn per unit beats repeated halving.
            health.record_retry(len(crashed))
            if len(crashed) <= 4:
                halves = [[index] for index in crashed]
            else:
                middle = len(crashed) // 2
                halves = [crashed[:middle], crashed[middle:]]
            for half in reversed(halves):
                pending.appendleft(half)

        if (not health.breaker_open
                and health.consecutive_crashes >= policy.breaker_threshold):
            health.trip_breaker()

    if map_crashes == 0:
        health.record_clean_map()

    assert all(done), "resilient_map left units unaccounted"
    return outcomes
