"""Program and program-machine profiling (Figure 2 of the paper).

Two kinds of statistics are collected from a dynamic trace:

* **Program statistics** (machine independent, collected once per binary):
  instruction mix and inter-instruction dependency-distance profiles —
  :func:`profile_program`.
* **Program–machine statistics** (depend on the cache/TLB/branch-predictor
  configuration): miss-event counts — :func:`profile_machine`, answered by
  the amortized single-pass :class:`SinglePassEngine` (one trace walk per
  cache geometry, one branch replay per predictor) with an ``exact=True``
  full-replay escape hatch.

Together with the machine parameters (:class:`repro.machine.MachineConfig`)
these are the inputs of Table 1 of the paper.
"""

from repro.profiler.instruction_mix import InstructionMix, collect_instruction_mix
from repro.profiler.dependences import DependencyProfile, collect_dependencies
from repro.profiler.program import ProgramProfile, profile_program
from repro.profiler.machine_stats import MissProfile, profile_machine
from repro.profiler.single_pass_engine import SinglePassEngine

__all__ = [
    "SinglePassEngine",
    "InstructionMix",
    "collect_instruction_mix",
    "DependencyProfile",
    "collect_dependencies",
    "ProgramProfile",
    "profile_program",
    "MissProfile",
    "profile_machine",
]
