"""Systematic interval sampling over chunked traces.

Exact streamed profiling (:mod:`repro.profiler.streaming`) bounds *memory*
but still touches every dynamic instruction.  For workloads two or three
orders of magnitude longer than the MiBench traces, this module bounds
*time* as well: it profiles only every ``rate``-th chunk (a systematic
sample of fixed-length intervals, in the spirit of SMARTS/SimPoint) and
scales the per-interval statistics up to the full workload.

The estimator:

* the first ``warmup`` chunks are a **census**: they are streamed exactly
  (carried caches and predictor state, chunk by chunk), so their per-chunk
  counts carry no error at all — and they double as the calibration set
  below;
* after the warmup prefix, every ``rate``-th chunk is profiled as a
  **warmed interval**: the ``warming`` chunks preceding it are streamed
  through the chunk-resumable kernels to warm caches, TLBs and predictor
  tables (state only), then the chunk itself is profiled by differencing
  cumulative counts across it.  A warmed interval profile is a pure
  function of the warming window's content, so records are
  content-addressed and cached: re-sampling the same trace at a nested
  rate, or for a machine already profiled, reuses every overlapping
  interval instead of re-walking it;
* finite warming leaves a residual cold-start bias — events that look cold
  within the warming window but would have been warm in the full stream.
  Each biased metric has a *window* bounding the residual (its cold-miss
  count within the measured chunk; see :class:`_Calibration`), and the
  census measures where in the window the truth sits: every census chunk
  past the first is profiled both ways (exactly in stream, and as a warmed
  interval with the same ``warming``), and the measured bias fraction is
  applied to every sampled interval;
* the reported per-metric relative error combines the calibration
  uncertainty (spread of the bias fraction across census chunks, floored —
  the census sits at the start of the trace and the sampled region may
  drift) with the sampling error (sample variance across selected
  intervals), so the error bar brackets both noise sources.

Accuracy degrades gracefully but inevitably when ``chunk_length x
(warming + 1)`` is much smaller than the reuse horizon of the largest
structure (a big L2 takes many thousands of accesses to warm); pick chunk
geometry so a warmed interval covers it, or widen ``warming``.

The module is backend-agnostic: census and warmed intervals both go
through the active :mod:`repro.accel` backend's chunk-resumable streams.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, fields

from repro.accel import get_kernels
from repro.accel.kernels import PredictorBranchStream
from repro.branch.predictors import make_predictor
from repro.core import penalties
from repro.core.model import InOrderMechanisticModel, ModelResult
from repro.machine import MachineConfig
from repro.profiler.dependences import DependencyProfile
from repro.profiler.instruction_mix import InstructionMix
from repro.profiler.machine_stats import MissProfile
from repro.profiler.program import ProgramProfile
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.trace.store import chunk_digest
from repro.trace.trace import ChunkedTrace

#: Version of the per-interval record layout; part of every cache key, so a
#: layout change silently invalidates stale cached records.
SAMPLING_SCHEMA_VERSION = 1

#: Two-sided 95% normal quantile used to widen the standard error into a
#: confidence radius.
CONFIDENCE_Z = 1.96

#: Floor on the calibration halfwidth (as a fraction of the bias window):
#: the census measures the bias at the start of the trace and the sampled
#: region may drift, so the error bar never trusts the calibration to
#: better than this.
BIAS_HALFWIDTH_FLOOR = 0.25

#: Miss-profile count fields that get a per-metric error estimate.
MISS_METRICS = (
    "l1i_misses", "il2_misses", "itlb_misses",
    "l1d_misses", "dl2_misses", "dtlb_misses",
    "mispredictions", "taken_bubbles", "conditional_branches",
)

#: Metrics whose warmed-interval profile carries a residual cold-start
#: bias, and the cold-miss counter that measures the bias window.
_COLD_SOURCES = {
    "l1i_misses": "l1i", "l1d_misses": "l1d",
    "itlb_misses": "itlb", "dtlb_misses": "dtlb",
    "il2_misses": "il2", "dl2_misses": "dl2",
}


# ----------------------------------------------------------------------
# Plans.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplingPlan:
    """Which chunks of a ``num_chunks``-chunk trace get profiled, and how.

    ``warmup`` leading chunks are censused at weight 1.0; each index in
    ``selected`` is profiled at weight ``weight``.  ``rate == 1`` (or a
    trace no longer than the warmup prefix) degenerates to an exact census.
    """

    num_chunks: int
    rate: int
    warmup: int
    selected: tuple[int, ...]
    weight: float

    @property
    def census(self) -> tuple[int, ...]:
        """The warmup prefix — profiled exactly, weight 1.0."""
        return tuple(range(min(self.warmup, self.num_chunks)))

    @property
    def intervals_profiled(self) -> int:
        return len(self.census) + len(self.selected)

    @property
    def fraction(self) -> float:
        """Fraction of chunks actually profiled."""
        if self.num_chunks == 0:
            return 0.0
        return self.intervals_profiled / self.num_chunks

    @property
    def exact(self) -> bool:
        """True when the plan covers every chunk at weight 1.0."""
        return self.intervals_profiled == self.num_chunks and self.weight == 1.0


def systematic_plan(num_chunks: int, rate: int,
                    warmup: int = 1) -> SamplingPlan:
    """Every ``rate``-th chunk after a ``warmup``-chunk census prefix."""
    if rate < 1:
        raise ValueError("sampling rate must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    selected = tuple(range(warmup, num_chunks, rate))
    if selected:
        weight = (num_chunks - warmup) / len(selected)
    else:
        weight = 1.0
    return SamplingPlan(num_chunks=num_chunks, rate=rate, warmup=warmup,
                        selected=selected, weight=weight)


# ----------------------------------------------------------------------
# Warmed interval profiling (content-addressed, cacheable).
# ----------------------------------------------------------------------
@dataclass
class IntervalRecord:
    """Everything the estimator needs from one warmed interval profile.

    A pure function of (warming-window content, machine, mlp_window), so
    records are safe to cache content-addressed and to share across
    sampling rates whose plans select the same chunk.
    """

    schema_version: int
    instructions: int
    #: Model-predicted cycles for the warmed interval.
    cycles: float
    #: Cold misses per structure (l1i/l1d/itlb/dtlb/il2/dl2) *within the
    #: measured chunk* — the residual bias windows.
    cold: dict[str, int]
    misses: MissProfile
    program: ProgramProfile


def machine_fingerprint(machine: MachineConfig) -> str:
    """Stable short digest of a machine's compared fields (name excluded)."""
    payload = [(spec.name, getattr(machine, spec.name))
               for spec in fields(machine) if spec.compare]
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


def interval_cache_key(chunked: ChunkedTrace, index: int,
                       machine: MachineConfig, mlp_window: int,
                       warming: int) -> str:
    """Content address of one warmed interval profile."""
    start = max(0, index - warming)
    window = hashlib.sha256()
    for position in range(start, index + 1):
        window.update(chunk_digest(chunked, position).encode("ascii"))
    return (
        f"interval-v{SAMPLING_SCHEMA_VERSION}-{window.hexdigest()[:32]}-"
        f"{machine_fingerprint(machine)}-w{mlp_window}"
    )


class _StreamSet:
    """One machine's chunk-resumable streams plus cumulative snapshots."""

    def __init__(self, machine: MachineConfig, mlp_window: int, kernels):
        self.machine = machine
        self.mlp_window = mlp_window
        self.kernels = kernels if kernels is not None else get_kernels()
        geometry = SinglePassEngine._base_key(machine)
        line = machine.line_size
        sets = machine.l2_size // (machine.l2_associativity * line)
        self.base = self.kernels.base_stream(geometry)
        self.l2 = self.kernels.l2_stream(
            sets, line, [(machine.l2_associativity, mlp_window)]
        )
        self.branches = self.kernels.branch_stream(machine.branch_predictor)
        if self.branches is None:
            self.branches = PredictorBranchStream(
                make_predictor(machine.branch_predictor)
            )

    def update(self, chunk) -> None:
        self.l2.update(*self.base.update(chunk))
        self.branches.update(self.kernels.control_stream(chunk))

    def snapshot(self) -> tuple[dict[str, int], dict[str, int], int]:
        """Cumulative (metric counts, cold counts, dl2 miss runs) so far."""
        machine = self.machine
        base = self.base.finish()
        l2 = self.l2.finish()
        branches = self.branches.finish()
        counts = {
            "l1i_misses": base.l1i.misses(machine.l1i_associativity),
            "il2_misses": l2.instruction_misses(machine.l2_associativity),
            "itlb_misses": base.itlb.misses(machine.tlb_entries),
            "l1d_misses": base.l1d.misses(machine.l1d_associativity),
            "dl2_misses": l2.data_misses(machine.l2_associativity),
            "dtlb_misses": base.dtlb.misses(machine.tlb_entries),
            "mispredictions": branches.mispredictions,
            "taken_bubbles": branches.taken_bubbles,
            "conditional_branches": branches.conditional_branches,
        }
        cold = {
            "l1i": base.l1i.cold_misses, "l1d": base.l1d.cold_misses,
            "itlb": base.itlb.cold_misses, "dtlb": base.dtlb.cold_misses,
            "il2": l2.instruction_cold, "dl2": l2.data_cold,
        }
        runs = l2.data_miss_runs(machine.l2_associativity, self.mlp_window)
        return counts, cold, runs


def _chunk_program(chunk, statics, kernels,
                   max_dependency_distance: int = 64) -> ProgramProfile:
    """Chunk-local program profile through the active kernel backend.

    Value-identical to :func:`profile_program` on the chunk (the kernel
    streams are bit-exact against the reference profiler) but runs at
    kernel speed — per-chunk program profiling is the only per-interval
    work that is not a miss stream, so it must not fall back to the
    per-row reference path.
    """
    kernels = kernels if kernels is not None else get_kernels()
    dependencies = kernels.dependency_stream(statics,
                                             max_dependency_distance)
    mix = kernels.mix_stream()
    dependencies.update(chunk)
    mix.update(chunk)
    return ProgramProfile(
        name=chunk.name,
        instructions=len(chunk),
        mix=mix.finish(),
        dependencies=dependencies.finish(),
    )


def profile_interval(chunked: ChunkedTrace, index: int,
                     machine: MachineConfig, mlp_window: int = 64,
                     kernels=None, warming: int = 1) -> IntervalRecord:
    """Profile chunk ``index`` after warming on its predecessors.

    The ``warming`` chunks before ``index`` (clipped at the trace start)
    are streamed through the kernels for state only; the measured chunk's
    counts are the difference of cumulative snapshots around it.
    """
    streams = _StreamSet(machine, mlp_window, kernels)
    for position in range(max(0, index - warming), index):
        streams.update(chunked.chunk(position))
    before_counts, before_cold, before_runs = streams.snapshot()
    chunk = chunked.chunk(index)
    streams.update(chunk)
    after_counts, after_cold, after_runs = streams.snapshot()
    counts = {
        metric: after_counts[metric] - before_counts[metric]
        for metric in MISS_METRICS
    }
    cold = {
        source: after_cold[source] - before_cold[source]
        for source in after_cold
    }
    program = _chunk_program(chunk, chunked.statics, kernels)
    misses = MissProfile(
        machine=machine,
        instructions=len(chunk),
        dl2_miss_runs=after_runs - before_runs,
        **counts,
    )
    result = InOrderMechanisticModel(machine).predict(program, misses)
    return IntervalRecord(
        schema_version=SAMPLING_SCHEMA_VERSION,
        instructions=len(chunk),
        cycles=result.cycles,
        cold=cold,
        misses=misses,
        program=program,
    )


def _census_counts(chunked: ChunkedTrace, plan: SamplingPlan,
                   machine: MachineConfig, mlp_window: int,
                   kernels) -> list[tuple[dict[str, int], int]]:
    """Exact per-chunk (metric counts, dl2 miss runs) for ``plan.census``.

    One pass of the chunk-resumable streams over the warmup prefix only;
    cumulative counts are snapshotted after every chunk and differenced.
    """
    if not plan.census:
        return []
    streams = _StreamSet(machine, mlp_window, kernels)
    per_chunk: list[tuple[dict[str, int], int]] = []
    previous: dict[str, int] = {metric: 0 for metric in MISS_METRICS}
    previous_runs = 0
    for index in plan.census:
        streams.update(chunked.chunk(index))
        cumulative, _, runs = streams.snapshot()
        per_chunk.append((
            {
                metric: cumulative[metric] - previous[metric]
                for metric in MISS_METRICS
            },
            runs - previous_runs,
        ))
        previous = cumulative
        previous_runs = runs
    return per_chunk


# ----------------------------------------------------------------------
# Calibration.
# ----------------------------------------------------------------------
def _spread(samples: list[float]) -> float:
    """Halfwidth of the calibration uncertainty from its census samples."""
    if len(samples) < 2:
        return BIAS_HALFWIDTH_FLOOR
    mean = sum(samples) / len(samples)
    deviation = math.sqrt(
        sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    )
    return max(CONFIDENCE_Z * deviation, BIAS_HALFWIDTH_FLOOR)


@dataclass
class _Calibration:
    """Measured residual cold-start bias rates, one per biased metric.

    Each biased metric has a *window*: a per-interval count bounding how
    far the warmed profile can sit from the true streamed count, and a
    direction (warming residue over-counts everything except taken
    bubbles, which cold predictor tables under-count).  ``bias[metric]``
    is the measured fraction of the window the correction removes;
    ``half[metric]`` is the halfwidth of the calibration uncertainty, as a
    fraction of the window.  Both live in [0, 1], so no correction can
    leave the window.

    Window choices per metric:

    * L1/TLB misses — the measured chunk's cold-miss count.  Exact: a
      reuse within the warming window has the same stack distance there
      and in the full stream, so only accesses cold within the window can
      change, each to a hit or a miss.
    * L2 misses — the measured chunk's L2 cold count plus the feeding L1's
      cold count: L1 cold misses inside the window inject L2 accesses the
      streamed L2 never sees, so the distortion extends beyond the L2's
      own cold misses.
    * mispredictions — the measured chunk's misprediction count (cold
      tables can only have turned would-be hits into that many extra
      mispredictions).
    * taken bubbles — also the misprediction count, upward: every bubble
      the cold tables lost is a taken branch they mispredicted.
    """

    bias: dict[str, float] = field(default_factory=dict)
    half: dict[str, float] = field(default_factory=dict)

    @classmethod
    def measure(cls, census: list[tuple[dict[str, int], int]],
                records: dict[int, IntervalRecord]) -> "_Calibration":
        """Compare streamed vs warmed counts over census chunks 1..w-1.

        Chunk 0 is excluded: its stream starts cold, so its warmed profile
        is already exact and measures nothing.
        """
        samples: dict[str, list[float]] = {}
        for position in range(1, len(census)):
            record = records.get(position)
            if record is None:
                continue
            exact, _ = census[position]
            for metric in MISS_METRICS:
                window = cls._window(record, metric)
                if window <= 0:
                    continue
                warmed = getattr(record.misses, metric)
                if metric == "taken_bubbles":
                    bias = (exact[metric] - warmed) / window
                else:
                    bias = (warmed - exact[metric]) / window
                samples.setdefault(metric, []).append(
                    min(1.0, max(0.0, bias))
                )
        calibration = cls()
        for metric in MISS_METRICS:
            observed = samples.get(metric, [])
            if observed:
                calibration.bias[metric] = sum(observed) / len(observed)
                calibration.half[metric] = min(0.5, _spread(observed))
            else:
                # Nothing to calibrate against: fall back to the window
                # midpoint with the full halfwindow as uncertainty.
                calibration.bias[metric] = 0.5
                calibration.half[metric] = 0.5
        return calibration

    @staticmethod
    def _window(record: IntervalRecord, metric: str) -> float:
        """Width of the metric's warmed-vs-streamed bias window."""
        source = _COLD_SOURCES.get(metric)
        if source is not None:
            window = record.cold[source]
            if metric == "il2_misses":
                window += record.cold["l1i"]
            elif metric == "dl2_misses":
                window += record.cold["l1d"]
            return float(min(window, getattr(record.misses, metric)))
        if metric in ("mispredictions", "taken_bubbles"):
            return float(record.misses.mispredictions)
        return 0.0

    def correct(self, record: IntervalRecord, metric: str) -> float:
        """The calibrated estimate of the metric's true streamed count."""
        warmed = getattr(record.misses, metric)
        window = self._window(record, metric)
        if window <= 0:
            return float(warmed)
        shift = self.bias[metric] * window
        if metric == "taken_bubbles":
            return warmed + shift
        return warmed - shift

    def halfwidth(self, record: IntervalRecord, metric: str) -> float:
        """Absolute halfwidth of the calibrated estimate's uncertainty."""
        return self.half.get(metric, 0.0) * self._window(record, metric)


def _model_penalties(machine: MachineConfig) -> dict[str, float]:
    """Cycles the model charges per event of each miss metric."""
    model = InOrderMechanisticModel(machine)
    return {
        "l1i_misses": model._miss_penalty(machine.l2_hit_cycles),
        "il2_misses": model._miss_penalty(machine.memory_cycles),
        "dl2_misses": model._miss_penalty(machine.memory_cycles),
        "itlb_misses": model._miss_penalty(machine.tlb_miss_cycles),
        "dtlb_misses": model._miss_penalty(machine.tlb_miss_cycles),
        "l1d_misses": model._long_latency_penalty(
            machine.l1_hit_cycles + machine.l2_hit_cycles
        ),
        "mispredictions": machine.frontend_depth + model._correction(),
        "taken_bubbles": penalties.taken_branch_penalty(),
        "conditional_branches": 0.0,
    }


# ----------------------------------------------------------------------
# The estimator.
# ----------------------------------------------------------------------
@dataclass
class SampledEvaluation:
    """A sampled model evaluation with per-metric error estimates.

    ``misses`` and ``program`` hold the *weighted, calibrated* aggregates
    (float counts); ``result`` is the model's prediction on them.
    ``cycles`` is rescaled so that ``cycles / instructions`` equals the
    estimated CPI at the workload's true instruction count.
    """

    name: str
    machine: MachineConfig
    plan: SamplingPlan
    mlp_window: int
    warming: int
    instructions: int
    cycles: float
    result: ModelResult
    misses: MissProfile
    program: ProgramProfile
    #: metric -> estimated relative error (confidence radius / estimate).
    est_rel_error: dict[str, float]
    #: Per selected interval: model CPI of the warmed interval.
    interval_cpis: tuple[float, ...]
    #: Weighted cold-start allowance cycles / estimated cycles.
    cold_bias_fraction: float
    cache_hits: int
    cache_misses: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles * self.machine.cycle_ns * 1e-9

    def to_dict(self) -> dict:
        """Sampling metadata in the shape the eval API attaches to results."""
        return {
            "schema_version": SAMPLING_SCHEMA_VERSION,
            "num_chunks": self.plan.num_chunks,
            "rate": self.plan.rate,
            "warmup": self.plan.warmup,
            "warming": self.warming,
            "intervals_profiled": self.plan.intervals_profiled,
            "fraction": self.plan.fraction,
            "cold_bias_fraction": self.cold_bias_fraction,
            "est_rel_error": dict(self.est_rel_error),
        }

    def to_eval_result(self):
        """This evaluation as a :class:`~repro.api.spec.EvalResult`.

        The result rides the declarative API's wire format (so it renders,
        serializes and batches like any backend's answer), tagged with
        backend ``analytical_sampled`` and carrying :meth:`to_dict` in the
        ``sampling`` field.
        """
        from repro.api.spec import (
            EvalRequest,
            EvalResult,
            MachineSpec,
            WorkloadSpec,
        )

        request = EvalRequest(
            workload=WorkloadSpec(name=self.name),
            machine=MachineSpec.parse(self.machine),
            backend="analytical_sampled",
            mlp_window=self.mlp_window,
        )
        return EvalResult(
            request=request,
            backend="analytical_sampled",
            workload=self.name,
            machine=self.machine.name,
            instructions=self.instructions,
            cycles=self.cycles,
            seconds=self.seconds,
            cpi_stack={component.value: cycles for component, cycles
                       in self.result.stack.cycles.items()},
            sampling=self.to_dict(),
        )


def sample_evaluate(chunked: ChunkedTrace, machine: MachineConfig,
                    rate: int, warmup: int = 4, warming: int = 1,
                    mlp_window: int = 64, kernels=None,
                    cache=None) -> SampledEvaluation:
    """Estimate the model's prediction for ``chunked`` from a sample.

    ``warmup`` chunks are streamed exactly and double as the calibration
    set (at least 3 are needed to measure the calibration spread; fewer
    fall back to conservative windows).  ``warming`` chunks are streamed
    state-only before every profiled interval.  ``cache`` is any
    mapping-like object (``get`` + ``__setitem__``) used to memoize
    per-interval records content-addressed by warming-window digest,
    machine fingerprint and MLP window — a plain dict works, as does the
    artifact cache's facade.  Re-sampling at a nested rate reuses every
    interval the two plans share.
    """
    plan = systematic_plan(chunked.num_chunks, rate, warmup)
    hits = misses_count = 0

    def interval_record(index: int) -> IntervalRecord:
        nonlocal hits, misses_count
        record = None
        key = None
        if cache is not None:
            key = interval_cache_key(chunked, index, machine, mlp_window,
                                     warming)
            record = cache.get(key)
            if record is not None and (
                record.schema_version != SAMPLING_SCHEMA_VERSION
            ):
                record = None
        if record is None:
            misses_count += 1
            record = profile_interval(chunked, index, machine, mlp_window,
                                      kernels, warming)
            if cache is not None:
                cache[key] = record
        else:
            hits += 1
        return record

    census_counts = _census_counts(chunked, plan, machine, mlp_window,
                                   kernels)
    census_records = {
        position: interval_record(index)
        for position, index in enumerate(plan.census)
        if position > 0  # position 0's warmed profile is its exact profile
    }
    calibration = _Calibration.measure(census_counts, census_records)
    selected_records = [
        (index, interval_record(index)) for index in plan.selected
    ]

    # ------------------------------------------------------------------
    # Weighted, calibrated aggregates (floats are fine: MissProfile is not
    # frozen and the model is linear in every count).
    # ------------------------------------------------------------------
    census_instructions = sum(
        chunked.chunk_bounds(index)[1] - chunked.chunk_bounds(index)[0]
        for index in plan.census
    )
    # Weight by instructions, not chunks: the weighted sample then covers
    # exactly the workload's true length, so the aggregate counts estimate
    # workload totals directly (no ragged-last-chunk skew).
    true_instructions = len(chunked)
    selected_instructions = sum(
        record.instructions for _, record in selected_records
    )
    if selected_instructions:
        weight = (true_instructions - census_instructions) / selected_instructions
    else:
        weight = 0.0
    total_instructions = census_instructions + weight * selected_instructions
    aggregate = MissProfile(
        machine=machine,
        instructions=total_instructions,
        **{
            metric: (
                sum(counts[metric] for counts, _ in census_counts)
                + weight * sum(
                    calibration.correct(record, metric)
                    for _, record in selected_records
                )
            )
            for metric in MISS_METRICS
        },
        dl2_miss_runs=(
            sum(runs for _, runs in census_counts)
            + weight * sum(
                record.misses.dl2_miss_runs for _, record in selected_records
            )
        ),
    )
    mix_counts: dict = {}
    mix_total = 0.0
    dependencies = DependencyProfile()
    # Census witnesses already carry their chunk's program (built inside
    # ``profile_interval``); only position 0 needs a fresh pass.
    census_programs = [
        census_records[position].program if position in census_records
        else _chunk_program(chunked.chunk(index), chunked.statics, kernels)
        for position, index in enumerate(plan.census)
    ]
    weighted_programs = [
        (1.0, program) for program in census_programs
    ] + [
        (weight, record.program) for _, record in selected_records
    ]
    for weight, chunk_program in weighted_programs:
        mix_total += weight * chunk_program.mix.total
        for op_class, count in chunk_program.mix.counts.items():
            mix_counts[op_class] = mix_counts.get(op_class, 0.0) + weight * count
        deps = chunk_program.dependencies
        for kind in ("unit", "long", "load"):
            histogram = dependencies.histogram(kind)
            for distance, count in deps.histogram(kind).items():
                histogram[distance] = (
                    histogram.get(distance, 0.0) + weight * count
                )
        dependencies.consumers += weight * deps.consumers
    program = ProgramProfile(
        name=chunked.name,
        instructions=total_instructions,
        mix=InstructionMix(total=mix_total, counts=mix_counts),
        dependencies=dependencies,
    )
    result = InOrderMechanisticModel(machine).predict(program, aggregate)
    # total_instructions == true_instructions by construction of ``weight``
    # (up to float rounding), so the model's cycles already sit at the
    # workload's true scale.
    cycles = result.cycles

    # ------------------------------------------------------------------
    # Error estimation: calibration allowance (weighted halfwidths) plus
    # sampling variance across selected intervals.
    # ------------------------------------------------------------------
    penalty = _model_penalties(machine)

    def corrected_cycles(record: IntervalRecord) -> float:
        delta = sum(
            penalty[metric] * (
                calibration.correct(record, metric)
                - getattr(record.misses, metric)
            )
            for metric in MISS_METRICS
        )
        return record.cycles + delta

    def cycles_halfwidth(record: IntervalRecord) -> float:
        return sum(
            penalty[metric] * calibration.halfwidth(record, metric)
            for metric in MISS_METRICS
        )

    estimated_cycles = result.cycles
    allowance_cycles = weight * sum(
        cycles_halfwidth(record) for _, record in selected_records
    )
    cold_bias_fraction = (
        allowance_cycles / estimated_cycles if estimated_cycles else 0.0
    )

    # Census chunks double as variance witnesses: their exact per-chunk
    # counts (and modelled cycles) are real observations of chunk-to-chunk
    # variability, which matters most when only one or two chunks were
    # sampled.  Chunk 0 is excluded — its cold start makes it atypical.
    census_cycles = []
    for position, (counts, runs) in enumerate(census_counts):
        chunk_misses = MissProfile(
            machine=machine,
            instructions=census_programs[position].instructions,
            dl2_miss_runs=runs,
            **counts,
        )
        census_cycles.append(
            InOrderMechanisticModel(machine)
            .predict(census_programs[position], chunk_misses)
            .cycles
        )
    witnesses: dict[str, list[float]] = {
        metric: [float(counts[metric]) for counts, _ in census_counts[1:]]
        for metric in MISS_METRICS
    }
    witnesses["cpi"] = list(census_cycles[1:])

    est_rel_error: dict[str, float] = {}
    count = len(selected_records)

    def pooled_spread(values: list[float], metric: str) -> float:
        """Z * sqrt(Var(total)) from the pooled per-chunk observations.

        Var(total) ~= weight^2 * m * Var(interval) for a systematic sample
        treated as simple random (the standard SMARTS approximation), with
        the interval variance pooled over sampled and census chunks.
        """
        pooled = values + witnesses.get(metric, [])
        if len(pooled) < 2:
            return 0.0
        mean = sum(pooled) / len(pooled)
        variance = sum((v - mean) ** 2 for v in pooled) / (len(pooled) - 1)
        return CONFIDENCE_Z * weight * math.sqrt(count * variance)

    metric_radius: dict[str, float] = {}
    for metric in MISS_METRICS:
        error = 0.0
        total = getattr(aggregate, metric)
        if not plan.exact and count:
            values = [
                calibration.correct(record, metric)
                for _, record in selected_records
            ]
            allowance = weight * sum(
                calibration.halfwidth(record, metric)
                for _, record in selected_records
            )
            # Shot-noise floor for sparse event counts: observing k events
            # bounds the underlying Poisson rate no tighter than
            # Z*sqrt(k) + 4 events.  The additive constant is the
            # rule-of-three zero-count bound widened one notch (~98%)
            # because systematic selection can alias against periodic
            # chunk behaviour, which a random-sampling bound ignores.
            observed = sum(values)
            shot = weight * (
                CONFIDENCE_Z * math.sqrt(max(observed, 0.0)) + 4.0
            )
            radius = max(pooled_spread(values, metric), shot) + allowance
            metric_radius[metric] = radius
            # A count of zero events still has one event of one-sided
            # uncertainty, so relative errors of near-empty metrics stay
            # meaningful (and huge, as they should be).
            error = radius / max(total, 1.0)
        est_rel_error[metric] = error

    cpi_error = 0.0
    if not plan.exact and count and estimated_cycles:
        cycle_values = [
            corrected_cycles(record) for _, record in selected_records
        ]
        # The per-metric sampling radii fold through the model's penalties
        # into a cycles radius (root-sum-square: the metrics' sampling
        # errors are treated as independent).  This keeps the CPI bar
        # honest when the cycle-level variance collapses — e.g. when the
        # sampled chunks aliased onto atypical miss behaviour — while the
        # count-level floors still register uncertainty.
        folded = math.sqrt(sum(
            (penalty[metric] * metric_radius.get(metric, 0.0)) ** 2
            for metric in MISS_METRICS
        ))
        spread = max(pooled_spread(cycle_values, "cpi"), folded)
        cpi_error = (spread + allowance_cycles) / estimated_cycles
    est_rel_error["cpi"] = cpi_error

    interval_cpis = tuple(
        record.cycles / record.instructions
        for _, record in selected_records if record.instructions
    )
    return SampledEvaluation(
        name=chunked.name,
        machine=machine,
        plan=plan,
        mlp_window=mlp_window,
        warming=warming,
        instructions=true_instructions,
        cycles=cycles,
        result=result,
        misses=aggregate,
        program=program,
        est_rel_error=est_rel_error,
        interval_cpis=interval_cpis,
        cold_bias_fraction=cold_bias_fraction,
        cache_hits=hits,
        cache_misses=misses_count,
    )
