"""Exact streamed profiling of chunked traces at bounded memory.

:class:`StreamingEngine` is the chunked-trace counterpart of
:class:`~repro.profiler.single_pass_engine.SinglePassEngine`: it answers
the same miss profiles and program profile, but walks a
:class:`~repro.trace.trace.ChunkedTrace` one chunk at a time through the
active kernel backend's chunk-resumable streams
(:meth:`~repro.accel.kernels.Kernels.base_stream` and friends).  Carried
state — LRU stacks, predictor tables and histories, L2 interleave
cursors, miss-run cursors, register writers — survives every chunk
boundary exactly, so the streamed results are **bit-identical** to the
in-memory engine's on the concatenated trace, while peak memory is one
chunk plus state proportional to the footprint (distinct lines), not to
the trace length.

Unlike the in-memory engine, the L2 miss stream is never materialized:
DL2 miss-run counts are accumulated during the walk for the
``(associativity, mlp_window)`` pairs the requested machines need.  The
engine gathers requirements per :meth:`profile_machines` call and walks
the trace once for everything still missing, so profiling a design space
costs one streamed walk per new front-end geometry — the same
amortization the in-memory engine provides.
"""

from __future__ import annotations

from repro.accel import BaseGeometry, Kernels, get_kernels
from repro.accel.kernels import PredictorBranchStream
from repro.branch.predictors import make_predictor
from repro.branch.profiler import BranchProfile
from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile
from repro.profiler.program import ProgramProfile
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.trace.trace import ChunkedTrace

#: Version of the streaming engine's cached-pass layout (persisted through
#: the artifact cache alongside the in-memory engine's state).
STREAMING_SCHEMA_VERSION = 1


class StreamingEngine:
    """Amortized streamed profiling of one chunked trace.

    All finished passes are cached exactly like the in-memory engine's;
    a :meth:`profile_machines` call walks the chunk sequence at most once,
    updating only the streams whose results are not cached yet.
    """

    def __init__(self, chunked: ChunkedTrace, kernels: Kernels | None = None,
                 max_dependency_distance: int = 64):
        self.chunked = chunked
        self.kernels = kernels if kernels is not None else get_kernels()
        self.max_dependency_distance = max_dependency_distance
        self._base_passes: dict[tuple, object] = {}
        self._l2_passes: dict[tuple, object] = {}
        self._branch_profiles: dict[str, BranchProfile] = {}
        self._program: ProgramProfile | None = None
        #: Number of streamed walks performed (observability / tests).
        self.walks = 0

    @classmethod
    def for_chunked(cls, chunked: ChunkedTrace) -> "StreamingEngine":
        """The engine attached to ``chunked`` (created and cached on demand)."""
        engine = getattr(chunked, "_streaming_engine", None)
        if engine is None:
            engine = cls(chunked)
            chunked._streaming_engine = engine
        return engine

    # ------------------------------------------------------------------
    # Persistence (mirrors SinglePassEngine's contract).
    # ------------------------------------------------------------------
    @property
    def pass_count(self) -> int:
        return (
            len(self._base_passes)
            + len(self._l2_passes)
            + len(self._branch_profiles)
            + (1 if self._program is not None else 0)
        )

    def export_state(self) -> dict:
        return {
            "base_passes": dict(self._base_passes),
            "l2_passes": dict(self._l2_passes),
            "branch_profiles": dict(self._branch_profiles),
            "program": self._program,
        }

    def install_state(self, state: dict) -> None:
        merged_base = dict(state["base_passes"])
        merged_base.update(self._base_passes)
        self._base_passes = merged_base
        merged_l2 = dict(state["l2_passes"])
        merged_l2.update(self._l2_passes)
        self._l2_passes = merged_l2
        merged_branches = dict(state["branch_profiles"])
        merged_branches.update(self._branch_profiles)
        self._branch_profiles = merged_branches
        if self._program is None:
            self._program = state["program"]

    # ------------------------------------------------------------------
    # Requirements gathering.
    # ------------------------------------------------------------------
    @staticmethod
    def _l2_key(machine: MachineConfig) -> tuple:
        line = machine.line_size
        sets = machine.l2_size // (machine.l2_associativity * line)
        return (tuple(SinglePassEngine._base_key(machine)), sets, line)

    def _ensure(self, machines, mlp_window: int, want_program: bool) -> None:
        """One streamed walk covering everything the request still misses."""
        base_geometries: set[BaseGeometry] = set()
        l2_requirements: dict[tuple, set] = {}
        branch_specs: set[str] = set()
        for machine in machines:
            base_geometries.add(SinglePassEngine._base_key(machine))
            key = self._l2_key(machine)
            l2_requirements.setdefault(key, set()).add(
                (machine.l2_associativity, mlp_window)
            )
            branch_specs.add(machine.branch_predictor)

        missing_bases = {
            geometry for geometry in base_geometries
            if geometry not in self._base_passes
        }
        missing_l2 = {}
        for key, run_keys in l2_requirements.items():
            cached = self._l2_passes.get(key)
            if cached is not None:
                run_keys = run_keys - set(cached._runs)
                if not run_keys:
                    continue
                # A new (associativity, window) pair: re-stream this L2
                # with the union so the refreshed pass still answers every
                # previously accumulated pair.
                run_keys = run_keys | set(cached._runs)
            missing_l2[key] = run_keys
        missing_branches = branch_specs - set(self._branch_profiles)
        want_program = want_program and self._program is None

        if not (missing_bases or missing_l2 or missing_branches
                or want_program):
            return

        # An L2 stream consumes its front-end geometry's miss stream, so
        # streaming an L2 (re)streams its base pass too — the recomputed
        # base pass is bit-identical to the cached one.
        base_streams = {
            geometry: self.kernels.base_stream(geometry)
            for geometry in missing_bases | {
                BaseGeometry(*key[0]) for key in missing_l2
            }
        }
        l2_streams = {
            key: self.kernels.l2_stream(key[1], key[2], sorted(run_keys))
            for key, run_keys in missing_l2.items()
        }
        branch_streams = {}
        for spec in missing_branches:
            stream = self.kernels.branch_stream(spec)
            if stream is None:
                # No accelerated replay for this predictor (e.g. a
                # third-party registration): interpreted reference replay.
                stream = PredictorBranchStream(make_predictor(spec))
            branch_streams[spec] = stream
        dependency_stream = mix_stream = None
        if want_program:
            dependency_stream = self.kernels.dependency_stream(
                self.chunked.statics, self.max_dependency_distance
            )
            mix_stream = self.kernels.mix_stream()

        self.walks += 1
        for chunk in self.chunked.chunks():
            slices = {
                geometry: stream.update(chunk)
                for geometry, stream in base_streams.items()
            }
            for key, stream in l2_streams.items():
                stream.update(*slices[BaseGeometry(*key[0])])
            if branch_streams:
                controls = self.kernels.control_stream(chunk)
                for stream in branch_streams.values():
                    stream.update(controls)
            if dependency_stream is not None:
                dependency_stream.update(chunk)
            if mix_stream is not None:
                mix_stream.update(chunk)

        for geometry, stream in base_streams.items():
            self._base_passes.setdefault(geometry, stream.finish())
        for key, stream in l2_streams.items():
            self._l2_passes[key] = stream.finish()
        for spec, stream in branch_streams.items():
            self._branch_profiles[spec] = stream.finish()
        if want_program:
            self._program = ProgramProfile(
                name=self.chunked.name,
                instructions=len(self.chunked),
                mix=mix_stream.finish(),
                dependencies=dependency_stream.finish(),
            )

    # ------------------------------------------------------------------
    # Assembly (identical to SinglePassEngine's, from streamed passes).
    # ------------------------------------------------------------------
    def profile_machines(self, machines, mlp_window: int = 64):
        """Miss profiles for ``machines``; at most one streamed trace walk."""
        machines = list(machines)
        self._ensure(machines, mlp_window, want_program=False)
        return [self._assemble(machine, mlp_window) for machine in machines]

    def miss_profile(self, machine: MachineConfig,
                     mlp_window: int = 64) -> MissProfile:
        return self.profile_machines([machine], mlp_window)[0]

    def program_profile(self) -> ProgramProfile:
        """The machine-independent program profile (streamed once)."""
        self._ensure([], mlp_window=64, want_program=True)
        return self._program

    def _assemble(self, machine: MachineConfig,
                  mlp_window: int) -> MissProfile:
        base = self._base_passes[SinglePassEngine._base_key(machine)]
        l2 = self._l2_passes[self._l2_key(machine)]
        branches = self._branch_profiles[machine.branch_predictor]
        l2_ways = machine.l2_associativity
        return MissProfile(
            machine=machine,
            instructions=len(self.chunked),
            l1i_misses=base.l1i.misses(machine.l1i_associativity),
            il2_misses=l2.instruction_misses(l2_ways),
            itlb_misses=base.itlb.misses(machine.tlb_entries),
            l1d_misses=base.l1d.misses(machine.l1d_associativity),
            dl2_misses=l2.data_misses(l2_ways),
            dtlb_misses=base.dtlb.misses(machine.tlb_entries),
            dl2_miss_runs=l2.data_miss_runs(l2_ways, mlp_window),
            mispredictions=branches.mispredictions,
            taken_bubbles=branches.taken_bubbles,
            conditional_branches=branches.conditional_branches,
        )
