"""Inter-instruction dependency-distance profiling (machine independent).

For every dynamic instruction that reads registers, the profiler finds the
producer of each source operand and records the dependency at the *shortest*
distance (the paper's convention when a consumer has two producers).  The
dependency is classified by its producer:

* ``unit``  — produced by a single-cycle ALU instruction (Eq. 11),
* ``long``  — produced by a multi-cycle arithmetic instruction, multiply or
  divide (Eq. 12),
* ``load``  — produced by a load (Eq. 16).

Distances are capped at :data:`MAX_DISTANCE`; the model only ever consults
distances below ``2W - 1``, so the cap is far above anything a realistic
width needs while keeping the histograms compact and machine independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_INT_REGS
from repro.trace.trace import Trace

#: Dependencies longer than this are irrelevant for any practical width.
MAX_DISTANCE = 64

#: Producer kinds used to classify dependencies.
KIND_UNIT = "unit"
KIND_LONG = "long"
KIND_LOAD = "load"


@dataclass
class DependencyProfile:
    """Histograms of dependency distances per producer kind."""

    unit: dict[int, int] = field(default_factory=dict)
    long: dict[int, int] = field(default_factory=dict)
    load: dict[int, int] = field(default_factory=dict)
    consumers: int = 0

    def histogram(self, kind: str) -> dict[int, int]:
        if kind == KIND_UNIT:
            return self.unit
        if kind == KIND_LONG:
            return self.long
        if kind == KIND_LOAD:
            return self.load
        raise KeyError(f"unknown dependency kind {kind!r}")

    def count(self, kind: str, distance: int) -> int:
        """Number of consumers depending on a ``kind`` producer at ``distance``."""
        return self.histogram(kind).get(distance, 0)

    def total(self, kind: str | None = None) -> int:
        if kind is None:
            return self.total(KIND_UNIT) + self.total(KIND_LONG) + self.total(KIND_LOAD)
        return sum(self.histogram(kind).values())

    def _record(self, kind: str, distance: int) -> None:
        histogram = self.histogram(kind)
        histogram[distance] = histogram.get(distance, 0) + 1


def _producer_kind(op_class: OpClass) -> str:
    if op_class is OpClass.LOAD:
        return KIND_LOAD
    if op_class in (OpClass.INT_MUL, OpClass.INT_DIV):
        return KIND_LONG
    return KIND_UNIT


def collect_dependencies(trace: Trace, max_distance: int = MAX_DISTANCE) -> DependencyProfile:
    """Collect the dependency-distance profile of ``trace``.

    The active :mod:`repro.accel` kernel backend answers first (the NumPy
    kernels resolve producers with vectorized searches over the packed
    columns, bit-identically); the interpreted walk below is the reference
    and the fallback.  Operand tuples and producer kinds are resolved once
    per *static* instruction, then the walk reads only the trace's packed
    ``static_index`` column — no per-instruction facade objects are
    materialized.
    """
    from repro.accel import get_kernels

    accelerated = get_kernels().dependency_profile(trace, max_distance)
    if accelerated is not None:
        return accelerated
    profile = DependencyProfile()
    # Per-static operand info: (sources, destinations, producer kind).
    operands = [
        (
            instruction.src_regs(),
            instruction.dest_regs(),
            _producer_kind(instruction.op_class),
        )
        for instruction in trace.statics
    ]
    # Most recent producer of each architectural register: (sequence, kind).
    last_writer: list[tuple[int, str] | None] = [None] * NUM_INT_REGS

    seqs = trace.seqs
    for index, static_slot in enumerate(trace.static_index):
        sources, destinations, kind = operands[static_slot]
        seq = seqs[index]
        if sources:
            best: tuple[int, str] | None = None
            for source in sources:
                producer = last_writer[source]
                if producer is None:
                    continue
                distance = seq - producer[0]
                if best is None or distance < best[0]:
                    best = (distance, producer[1])
            if best is not None and best[0] <= max_distance:
                profile.consumers += 1
                profile._record(best[1], best[0])
        for dest in destinations:
            last_writer[dest] = (seq, kind)
    return profile
