"""Machine-independent program profile (mix + dependencies)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiler.dependences import DependencyProfile, collect_dependencies
from repro.profiler.instruction_mix import InstructionMix, collect_instruction_mix
from repro.trace.trace import Trace


@dataclass
class ProgramProfile:
    """Program statistics of Table 1: instruction counts and dependency profiles.

    Collected once per binary; valid for every machine configuration.
    """

    name: str
    instructions: int
    mix: InstructionMix
    dependencies: DependencyProfile

    @property
    def multiplies(self) -> int:
        return self.mix.multiplies

    @property
    def divides(self) -> int:
        return self.mix.divides

    @property
    def loads(self) -> int:
        return self.mix.loads

    @property
    def stores(self) -> int:
        return self.mix.stores


def profile_program(trace: Trace) -> ProgramProfile:
    """Profile instruction mix and dependency distances of ``trace``."""
    return ProgramProfile(
        name=trace.name,
        instructions=len(trace),
        mix=collect_instruction_mix(trace),
        dependencies=collect_dependencies(trace),
    )
