"""Program-machine statistics: miss-event counts for one configuration.

By default the counts are assembled from the single-pass stack-distance
engine (:mod:`repro.profiler.single_pass_engine`), which walks the trace
once per cache geometry and once per branch predictor and answers every
machine configuration from cached histograms.  ``exact=True`` falls back to
the legacy replay path, which drives the trace through the same
:class:`~repro.memory.hierarchy.CacheHierarchy` and branch predictor the
detailed in-order simulator uses.  Both paths observe identical miss counts
(the engine is bit-identical by the LRU stack inclusion property), so the
model's prediction error measures modeling error, not measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.predictors import make_predictor
from repro.branch.profiler import BranchProfile, profile_branches
from repro.machine import MachineConfig
from repro.memory.hierarchy import AccessOutcome, CacheHierarchy
from repro.trace.trace import Trace


@dataclass
class MissProfile:
    """Miss-event counts for one (trace, machine) pair."""

    machine: MachineConfig
    instructions: int
    # Instruction side.
    l1i_misses: int = 0
    il2_misses: int = 0
    itlb_misses: int = 0
    # Data side (loads and stores).
    l1d_misses: int = 0
    dl2_misses: int = 0
    dtlb_misses: int = 0
    #: DL2 misses that start a new "miss run" (no other DL2 miss in the
    #: preceding ``rob`` instructions) — used by the out-of-order interval
    #: model to estimate memory-level parallelism.
    dl2_miss_runs: int = 0
    # Branches.
    mispredictions: int = 0
    taken_bubbles: int = 0
    conditional_branches: int = 0

    @property
    def l1i_l2_hits(self) -> int:
        return self.l1i_misses - self.il2_misses

    @property
    def l1d_l2_hits(self) -> int:
        return self.l1d_misses - self.dl2_misses

    @property
    def misprediction_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches


def profile_machine(trace: Trace, machine: MachineConfig,
                    mlp_window: int = 64, *, exact: bool = False) -> MissProfile:
    """Collect the miss-event counts of ``trace`` on ``machine``.

    ``mlp_window`` is the instruction window used to group data L2 misses
    into overlapping runs (an out-of-order core with a reorder buffer of that
    size could overlap them); the in-order model ignores it.

    The default path answers from the single-pass engine cached on the trace
    (one trace walk per cache geometry, amortized across configurations);
    ``exact=True`` forces the legacy full replay through
    :class:`CacheHierarchy` — useful as a cross-check or for replacement
    policies the stack-distance argument does not cover.
    """
    if exact:
        return _profile_machine_replay(trace, machine, mlp_window)
    from repro.profiler.single_pass_engine import SinglePassEngine

    return SinglePassEngine.for_trace(trace).miss_profile(machine, mlp_window)


def _profile_machine_replay(trace: Trace, machine: MachineConfig,
                            mlp_window: int = 64) -> MissProfile:
    """Legacy replay: drive the full trace through a fresh hierarchy."""
    hierarchy = CacheHierarchy(machine.memory_hierarchy_config())
    predictor = make_predictor(machine.branch_predictor)

    profile = MissProfile(machine=machine, instructions=len(trace))
    last_dl2_miss_seq: int | None = None

    branch_stats: BranchProfile = profile_branches(trace, predictor)
    profile.mispredictions = branch_stats.mispredictions
    profile.taken_bubbles = branch_stats.taken_bubbles
    profile.conditional_branches = branch_stats.conditional_branches

    for dyn in trace:
        outcome, itlb_miss = hierarchy.access_instruction(dyn.pc)
        if dyn.instruction.is_memory:
            data_outcome, dtlb_miss = hierarchy.access_data(
                dyn.mem_addr or 0, is_store=dyn.is_store
            )
            if data_outcome is AccessOutcome.MEMORY:
                if (last_dl2_miss_seq is None
                        or dyn.seq - last_dl2_miss_seq > mlp_window):
                    profile.dl2_miss_runs += 1
                last_dl2_miss_seq = dyn.seq

    stats = hierarchy.stats
    profile.l1i_misses = stats.l1i_misses
    profile.il2_misses = stats.il2_misses
    profile.itlb_misses = stats.itlb_misses
    profile.l1d_misses = stats.l1d_misses
    profile.dl2_misses = stats.dl2_misses
    profile.dtlb_misses = stats.dtlb_misses
    return profile
