"""Program-machine statistics: miss-event counts for one configuration.

The profiler replays the trace through the cache hierarchy and the branch
predictor of a :class:`~repro.machine.MachineConfig`, consulting them once per
dynamic instruction in trace order.  The detailed in-order simulator uses the
same access discipline, so both observe identical miss counts — the model's
prediction error therefore measures modeling error, not measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.predictors import make_predictor
from repro.branch.profiler import BranchProfile, profile_branches
from repro.machine import MachineConfig
from repro.memory.hierarchy import CacheHierarchy
from repro.trace.trace import Trace


@dataclass
class MissProfile:
    """Miss-event counts for one (trace, machine) pair."""

    machine: MachineConfig
    instructions: int
    # Instruction side.
    l1i_misses: int = 0
    il2_misses: int = 0
    itlb_misses: int = 0
    # Data side (loads and stores).
    l1d_misses: int = 0
    dl2_misses: int = 0
    dtlb_misses: int = 0
    #: DL2 misses that start a new "miss run" (no other DL2 miss in the
    #: preceding ``rob`` instructions) — used by the out-of-order interval
    #: model to estimate memory-level parallelism.
    dl2_miss_runs: int = 0
    # Branches.
    mispredictions: int = 0
    taken_bubbles: int = 0
    conditional_branches: int = 0

    @property
    def l1i_l2_hits(self) -> int:
        return self.l1i_misses - self.il2_misses

    @property
    def l1d_l2_hits(self) -> int:
        return self.l1d_misses - self.dl2_misses

    @property
    def misprediction_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches


def profile_machine(trace: Trace, machine: MachineConfig,
                    mlp_window: int = 64) -> MissProfile:
    """Collect the miss-event counts of ``trace`` on ``machine``.

    ``mlp_window`` is the instruction window used to group data L2 misses
    into overlapping runs (an out-of-order core with a reorder buffer of that
    size could overlap them); the in-order model ignores it.
    """
    hierarchy = CacheHierarchy(machine.memory_hierarchy_config())
    predictor = make_predictor(machine.branch_predictor)

    profile = MissProfile(machine=machine, instructions=len(trace))
    last_dl2_miss_seq: int | None = None

    branch_stats: BranchProfile = profile_branches(trace, predictor)
    profile.mispredictions = branch_stats.mispredictions
    profile.taken_bubbles = branch_stats.taken_bubbles
    profile.conditional_branches = branch_stats.conditional_branches

    for dyn in trace:
        outcome, itlb_miss = hierarchy.access_instruction(dyn.pc)
        if dyn.instruction.is_memory:
            data_outcome, dtlb_miss = hierarchy.access_data(
                dyn.mem_addr or 0, is_store=dyn.is_store
            )
            if data_outcome.name == "MEMORY":
                if (last_dl2_miss_seq is None
                        or dyn.seq - last_dl2_miss_seq > mlp_window):
                    profile.dl2_miss_runs += 1
                last_dl2_miss_seq = dyn.seq

    stats = hierarchy.stats
    profile.l1i_misses = stats.l1i_misses
    profile.il2_misses = stats.il2_misses
    profile.itlb_misses = stats.itlb_misses
    profile.l1d_misses = stats.l1d_misses
    profile.dl2_misses = stats.dl2_misses
    profile.dtlb_misses = stats.dtlb_misses
    return profile
