"""Instruction mix profiling (machine independent)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace


@dataclass
class InstructionMix:
    """Dynamic instruction counts per operation class."""

    total: int = 0
    counts: dict[OpClass, int] = field(default_factory=dict)

    def count(self, op_class: OpClass) -> int:
        return self.counts.get(op_class, 0)

    @property
    def loads(self) -> int:
        return self.count(OpClass.LOAD)

    @property
    def stores(self) -> int:
        return self.count(OpClass.STORE)

    @property
    def multiplies(self) -> int:
        return self.count(OpClass.INT_MUL)

    @property
    def divides(self) -> int:
        return self.count(OpClass.INT_DIV)

    @property
    def branches(self) -> int:
        return self.count(OpClass.BRANCH)

    @property
    def jumps(self) -> int:
        return self.count(OpClass.JUMP)

    @property
    def control(self) -> int:
        return self.branches + self.jumps

    def fraction(self, op_class: OpClass) -> float:
        return self.count(op_class) / self.total if self.total else 0.0


def collect_instruction_mix(trace: Trace) -> InstructionMix:
    """Histogram the dynamic instruction classes of ``trace``.

    The active :mod:`repro.accel` kernel backend answers first (one
    ``bincount`` over the packed column); the fallback delegates to the
    trace's columnar histogram, which counts the ``op_classes`` column
    instead of iterating facade objects.
    """
    from repro.accel import get_kernels

    accelerated = get_kernels().instruction_mix(trace)
    if accelerated is not None:
        return accelerated
    return InstructionMix(total=len(trace), counts=trace.instruction_mix())
