"""Single-pass design-space profiling engine.

The legacy profiler replays the full dynamic trace through a fresh
:class:`~repro.memory.hierarchy.CacheHierarchy` and branch predictor for
*every* machine configuration.  This engine exploits the LRU stack inclusion
property [Hill & Smith; Mattson et al.] to profile each trace **once per
cache geometry** instead:

* one *base pass* per L1/TLB front-end geometry walks the trace once,
  collecting stack-distance histograms for the L1I, the L1D and both
  fully-associative TLBs, and records the interleaved stream of L1 misses —
  exactly the access stream the unified L2 observes;
* one *L2 pass* per (sets, line size) geometry runs stack distances over
  that (much shorter) stream, splitting instruction- and data-side
  histograms and keeping the data-side (sequence, distance) pairs needed for
  the out-of-order model's miss-run (MLP) statistic;
* one *branch pass* per predictor specification replays only the control
  instructions (extracted once into packed arrays) through the predictor.

Because every structure is true-LRU, an access with stack distance ``d``
hits in an ``a``-way cache iff ``d < a`` — so the cached histograms answer
miss counts for *all* associativities, sizes and TLB capacities in a design
space without re-walking the trace, bit-identically to the legacy replay.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.branch.predictors import make_predictor
from repro.branch.profiler import BranchProfile, profile_control_stream
from repro.isa.opcodes import OpClass
from repro.machine import MachineConfig
from repro.memory.single_pass import SinglePassResult, StackDistanceProfiler
from repro.profiler.machine_stats import MissProfile
from repro.trace.trace import OP_CLASS_IDS, Trace

_LOAD_ID = OP_CLASS_IDS[OpClass.LOAD]
_STORE_ID = OP_CLASS_IDS[OpClass.STORE]
_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]

#: Instruction-side / data-side tags in the recorded L2 access stream.
_INSTRUCTION_SIDE = 0
_DATA_SIDE = 1

#: Version of the engine's cached-pass layout.  The on-disk artifact cache
#: (:mod:`repro.runtime.artifacts`) keys persisted engine state on this
#: number; bump it whenever the pass dataclasses or their keying change.
ENGINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class _BasePass:
    """One walk of the trace for a fixed L1/TLB front-end geometry."""

    l1i: SinglePassResult
    l1d: SinglePassResult
    itlb: SinglePassResult
    dtlb: SinglePassResult
    #: The unified L2's access stream (byte addresses, trace order).
    l2_addrs: array
    #: 0 = instruction fetch, 1 = load/store, per ``l2_addrs`` entry.
    l2_sides: array
    #: Dynamic sequence number of the instruction that caused each access.
    l2_seqs: array


@dataclass(frozen=True)
class _L2Pass:
    """Stack distances of the shared L2 stream for one (sets, line) geometry."""

    instruction_cold: int
    data_cold: int
    instruction_histogram: dict[int, int]
    data_histogram: dict[int, int]
    #: Data-side accesses only: (sequence, stack distance) with -1 = cold.
    data_seqs: array
    data_distances: array

    def instruction_misses(self, associativity: int) -> int:
        return self.instruction_cold + sum(
            count
            for distance, count in self.instruction_histogram.items()
            if distance >= associativity
        )

    def data_misses(self, associativity: int) -> int:
        return self.data_cold + sum(
            count
            for distance, count in self.data_histogram.items()
            if distance >= associativity
        )

    def data_miss_runs(self, associativity: int, mlp_window: int) -> int:
        """Number of DL2 "miss runs" (see :class:`MissProfile`)."""
        runs = 0
        last_seq = None
        for seq, distance in zip(self.data_seqs, self.data_distances):
            if distance < 0 or distance >= associativity:
                if last_seq is None or seq - last_seq > mlp_window:
                    runs += 1
                last_seq = seq
        return runs


class SinglePassEngine:
    """Amortized miss-event profiling of one trace across a design space.

    All passes are cached, so evaluating ``n`` machine configurations that
    share L1/TLB geometry costs one trace walk plus one short L2 pass per
    distinct L2 (sets, line size) geometry and one branch replay per
    distinct predictor — instead of ``n`` full replays.
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self._base_passes: dict[tuple, _BasePass] = {}
        self._l2_passes: dict[tuple, _L2Pass] = {}
        self._branch_profiles: dict[str, BranchProfile] = {}
        self._control_stream: tuple[array, array, array] | None = None

    @classmethod
    def for_trace(cls, trace: Trace) -> "SinglePassEngine":
        """The engine attached to ``trace`` (created and cached on demand)."""
        engine = getattr(trace, "_single_pass_engine", None)
        if engine is None:
            engine = cls(trace)
            trace._single_pass_engine = engine
        return engine

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    @property
    def pass_count(self) -> int:
        """Number of cached passes (base + L2 + branch); grows monotonically.

        The session layer compares this before and after a profile request to
        decide whether the persisted engine state is stale.
        """
        return (
            len(self._base_passes)
            + len(self._l2_passes)
            + len(self._branch_profiles)
            + (1 if self._control_stream is not None else 0)
        )

    def export_state(self) -> dict:
        """All cached passes as one picklable blob (keys are geometry tuples)."""
        return {
            "base_passes": dict(self._base_passes),
            "l2_passes": dict(self._l2_passes),
            "branch_profiles": dict(self._branch_profiles),
            "control_stream": self._control_stream,
        }

    def install_state(self, state: dict) -> None:
        """Adopt passes previously captured with :meth:`export_state`.

        Passes computed since the export win on key collisions (they are
        bit-identical anyway — the engine is deterministic per trace).
        """
        merged_base = dict(state["base_passes"])
        merged_base.update(self._base_passes)
        self._base_passes = merged_base
        merged_l2 = dict(state["l2_passes"])
        merged_l2.update(self._l2_passes)
        self._l2_passes = merged_l2
        merged_branches = dict(state["branch_profiles"])
        merged_branches.update(self._branch_profiles)
        self._branch_profiles = merged_branches
        if self._control_stream is None:
            self._control_stream = state["control_stream"]

    # ------------------------------------------------------------------
    # Passes.
    # ------------------------------------------------------------------
    @staticmethod
    def _base_key(machine: MachineConfig) -> tuple:
        """Front-end geometry key (stable across processes, unlike ``id``)."""
        return (
            machine.l1i_size, machine.l1i_associativity,
            machine.l1d_size, machine.l1d_associativity,
            machine.line_size, machine.page_size,
        )

    def _base_pass(self, machine: MachineConfig) -> _BasePass:
        line = machine.line_size
        key = self._base_key(machine)
        cached = self._base_passes.get(key)
        if cached is not None:
            return cached

        l1i = StackDistanceProfiler(
            machine.l1i_size // (machine.l1i_associativity * line), line
        )
        l1d = StackDistanceProfiler(
            machine.l1d_size // (machine.l1d_associativity * line), line
        )
        itlb = StackDistanceProfiler(1, machine.page_size)
        dtlb = StackDistanceProfiler(1, machine.page_size)
        i_access = l1i.access
        d_access = l1d.access
        itlb_access = itlb.access
        dtlb_access = dtlb.access
        i_ways = machine.l1i_associativity
        d_ways = machine.l1d_associativity

        l2_addrs = array("q")
        l2_sides = array("b")
        l2_seqs = array("q")
        addr_append = l2_addrs.append
        side_append = l2_sides.append
        seq_append = l2_seqs.append

        trace = self.trace
        pcs = trace.pcs
        mem_addrs = trace.mem_addrs
        op_classes = trace.op_classes
        seqs = trace.seqs
        for index, class_id in enumerate(op_classes):
            pc = pcs[index]
            itlb_access(pc)
            distance = i_access(pc)
            if distance < 0 or distance >= i_ways:
                addr_append(pc)
                side_append(_INSTRUCTION_SIDE)
                seq_append(seqs[index])
            if class_id == _LOAD_ID or class_id == _STORE_ID:
                # Memory rows always hold the address the memory system sees
                # (a raw -1 is a genuine address, not a sentinel).
                addr = mem_addrs[index]
                dtlb_access(addr)
                distance = d_access(addr)
                if distance < 0 or distance >= d_ways:
                    addr_append(addr)
                    side_append(_DATA_SIDE)
                    seq_append(seqs[index])

        result = _BasePass(
            l1i=l1i.result(),
            l1d=l1d.result(),
            itlb=itlb.result(),
            dtlb=dtlb.result(),
            l2_addrs=l2_addrs,
            l2_sides=l2_sides,
            l2_seqs=l2_seqs,
        )
        self._base_passes[key] = result
        return result

    def _l2_pass(self, machine: MachineConfig) -> _L2Pass:
        line = machine.line_size
        sets = machine.l2_size // (machine.l2_associativity * line)
        base = self._base_pass(machine)
        # Keyed on the front-end geometry (not ``id(base)``) so persisted
        # passes stay addressable after a pickle round trip.
        key = (self._base_key(machine), sets, line)
        cached = self._l2_passes.get(key)
        if cached is not None:
            return cached

        profiler = StackDistanceProfiler(sets, line)
        access = profiler.access
        instruction_cold = data_cold = 0
        instruction_histogram: dict[int, int] = {}
        data_histogram: dict[int, int] = {}
        data_seqs = array("q")
        data_distances = array("q")
        for addr, side, seq in zip(base.l2_addrs, base.l2_sides, base.l2_seqs):
            distance = access(addr)
            if side == _INSTRUCTION_SIDE:
                if distance < 0:
                    instruction_cold += 1
                else:
                    instruction_histogram[distance] = (
                        instruction_histogram.get(distance, 0) + 1
                    )
            else:
                if distance < 0:
                    data_cold += 1
                else:
                    data_histogram[distance] = data_histogram.get(distance, 0) + 1
                data_seqs.append(seq)
                data_distances.append(distance)

        result = _L2Pass(
            instruction_cold=instruction_cold,
            data_cold=data_cold,
            instruction_histogram=instruction_histogram,
            data_histogram=data_histogram,
            data_seqs=data_seqs,
            data_distances=data_distances,
        )
        self._l2_passes[key] = result
        return result

    def _controls(self) -> tuple[array, array, array]:
        """Packed (pc, taken, is conditional) stream of control instructions."""
        if self._control_stream is None:
            trace = self.trace
            pcs = trace.pcs
            takens = trace.taken
            control_pcs = array("q")
            control_taken = array("b")
            control_conditional = array("b")
            for index, class_id in enumerate(trace.op_classes):
                if class_id == _BRANCH_ID or class_id == _JUMP_ID:
                    control_pcs.append(pcs[index])
                    control_taken.append(1 if takens[index] == 1 else 0)
                    control_conditional.append(1 if class_id == _BRANCH_ID else 0)
            self._control_stream = (control_pcs, control_taken, control_conditional)
        return self._control_stream

    def branch_profile(self, predictor_spec: str) -> BranchProfile:
        """Branch statistics for one predictor configuration (cached)."""
        cached = self._branch_profiles.get(predictor_spec)
        if cached is not None:
            return cached
        control_pcs, control_taken, control_conditional = self._controls()
        profile = profile_control_stream(
            (
                (pc, taken == 1, conditional == 1)
                for pc, taken, conditional in zip(
                    control_pcs, control_taken, control_conditional
                )
            ),
            make_predictor(predictor_spec),
        )
        self._branch_profiles[predictor_spec] = profile
        return profile

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------
    def miss_profile(self, machine: MachineConfig,
                     mlp_window: int = 64) -> MissProfile:
        """Assemble the :class:`MissProfile` of ``machine`` from cached passes."""
        base = self._base_pass(machine)
        l2 = self._l2_pass(machine)
        branches = self.branch_profile(machine.branch_predictor)
        l2_ways = machine.l2_associativity
        return MissProfile(
            machine=machine,
            instructions=len(self.trace),
            l1i_misses=base.l1i.misses(machine.l1i_associativity),
            il2_misses=l2.instruction_misses(l2_ways),
            itlb_misses=base.itlb.misses(machine.tlb_entries),
            l1d_misses=base.l1d.misses(machine.l1d_associativity),
            dl2_misses=l2.data_misses(l2_ways),
            dtlb_misses=base.dtlb.misses(machine.tlb_entries),
            dl2_miss_runs=l2.data_miss_runs(l2_ways, mlp_window),
            mispredictions=branches.mispredictions,
            taken_bubbles=branches.taken_bubbles,
            conditional_branches=branches.conditional_branches,
        )
