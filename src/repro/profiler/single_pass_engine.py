"""Single-pass design-space profiling engine.

The legacy profiler replays the full dynamic trace through a fresh
:class:`~repro.memory.hierarchy.CacheHierarchy` and branch predictor for
*every* machine configuration.  This engine exploits the LRU stack inclusion
property [Hill & Smith; Mattson et al.] to profile each trace **once per
cache geometry** instead:

* one *base pass* per L1/TLB front-end geometry walks the trace once,
  collecting stack-distance histograms for the L1I, the L1D and both
  fully-associative TLBs, and records the interleaved stream of L1 misses —
  exactly the access stream the unified L2 observes;
* one *L2 pass* per (sets, line size) geometry runs stack distances over
  that (much shorter) stream, splitting instruction- and data-side
  histograms and keeping the data-side (sequence, distance) pairs needed for
  the out-of-order model's miss-run (MLP) statistic;
* one *branch pass* per predictor specification replays only the control
  instructions (extracted once into packed arrays) through the predictor.

Because every structure is true-LRU, an access with stack distance ``d``
hits in an ``a``-way cache iff ``d < a`` — so the cached histograms answer
miss counts for *all* associativities, sizes and TLB capacities in a design
space without re-walking the trace, bit-identically to the legacy replay.

The passes themselves are computed by the active :mod:`repro.accel` kernel
backend — vectorized NumPy kernels when available, the stdlib reference
otherwise; both produce bit-identical passes, so engine state is portable
across backends (and across the artifact cache).
"""

from __future__ import annotations

from repro.accel import BaseGeometry, BasePass, Kernels, L2Pass, get_kernels
from repro.branch.predictors import make_predictor
from repro.branch.profiler import BranchProfile, profile_control_stream
from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile
from repro.trace.trace import Trace

#: Backwards-compatible aliases (the pass dataclasses live in repro.accel now).
_BasePass = BasePass
_L2Pass = L2Pass

#: Version of the engine's cached-pass layout.  The on-disk artifact cache
#: (:mod:`repro.runtime.artifacts`) keys persisted engine state on this
#: number; bump it whenever the pass dataclasses or their keying change.
#: v2: passes moved to :mod:`repro.accel` and carry suffix-sum caches.
ENGINE_SCHEMA_VERSION = 2


class SinglePassEngine:
    """Amortized miss-event profiling of one trace across a design space.

    All passes are cached, so evaluating ``n`` machine configurations that
    share L1/TLB geometry costs one trace walk plus one short L2 pass per
    distinct L2 (sets, line size) geometry and one branch replay per
    distinct predictor — instead of ``n`` full replays.
    """

    def __init__(self, trace: Trace, kernels: Kernels | None = None):
        self.trace = trace
        self.kernels = kernels if kernels is not None else get_kernels()
        self._base_passes: dict[tuple, BasePass] = {}
        self._l2_passes: dict[tuple, L2Pass] = {}
        self._branch_profiles: dict[str, BranchProfile] = {}
        self._control_stream = None

    @classmethod
    def for_trace(cls, trace: Trace) -> "SinglePassEngine":
        """The engine attached to ``trace`` (created and cached on demand)."""
        engine = getattr(trace, "_single_pass_engine", None)
        if engine is None:
            engine = cls(trace)
            trace._single_pass_engine = engine
        return engine

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    @property
    def pass_count(self) -> int:
        """Number of cached passes (base + L2 + branch); grows monotonically.

        The session layer compares this before and after a profile request to
        decide whether the persisted engine state is stale.
        """
        return (
            len(self._base_passes)
            + len(self._l2_passes)
            + len(self._branch_profiles)
            + (1 if self._control_stream is not None else 0)
        )

    def export_state(self) -> dict:
        """All cached passes as one picklable blob (keys are geometry tuples)."""
        return {
            "base_passes": dict(self._base_passes),
            "l2_passes": dict(self._l2_passes),
            "branch_profiles": dict(self._branch_profiles),
            "control_stream": self._control_stream,
        }

    def install_state(self, state: dict) -> None:
        """Adopt passes previously captured with :meth:`export_state`.

        Passes computed since the export win on key collisions (they are
        bit-identical anyway — the engine is deterministic per trace,
        whichever kernel backend produced them).
        """
        merged_base = dict(state["base_passes"])
        merged_base.update(self._base_passes)
        self._base_passes = merged_base
        merged_l2 = dict(state["l2_passes"])
        merged_l2.update(self._l2_passes)
        self._l2_passes = merged_l2
        merged_branches = dict(state["branch_profiles"])
        merged_branches.update(self._branch_profiles)
        self._branch_profiles = merged_branches
        if self._control_stream is None:
            self._control_stream = state["control_stream"]

    # ------------------------------------------------------------------
    # Passes.
    # ------------------------------------------------------------------
    @staticmethod
    def _base_key(machine: MachineConfig) -> BaseGeometry:
        """Front-end geometry key (stable across processes, unlike ``id``)."""
        return BaseGeometry(
            machine.l1i_size, machine.l1i_associativity,
            machine.l1d_size, machine.l1d_associativity,
            machine.line_size, machine.page_size,
        )

    def _base_pass(self, machine: MachineConfig) -> BasePass:
        key = self._base_key(machine)
        cached = self._base_passes.get(key)
        if cached is None:
            cached = self.kernels.base_pass(self.trace, key)
            self._base_passes[key] = cached
        return cached

    def _l2_pass(self, machine: MachineConfig) -> L2Pass:
        line = machine.line_size
        sets = machine.l2_size // (machine.l2_associativity * line)
        base_key = self._base_key(machine)
        # Keyed on the front-end geometry (not ``id(base)``) so persisted
        # passes stay addressable after a pickle round trip.
        key = (tuple(base_key), sets, line)
        cached = self._l2_passes.get(key)
        if cached is None:
            cached = self.kernels.l2_pass(self._base_pass(machine), sets, line)
            self._l2_passes[key] = cached
        return cached

    def _controls(self):
        """Packed (pc, taken, is conditional) stream of control instructions."""
        if self._control_stream is None:
            self._control_stream = self.kernels.control_stream(self.trace)
        return self._control_stream

    def branch_profile(self, predictor_spec: str) -> BranchProfile:
        """Branch statistics for one predictor configuration (cached)."""
        cached = self._branch_profiles.get(predictor_spec)
        if cached is not None:
            return cached
        controls = self._controls()
        profile = self.kernels.branch_profile(controls, predictor_spec)
        if profile is None:
            # No accelerated replay for this predictor (e.g. a third-party
            # registration): fall back to the interpreted reference replay.
            control_pcs, control_taken, control_conditional = controls
            profile = profile_control_stream(
                (
                    (pc, taken == 1, conditional == 1)
                    for pc, taken, conditional in zip(
                        control_pcs, control_taken, control_conditional
                    )
                ),
                make_predictor(predictor_spec),
            )
        self._branch_profiles[predictor_spec] = profile
        return profile

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------
    def miss_profile(self, machine: MachineConfig,
                     mlp_window: int = 64) -> MissProfile:
        """Assemble the :class:`MissProfile` of ``machine`` from cached passes."""
        base = self._base_pass(machine)
        l2 = self._l2_pass(machine)
        branches = self.branch_profile(machine.branch_predictor)
        l2_ways = machine.l2_associativity
        return MissProfile(
            machine=machine,
            instructions=len(self.trace),
            l1i_misses=base.l1i.misses(machine.l1i_associativity),
            il2_misses=l2.instruction_misses(l2_ways),
            itlb_misses=base.itlb.misses(machine.tlb_entries),
            l1d_misses=base.l1d.misses(machine.l1d_associativity),
            dl2_misses=l2.data_misses(l2_ways),
            dtlb_misses=base.dtlb.misses(machine.tlb_entries),
            dl2_miss_runs=l2.data_miss_runs(l2_ways, mlp_window,
                                            self.kernels.count_runs),
            mispredictions=branches.mispredictions,
            taken_bubbles=branches.taken_bubbles,
            conditional_branches=branches.conditional_branches,
        )
