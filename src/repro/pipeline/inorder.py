"""Cycle-accurate superscalar in-order pipeline simulator.

The simulator is trace driven: it replays the committed dynamic instruction
stream produced by the functional simulator and computes, for every
instruction, the cycle in which it is fetched and the cycle in which it
enters the execute stage, honouring

* W-wide fetch, decode and issue (width constraint per cycle),
* a front-end of D stages between fetch and execute,
* finite front-end buffering (fetch stalls when decode backs up),
* instruction cache / ITLB misses stalling fetch,
* a one-cycle fetch bubble for every correctly predicted taken branch,
* branch mispredictions redirecting fetch when the branch executes,
* stall-on-use with full forwarding (dependent instructions wait in decode),
* non-unit execute latencies (multiply/divide) blocking the execute stage,
* data cache / DTLB misses blocking the memory stage (and therefore entry
  into the execute stage), and
* in-order commit.

Wrong-path instructions are not replayed (their effect is modelled as lost
fetch cycles), which is the standard trace-driven simplification and matches
the first-order assumptions of the analytical model being validated.

The cache hierarchy and the branch predictor are consulted once per dynamic
instruction in trace order — exactly like the profiler in
:mod:`repro.profiler` — so the detailed simulator and the analytical model
observe identical miss-event counts for a given configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictors import make_predictor
from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_INT_REGS
from repro.machine import BACKEND_STAGES, MachineConfig
from repro.memory.hierarchy import CacheHierarchy, HierarchyStats
from repro.trace.trace import Trace


@dataclass
class InOrderResult:
    """Outcome of one detailed in-order simulation."""

    machine: MachineConfig
    instructions: int
    cycles: int
    mispredictions: int
    taken_bubbles: int
    hierarchy_stats: HierarchyStats = field(repr=False, default_factory=HierarchyStats)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def execution_time_seconds(self) -> float:
        return self.cycles * self.machine.cycle_ns * 1e-9


class InOrderPipeline:
    """Trace-driven cycle-accurate model of the paper's in-order processor."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    def run(self, trace: Trace) -> InOrderResult:
        machine = self.machine
        width = machine.width
        depth = machine.frontend_depth
        capacity = max(1, depth * width)

        hierarchy = CacheHierarchy(machine.memory_hierarchy_config())
        predictor = make_predictor(machine.branch_predictor)

        # Earliest cycle at which a consumer of each register may enter execute.
        reg_ready = [0] * NUM_INT_REGS
        # Issue cycles of the most recent `capacity` instructions (front-end
        # backpressure) — a ring buffer indexed by sequence number.
        recent_issues = [0] * capacity

        fetch_cycle = 0          # cycle in which the next instruction is fetched
        fetch_slots = 0          # instructions already fetched in that cycle
        exec_free = 0            # earliest cycle execute accepts a new instruction
        last_issue = -1          # issue cycle of the previous instruction
        issued_in_cycle = 0      # how many instructions issued in `last_issue`
        redirect_at = -1         # pending fetch redirect (branch misprediction)

        mispredictions = 0
        taken_bubbles = 0
        issue = 0

        for index, dyn in enumerate(trace):
            instruction = dyn.instruction

            # ----------------------------------------------------------
            # Fetch.
            # ----------------------------------------------------------
            if redirect_at >= 0:
                # The previous (mispredicted) branch redirects fetch when it
                # resolves at the end of its execute cycle.
                if redirect_at > fetch_cycle or fetch_slots:
                    fetch_cycle = max(fetch_cycle, redirect_at)
                    fetch_slots = 0
                redirect_at = -1

            # Front-end buffering: instruction `index` can only be fetched
            # once instruction `index - capacity` has left the front end.
            if index >= capacity:
                oldest_issue = recent_issues[index % capacity]
                if oldest_issue > fetch_cycle:
                    fetch_cycle = oldest_issue
                    fetch_slots = 0

            outcome, itlb_miss = hierarchy.access_instruction(dyn.pc)
            fetch_latency = hierarchy.latency_of(outcome, itlb_miss)
            if fetch_latency > 1:
                # The I-cache (or ITLB) miss stalls fetch; this instruction is
                # delivered once the line arrives, starting a fresh group.
                fetch_cycle += fetch_latency - 1 + (1 if fetch_slots else 0)
                fetch_slots = 0

            fetched_at = fetch_cycle
            fetch_slots += 1
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0

            available = fetched_at + depth

            # Branch prediction happens alongside fetch/decode.
            taken_bubble = False
            mispredicted = False
            if dyn.is_control:
                actually_taken = bool(dyn.taken)
                if instruction.is_branch:
                    prediction = predictor.predict(dyn.pc)
                    predictor.update(dyn.pc, actually_taken)
                    mispredicted = prediction != actually_taken
                    taken_bubble = (not mispredicted) and actually_taken
                else:
                    # Unconditional jumps are always predicted taken.
                    taken_bubble = True
                if taken_bubble:
                    taken_bubbles += 1
                    # The redirect to the target is known one cycle after the
                    # branch was fetched: the next fetch cycle is a bubble.
                    fetch_cycle = max(fetch_cycle, fetched_at + 2)
                    fetch_slots = 0
                if mispredicted:
                    mispredictions += 1

            # ----------------------------------------------------------
            # Issue (decode -> execute).
            # ----------------------------------------------------------
            issue = max(available, exec_free, last_issue)
            for source in instruction.src_regs():
                ready = reg_ready[source]
                if ready > issue:
                    issue = ready
            if issue == last_issue and issued_in_cycle >= width:
                issue += 1
            if issue == last_issue:
                issued_in_cycle += 1
            else:
                last_issue = issue
                issued_in_cycle = 1
            recent_issues[index % capacity] = issue

            # ----------------------------------------------------------
            # Execute / memory behaviour.
            # ----------------------------------------------------------
            op_class = dyn.op_class
            if op_class in (OpClass.INT_MUL, OpClass.INT_DIV):
                latency = machine.execute_latency(op_class)
                exec_free = max(exec_free, issue + latency)
                for dest in instruction.dest_regs():
                    reg_ready[dest] = issue + latency
            elif op_class.is_memory:
                data_outcome, dtlb_miss = hierarchy.access_data(
                    dyn.mem_addr or 0, is_store=dyn.is_store
                )
                access_latency = hierarchy.latency_of(data_outcome, dtlb_miss)
                if access_latency > 1:
                    # The memory stage blocks; nothing may enter execute while
                    # the miss (or multi-cycle hit) is outstanding.
                    exec_free = max(exec_free, issue + access_latency)
                for dest in instruction.dest_regs():
                    # Loads produce their value at the end of the memory stage.
                    reg_ready[dest] = issue + 1 + access_latency
            else:
                for dest in instruction.dest_regs():
                    reg_ready[dest] = issue + 1

            if mispredicted:
                # Fetch restarts at the correct target once the branch has
                # executed (end of its execute cycle).
                redirect_at = issue + 1

        total_cycles = max(issue, exec_free) + BACKEND_STAGES
        return InOrderResult(
            machine=machine,
            instructions=len(trace),
            cycles=total_cycles,
            mispredictions=mispredictions,
            taken_bubbles=taken_bubbles,
            hierarchy_stats=hierarchy.stats,
        )
