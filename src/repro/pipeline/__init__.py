"""Cycle-accurate pipeline simulators.

:mod:`repro.pipeline.inorder` implements the superscalar in-order processor
described in Section 2.2 of the paper (W-wide fetch/decode/execute/memory/
write-back pipeline with forwarding, stall-on-use and in-order commit).  It
plays the role of M5's detailed cycle-accurate simulator: the reference
against which the mechanistic model is validated.

:mod:`repro.pipeline.ooo` implements a ROB-based out-of-order core used by
the in-order versus out-of-order comparison (Figure 7).
"""

from repro.pipeline.inorder import InOrderPipeline, InOrderResult
from repro.pipeline.ooo import OutOfOrderConfig, OutOfOrderPipeline, OutOfOrderResult

__all__ = [
    "InOrderPipeline",
    "InOrderResult",
    "OutOfOrderPipeline",
    "OutOfOrderConfig",
    "OutOfOrderResult",
]
