"""Trace-driven out-of-order pipeline model.

Used by the in-order versus out-of-order comparison (Figure 7 of the paper).
The model captures the first-order properties that matter for that
comparison:

* W-wide dispatch and commit, in order, through a reorder buffer,
* out-of-order issue as soon as operands are ready (dataflow limited),
* non-blocking caches: independent load misses overlap (memory-level
  parallelism), bounded by a number of MSHRs,
* branch mispredictions redirect fetch when the branch executes, so the
  penalty includes the branch resolution time plus the front-end refill,
* long-latency arithmetic does not block independent younger instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.predictors import make_predictor
from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_INT_REGS
from repro.machine import BACKEND_STAGES, MachineConfig
from repro.memory.hierarchy import CacheHierarchy, HierarchyStats
from repro.trace.trace import Trace


@dataclass(frozen=True)
class OutOfOrderConfig:
    """Out-of-order specific parameters layered on a :class:`MachineConfig`."""

    rob_size: int = 64
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.rob_size < 1:
            raise ValueError("rob_size must be positive")
        if self.mshrs < 1:
            raise ValueError("mshrs must be positive")


@dataclass
class OutOfOrderResult:
    """Outcome of one out-of-order simulation."""

    machine: MachineConfig
    instructions: int
    cycles: int
    mispredictions: int
    hierarchy_stats: HierarchyStats = field(repr=False, default_factory=HierarchyStats)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OutOfOrderPipeline:
    """A ROB/dataflow timing model of a superscalar out-of-order core."""

    def __init__(self, machine: MachineConfig, ooo: OutOfOrderConfig | None = None):
        self.machine = machine
        self.ooo = ooo if ooo is not None else OutOfOrderConfig()

    def run(self, trace: Trace) -> OutOfOrderResult:
        machine = self.machine
        width = machine.width
        depth = machine.frontend_depth
        rob_size = self.ooo.rob_size
        mshrs = self.ooo.mshrs

        hierarchy = CacheHierarchy(machine.memory_hierarchy_config())
        predictor = make_predictor(machine.branch_predictor)

        reg_ready = [0] * NUM_INT_REGS
        commit_history = [0] * rob_size        # commit cycles, ring buffer
        outstanding_misses: list[int] = []     # completion cycles of in-flight misses

        fetch_cycle = 0
        fetch_slots = 0
        last_dispatch = -1
        dispatched_in_cycle = 0
        last_commit = -1
        committed_in_cycle = 0
        redirect_at = -1
        mispredictions = 0
        commit = 0

        for index, dyn in enumerate(trace):
            instruction = dyn.instruction

            # ---------------- fetch ----------------
            if redirect_at >= 0:
                fetch_cycle = max(fetch_cycle, redirect_at)
                fetch_slots = 0
                redirect_at = -1

            outcome, itlb_miss = hierarchy.access_instruction(dyn.pc)
            fetch_latency = hierarchy.latency_of(outcome, itlb_miss)
            if fetch_latency > 1:
                fetch_cycle += fetch_latency - 1 + (1 if fetch_slots else 0)
                fetch_slots = 0
            fetched_at = fetch_cycle
            fetch_slots += 1
            if fetch_slots >= width:
                fetch_cycle += 1
                fetch_slots = 0

            mispredicted = False
            if dyn.is_control:
                actually_taken = bool(dyn.taken)
                if instruction.is_branch:
                    prediction = predictor.predict(dyn.pc)
                    predictor.update(dyn.pc, actually_taken)
                    mispredicted = prediction != actually_taken
                if actually_taken and not mispredicted:
                    # Taken transfers cost one fetch bubble, as on the in-order core.
                    fetch_cycle = max(fetch_cycle, fetched_at + 2)
                    fetch_slots = 0

            # ---------------- dispatch ----------------
            dispatch = max(fetched_at + depth, last_dispatch)
            if index >= rob_size:
                # ROB full: wait until the oldest occupant has committed.
                dispatch = max(dispatch, commit_history[index % rob_size])
            if dispatch == last_dispatch and dispatched_in_cycle >= width:
                dispatch += 1
            if dispatch == last_dispatch:
                dispatched_in_cycle += 1
            else:
                last_dispatch = dispatch
                dispatched_in_cycle = 1

            # ---------------- issue / execute (dataflow) ----------------
            ready = dispatch
            for source in instruction.src_regs():
                if reg_ready[source] > ready:
                    ready = reg_ready[source]

            op_class = dyn.op_class
            if op_class in (OpClass.INT_MUL, OpClass.INT_DIV):
                finish = ready + machine.execute_latency(op_class)
            elif op_class.is_memory:
                data_outcome, dtlb_miss = hierarchy.access_data(
                    dyn.mem_addr or 0, is_store=dyn.is_store
                )
                access_latency = hierarchy.latency_of(data_outcome, dtlb_miss)
                start = ready
                if access_latency > 1:
                    # Limited MSHRs: a new miss waits until a slot frees up.
                    outstanding_misses = [
                        done for done in outstanding_misses if done > start
                    ]
                    if len(outstanding_misses) >= mshrs:
                        start = max(start, min(outstanding_misses))
                        outstanding_misses = [
                            done for done in outstanding_misses if done > start
                        ]
                    outstanding_misses.append(start + access_latency)
                finish = start + access_latency
            else:
                finish = ready + 1

            for dest in instruction.dest_regs():
                reg_ready[dest] = finish

            if mispredicted:
                mispredictions += 1
                redirect_at = finish + 1

            # ---------------- commit ----------------
            commit = max(finish + 1, last_commit)
            if commit == last_commit and committed_in_cycle >= width:
                commit += 1
            if commit == last_commit:
                committed_in_cycle += 1
            else:
                last_commit = commit
                committed_in_cycle = 1
            commit_history[index % rob_size] = commit

        total_cycles = commit + BACKEND_STAGES
        return OutOfOrderResult(
            machine=machine,
            instructions=len(trace),
            cycles=total_cycles,
            mispredictions=mispredictions,
            hierarchy_stats=hierarchy.stats,
        )
