"""NumPy-vectorized profiling kernels (bit-identical to the reference).

Every kernel reproduces the pure-Python reference
(:class:`~repro.accel.kernels.PythonKernels`) exactly — all counts are
integers computed by exact algorithms, so there is no floating-point
tolerance anywhere, only equality.

Vectorization notes
-------------------
**Stack distances.**  The per-set LRU stack walk is replaced by an exact
offline formulation.  Arrange the accesses grouped by set (stable, so
each set's subsequence stays in trace order and occupies a contiguous
block) and collapse runs of consecutive same-line accesses (repeats have
distance 0 and never change a window's *distinct* count).  The stack
distance of a warm access is the number of distinct same-set lines in its
reuse window ``(prev, i)``: give every line one bit of a per-set-dense
bitmask, and the distinct count becomes ``popcount(OR)`` over the window.
ORs over arbitrary windows come from a sparse table of power-of-two
windows built by in-place doubling — OR is idempotent, so two overlapping
power-of-two sub-windows cover any window exactly.  Tiny fully
associative footprints (TLBs) skip the table and count, per line, whether
its latest occurrence falls inside the window.  No Python-level
per-access work remains.

**Branch predictors.**  Two-bit saturating counters are four-state
automata; each outcome is a state map, and maps compose associatively.  A
map packs into one byte (2 bits per state), composition is a 256x256
table lookup, and the per-slot pre-update states come from a segmented
Hillis-Steele scan over the packed maps — grouped by table slot, because
slots evolve independently.  Global (gshare) and per-PC (local) histories
are sliding windows over the taken bits, computed with shifted adds.

**Dependencies.**  Reads and writes fold into composite
register-position keys; one ``searchsorted`` drops each write at its
insertion point in the read sequence and a running maximum forward-fills
every read's latest visible producer.  The shortest-distance/first-source
tie rule is a two-step scatter fold.

**Batched model evaluation.**  ``predict_batch`` evaluates the
mechanistic model for a whole configuration list at once: per-machine
penalty scalars come from the exact scalar code (Python floats), and only
the per-configuration products and the ordered component sum are
vectorized — the same IEEE-754 operations in the same order, so cycles
and CPI stacks match the scalar model bit for bit.
"""

from __future__ import annotations

from array import array
from operator import attrgetter

import numpy as np

from repro.accel.kernels import (
    DATA_SIDE,
    INSTRUCTION_SIDE,
    BaseGeometry,
    ControlStream,
    Kernels,
)
from repro.accel.passes import BasePass, L2Pass, StreamedL2Pass
from repro.branch.predictors import PREDICTORS
from repro.branch.profiler import BranchProfile
from repro.isa.opcodes import OpClass
from repro.isa.registers import NUM_INT_REGS
from repro.memory.single_pass import SinglePassResult
from repro.profiler.dependences import (
    KIND_LOAD,
    KIND_LONG,
    KIND_UNIT,
    DependencyProfile,
)
from repro.trace.trace import OP_CLASS_IDS, Trace

_LOAD_ID = OP_CLASS_IDS[OpClass.LOAD]
_STORE_ID = OP_CLASS_IDS[OpClass.STORE]
_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]

#: Miss-profile counter fields consumed by the batched model evaluation.
_MISS_FIELDS = attrgetter(
    "l1d_misses", "l1i_misses", "il2_misses", "dl2_misses",
    "itlb_misses", "dtlb_misses", "mispredictions", "taken_bubbles",
)


# ----------------------------------------------------------------------
# Column views.
# ----------------------------------------------------------------------
def _as_i64(column) -> np.ndarray:
    """Zero-copy int64 view of a packed ``array('q')`` column."""
    if isinstance(column, np.ndarray):
        return column.astype(np.int64, copy=False)
    if isinstance(column, range):
        return np.arange(column.start, column.stop, column.step, dtype=np.int64)
    if isinstance(column, array) and column.typecode == "q" and len(column):
        return np.frombuffer(column, dtype=np.int64)
    if isinstance(column, memoryview) and column.format == "q" and len(column):
        # Shared-memory attached trace: the view maps the segment directly.
        return np.frombuffer(column, dtype=np.int64)
    return np.asarray(column, dtype=np.int64)


def _as_i8(column) -> np.ndarray:
    """Zero-copy int8 view of a packed ``array('b')`` column."""
    if isinstance(column, array) and column.typecode == "b" and len(column):
        return np.frombuffer(column, dtype=np.int8)
    if isinstance(column, memoryview) and column.format == "b" and len(column):
        return np.frombuffer(column, dtype=np.int8)
    return np.asarray(column, dtype=np.int8)


def _to_q(values: np.ndarray) -> array:
    out = array("q")
    out.frombytes(values.astype(np.int64, copy=False).tobytes())
    return out


def _to_b(values: np.ndarray) -> array:
    out = array("b")
    out.frombytes(values.astype(np.int8, copy=False).tobytes())
    return out


def _validate_geometry(sets: int, line_size: int) -> None:
    """Mirror :class:`StackDistanceProfiler`'s constructor checks exactly."""
    if sets <= 0 or sets & (sets - 1):
        raise ValueError("sets must be a positive power of two")
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError("line_size must be a positive power of two")


def _stable_argsort_ints(values: np.ndarray) -> np.ndarray:
    """Stable argsort of integers, radix-sorted 16 bits at a time.

    NumPy's stable sort only uses radix for 8/16-bit integers; cache lines,
    set indices and predictor-table slots live in tiny ranges, so shifting
    to zero and sorting by 16-bit digits (LSD order, each pass stable) is
    several times faster than a 64-bit merge sort.
    """
    if values.size == 0:
        return np.empty(0, dtype=np.intp)
    low = int(values.min())
    span = int(values.max()) - low
    if span >= (1 << 62):  # subtraction could overflow: take the slow path
        return np.argsort(values, kind="stable")
    if span < (1 << 15):
        return np.argsort((values - low).astype(np.int16), kind="stable")
    shifted = (values - low).astype(np.uint64)
    perm = None
    shift = 0
    while True:
        digit = ((shifted >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.uint16)
        if perm is None:
            perm = np.argsort(digit, kind="stable")
        else:
            perm = perm[np.argsort(digit[perm], kind="stable")]
        shift += 16
        if (span >> shift) == 0:
            return perm


# ----------------------------------------------------------------------
# Exact stack distances.
# ----------------------------------------------------------------------
def _stack_distances(lines: np.ndarray, set_ids: np.ndarray,
                     single_set: bool = False) -> np.ndarray:
    """Exact per-set LRU stack distances (-1 = cold), original order.

    The stack distance of a warm access equals the number of distinct
    same-set lines touched inside its reuse window ``(prev, i)``.  Each
    line gets one bit of a per-set-dense bitmask; the distinct count of a
    window is then ``popcount(OR)`` over the window, and ORs over arbitrary
    windows come from a sparse table of power-of-two windows (built with
    log2 in-place doubling steps, since OR is idempotent two overlapping
    power-of-two sub-windows cover any window exactly).

    Work is O(n log n + n * lanes) where ``lanes`` is the per-set distinct
    line count divided by 64 — effectively linear for cache-shaped streams,
    where per-set footprints are small.
    """
    n = int(lines.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if single_set:
        arrange = None
        a_lines = lines
        a_sets = None
    else:
        # Group accesses by set; stable, so each set's block keeps trace
        # order and every reuse window stays inside one contiguous block.
        arrange = _stable_argsort_ints(set_ids)
        a_lines = lines[arrange]
        a_sets = set_ids[arrange]

    # Run compression: sequential streams re-touch the same line many times
    # in a row.  A repeat access has distance 0 by definition, and
    # duplicates inside any reuse window never change its *distinct* count,
    # so the core algorithm only needs the first access of every run (equal
    # consecutive lines are the same set, so runs never span set blocks).
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(a_lines[1:], a_lines[:-1], out=starts[1:])
    firsts = np.flatnonzero(starts)
    if firsts.size < n:
        compressed = _grouped_distances(
            a_lines[firsts],
            a_sets[firsts] if a_sets is not None else None, single_set,
        )
        arranged_out = np.zeros(n, dtype=np.int64)
        arranged_out[firsts] = compressed
    else:
        arranged_out = _grouped_distances(a_lines, a_sets, single_set)
    if arrange is None:
        return arranged_out
    out = np.empty(n, dtype=np.int64)
    out[arrange] = arranged_out
    return out


def _grouped_distances(a_lines: np.ndarray, a_sets: np.ndarray | None,
                       single_set: bool) -> np.ndarray:
    """Core stack-distance algorithm over a set-grouped access stream."""
    n = int(a_lines.size)
    # One stable sort by line yields everything: previous-occurrence links
    # (neighbours inside equal-line runs), first occurrences, and the dense
    # line ids (run index) — same line => same set => same block.
    order = _stable_argsort_ints(a_lines)
    ordered = a_lines[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    same[1:] = ordered[1:] == ordered[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[order[1:]] = np.where(same[1:], order[:-1], -1)
    line_of = np.cumsum(~same) - 1  # dense line id, in sorted order
    first_at = order[np.flatnonzero(~same)]
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = line_of

    # Per-set-dense line ids, so each set's bitmask lanes stay compact.
    if single_set:
        dense = inverse
    else:
        line_sets = a_sets[first_at]
        set_order = _stable_argsort_ints(line_sets)
        grouped = line_sets[set_order]
        boundary = np.empty(grouped.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = grouped[1:] != grouped[:-1]
        starts = np.flatnonzero(boundary)
        rank = np.arange(grouped.size, dtype=np.int64)
        rank -= starts[np.cumsum(boundary) - 1]
        line_rank = np.empty(grouped.size, dtype=np.int64)
        line_rank[set_order] = rank
        dense = line_rank[inverse]

    distances = np.full(n, -1, dtype=np.int64)
    warm = np.flatnonzero(prev >= 0)
    distinct = int(inverse.max()) + 1 if n else 0
    if warm.size and single_set and distinct <= 16:
        # Tiny footprint (TLBs see a handful of pages): count, per line,
        # whether its latest occurrence before i falls inside the window.
        # The re-referenced line's own latest occurrence is prev itself, so
        # it never counts — no special case needed.
        starts = prev[warm]
        totals = np.zeros(warm.size, dtype=np.int64)
        for line_id in range(distinct):
            positions = np.flatnonzero(inverse == line_id)
            slot = np.searchsorted(positions, warm, side="left") - 1
            latest = np.where(slot >= 0, positions[slot.clip(0)], -1)
            totals += latest > starts
        distances[warm] = totals
    elif warm.size:
        length = warm - prev[warm] - 1
        distances[warm] = 0  # empty window: re-reference at stack top
        lanes = (int(dense.max()) >> 6) + 1
        table = np.zeros((n, lanes), dtype=np.uint64)
        table[np.arange(n), dense >> 6] = (
            np.uint64(1) << (dense & 63).astype(np.uint64)
        )
        # Group the windowed queries by floor(log2(length)) up front, so
        # each doubling level answers one contiguous slice.  (Exact for
        # lengths below 2^53: powers of two are exact in float64.)
        windowed = np.flatnonzero(length > 0)
        if windowed.size:
            level_of = np.floor(np.log2(length[windowed])).astype(np.int8)
            level_order = np.argsort(level_of, kind="stable")
            by_level = windowed[level_order]
            bounds = np.searchsorted(level_of[level_order],
                                     np.arange(int(level_of.max()) + 2))

            def _answer(level: int) -> None:
                chunk = by_level[bounds[level]:bounds[level + 1]]
                if chunk.size == 0:
                    return
                width = 1 << level
                queries = warm[chunk]
                rows = table[prev[queries] + 1] | table[queries - width]
                counts = np.bitwise_count(rows)
                distances[queries] = (counts.sum(axis=1) if lanes > 1
                                      else counts[:, 0]).astype(np.int64)

            _answer(0)
            for level in range(1, int(level_of.max()) + 1):
                half = 1 << (level - 1)
                # Doubling: row p ORs row p+half (ufuncs handle overlap).
                np.bitwise_or(table[:-half], table[half:], out=table[:-half])
                _answer(level)

    return distances


def _histogram(distances: np.ndarray) -> dict[int, int]:
    warm = distances[distances >= 0]
    if warm.size == 0:
        return {}
    counts = np.bincount(warm)
    return {int(d): int(counts[d]) for d in np.flatnonzero(counts)}


def _profile_structure(addrs: np.ndarray, sets: int,
                       line_size: int) -> tuple[SinglePassResult, np.ndarray]:
    _validate_geometry(sets, line_size)
    lines = addrs >> (line_size.bit_length() - 1)
    if sets == 1:
        distances = _stack_distances(lines, lines, single_set=True)
    else:
        distances = _stack_distances(lines, lines & (sets - 1))
    return (
        SinglePassResult(
            sets=sets,
            line_size=line_size,
            accesses=int(distances.size),
            cold_misses=int((distances < 0).sum()),
            distance_histogram=_histogram(distances),
        ),
        distances,
    )


def _interleave_l2_stream(pcs, seqs, memory_indices, data_addrs,
                          i_distances, d_distances, i_ways, d_ways):
    """The L2's interleaved L1-miss stream as (addrs, sides, seqs) arrays.

    Interleaves by trace position; an instruction fetch precedes the same
    instruction's data access, exactly like the reference walk.  Both
    halves are already position-sorted, so the merged slots come from two
    searchsorted calls instead of a sort.
    """
    i_miss = (i_distances < 0) | (i_distances >= i_ways)
    d_miss = (d_distances < 0) | (d_distances >= d_ways)
    instruction_at = np.flatnonzero(i_miss)
    data_at = memory_indices[d_miss]
    total = instruction_at.size + data_at.size
    instruction_slots = (np.arange(instruction_at.size, dtype=np.int64)
                         + np.searchsorted(data_at, instruction_at,
                                           side="left"))
    data_slots = (np.arange(data_at.size, dtype=np.int64)
                  + np.searchsorted(instruction_at, data_at,
                                    side="right"))
    addrs = np.empty(total, dtype=np.int64)
    addrs[instruction_slots] = pcs[instruction_at]
    addrs[data_slots] = data_addrs[d_miss]
    sides = np.empty(total, dtype=np.int8)
    sides[instruction_slots] = INSTRUCTION_SIDE
    sides[data_slots] = DATA_SIDE
    stream_seqs = np.empty(total, dtype=np.int64)
    stream_seqs[instruction_slots] = seqs[instruction_at]
    stream_seqs[data_slots] = seqs[data_at]
    return addrs, sides, stream_seqs


class _NpStackState:
    """Carried per-set LRU stack state of one structure across chunks.

    Stack distances only depend on the LRU stacks at the start of a chunk,
    and those stacks are fully determined by each previously-seen line's
    *last* access position.  So the carried state is one dict
    ``line -> last global access position``, and each chunk is answered by
    the offline kernel over ``prologue + chunk``, where the prologue
    replays every carried line once in oldest-first order — after it, every
    set's LRU stack is exactly the true mid-trace stack, making the chunk
    part of the offline answer *identical* to the distances an uninterrupted
    walk would produce (a prologue line's last access becomes its prologue
    slot, and the reuse window from there contains exactly the lines more
    recent than it).  The prologue's own distances are discarded.
    """

    def __init__(self, sets: int, line_size: int):
        _validate_geometry(sets, line_size)
        self._sets = sets
        self._shift = line_size.bit_length() - 1
        self._last: dict[int, int] = {}
        self._position = 0

    def distances(self, addrs: np.ndarray) -> np.ndarray:
        lines = addrs >> self._shift
        n = int(lines.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self._last:
            carried = np.fromiter(self._last.keys(), dtype=np.int64,
                                  count=len(self._last))
            stamps = np.fromiter(self._last.values(), dtype=np.int64,
                                 count=len(self._last))
            prologue = carried[np.argsort(stamps)]  # oldest first
            full = np.concatenate([prologue, lines])
        else:
            prologue = np.empty(0, dtype=np.int64)
            full = lines
        if self._sets == 1:
            all_distances = _stack_distances(full, full, single_set=True)
        else:
            all_distances = _stack_distances(full, full & (self._sets - 1))
        distances = all_distances[prologue.size:]
        # Remember each chunk line's last (global) access position.
        order = _stable_argsort_ints(lines)
        ordered = lines[order]
        last_of_line = np.empty(n, dtype=bool)
        last_of_line[-1] = True
        last_of_line[:-1] = ordered[1:] != ordered[:-1]
        picks = np.flatnonzero(last_of_line)
        self._last.update(zip(
            ordered[picks].tolist(),
            (order[picks] + self._position).tolist(),
        ))
        self._position += n
        return distances


class _DistanceTally:
    """Accumulated accesses / cold misses / distance histogram of a stream."""

    __slots__ = ("accesses", "cold", "histogram")

    def __init__(self):
        self.accesses = 0
        self.cold = 0
        self.histogram: dict[int, int] = {}

    def add(self, distances: np.ndarray) -> None:
        self.accesses += int(distances.size)
        self.cold += int((distances < 0).sum())
        warm = distances[distances >= 0]
        if warm.size:
            counts = np.bincount(warm)
            histogram = self.histogram
            for distance in np.flatnonzero(counts):
                histogram[int(distance)] = (
                    histogram.get(int(distance), 0) + int(counts[distance])
                )

    def result(self, sets: int, line_size: int) -> SinglePassResult:
        return SinglePassResult(
            sets=sets,
            line_size=line_size,
            accesses=self.accesses,
            cold_misses=self.cold,
            distance_histogram=self.histogram,
        )


class _NpBaseStream:
    """Chunk-resumable vectorized base pass."""

    def __init__(self, geometry: BaseGeometry):
        line = geometry.line_size
        self._geometry = geometry
        self._l1i_sets = geometry.l1i_size // (geometry.l1i_associativity * line)
        self._l1d_sets = geometry.l1d_size // (geometry.l1d_associativity * line)
        self._l1i_state = _NpStackState(self._l1i_sets, line)
        self._l1d_state = _NpStackState(self._l1d_sets, line)
        self._itlb_state = _NpStackState(1, geometry.page_size)
        self._dtlb_state = _NpStackState(1, geometry.page_size)
        self._l1i_tally = _DistanceTally()
        self._l1d_tally = _DistanceTally()
        self._itlb_tally = _DistanceTally()
        self._dtlb_tally = _DistanceTally()

    def update(self, trace: Trace):
        geometry = self._geometry
        pcs = _as_i64(trace.pcs)
        op_classes = _as_i8(trace.op_classes)
        seqs = _as_i64(trace.seqs)
        i_distances = self._l1i_state.distances(pcs)
        self._l1i_tally.add(i_distances)
        self._itlb_tally.add(self._itlb_state.distances(pcs))
        memory_indices = np.flatnonzero(
            (op_classes == _LOAD_ID) | (op_classes == _STORE_ID)
        )
        data_addrs = _as_i64(trace.mem_addrs)[memory_indices]
        d_distances = self._l1d_state.distances(data_addrs)
        self._l1d_tally.add(d_distances)
        self._dtlb_tally.add(self._dtlb_state.distances(data_addrs))
        return _interleave_l2_stream(
            pcs, seqs, memory_indices, data_addrs, i_distances, d_distances,
            geometry.l1i_associativity, geometry.l1d_associativity,
        )

    def finish(self) -> BasePass:
        geometry = self._geometry
        line = geometry.line_size
        return BasePass(
            l1i=self._l1i_tally.result(self._l1i_sets, line),
            l1d=self._l1d_tally.result(self._l1d_sets, line),
            itlb=self._itlb_tally.result(1, geometry.page_size),
            dtlb=self._dtlb_tally.result(1, geometry.page_size),
            l2_addrs=array("q"),
            l2_sides=array("b"),
            l2_seqs=array("q"),
        )


class _NpL2Stream:
    """Chunk-resumable vectorized L2 pass over base-stream slices."""

    def __init__(self, sets: int, line_size: int, run_keys=()):
        _validate_geometry(sets, line_size)
        self._state = _NpStackState(sets, line_size)
        self._instruction = _DistanceTally()
        self._data = _DistanceTally()
        self._runs = {(int(a), int(w)): 0 for a, w in run_keys}
        self._last_seq: dict[tuple[int, int], int | None] = {
            key: None for key in self._runs
        }

    def update(self, addrs, sides, seqs) -> None:
        addrs = _as_i64(addrs)
        sides = _as_i8(sides)
        seqs = _as_i64(seqs)
        distances = self._state.distances(addrs)
        data_side = sides == DATA_SIDE
        self._instruction.add(distances[~data_side])
        data_distances = distances[data_side]
        self._data.add(data_distances)
        if not self._runs:
            return
        data_seqs = seqs[data_side]
        for key, last in self._last_seq.items():
            associativity, window = key
            miss = (data_distances < 0) | (data_distances >= associativity)
            miss_seqs = data_seqs[miss]
            if miss_seqs.size == 0:
                continue
            runs = int((np.diff(miss_seqs) > window).sum())
            if last is None or int(miss_seqs[0]) - last > window:
                runs += 1
            self._runs[key] += runs
            self._last_seq[key] = int(miss_seqs[-1])

    def finish(self) -> StreamedL2Pass:
        return StreamedL2Pass(
            instruction_cold=self._instruction.cold,
            data_cold=self._data.cold,
            instruction_histogram=self._instruction.histogram,
            data_histogram=self._data.histogram,
            data_seqs=array("q"),
            data_distances=array("q"),
            _runs=dict(self._runs),
        )


# ----------------------------------------------------------------------
# Branch predictors.
# ----------------------------------------------------------------------
def _pack(mapping) -> int:
    return mapping[0] | mapping[1] << 2 | mapping[2] << 4 | mapping[3] << 6


#: Packed state maps of a 2-bit saturating counter (states 0..3, init 2).
_MAP_IDENTITY = _pack((0, 1, 2, 3))
_MAP_INC = _pack((1, 2, 3, 3))
_MAP_DEC = _pack((0, 0, 1, 2))


def _build_compose() -> np.ndarray:
    codes = np.arange(256, dtype=np.uint16)
    digits = np.stack([(codes >> (2 * s)) & 3 for s in range(4)], axis=1)
    # composed[f, g][s] = f[g[s]]  (g applied first).
    composed = digits[:, digits]
    return (composed[..., 0] | composed[..., 1] << 2
            | composed[..., 2] << 4 | composed[..., 3] << 6).astype(np.uint8)


_COMPOSE = _build_compose()


def _counter_states(slots: np.ndarray, maps: np.ndarray) -> np.ndarray:
    """Pre-event state (0..3, init 2) of per-slot saturating counters.

    ``maps`` holds one packed state map per event (chronological order);
    events on different slots are independent, so the scan runs segmented
    over the slot-grouped (stable) ordering: a Hillis-Steele doubling pass
    composes the packed maps through the 256x256 composition table.
    """
    n = int(slots.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = _stable_argsort_ints(slots)
    grouped_slots = slots[order]
    acc = maps[order].astype(np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = grouped_slots[1:] != grouped_slots[:-1]
    segment = np.cumsum(boundary) - 1
    longest = int(np.bincount(segment).max())
    step = 1
    while step < longest:
        # acc[i] (later maps) composed after acc[i - step] (earlier maps),
        # except across segment boundaries.
        merged = _COMPOSE[acc[step:], acc[:-step]]
        acc[step:] = np.where(segment[step:] == segment[:-step],
                              merged, acc[step:])
        step <<= 1
    states = np.full(n, 2, dtype=np.int64)
    inner = np.flatnonzero(~boundary)
    states[inner] = (acc[inner - 1] >> 4) & 3  # map applied to init state 2
    out = np.empty(n, dtype=np.int64)
    out[order] = states
    return out


def _counter_predictions(slots: np.ndarray, taken: np.ndarray) -> np.ndarray:
    """predict-then-update predictions of a 2-bit counter table."""
    maps = np.where(taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC))
    return _counter_states(slots, maps) >= 2


def _counter_states_resumable(slots: np.ndarray, maps: np.ndarray,
                              table: np.ndarray) -> np.ndarray:
    """Resumable :func:`_counter_states`: carried table, updated in place.

    ``table`` holds the current state (0..3) of every counter.  The scan is
    identical to the offline one, except the first event of each slot reads
    its initial state from the table instead of the hardwired init, and the
    per-slot final states are written back — so chunk-by-chunk replay
    matches one offline replay of the concatenation exactly.
    """
    n = int(slots.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = _stable_argsort_ints(slots)
    grouped_slots = slots[order]
    acc = maps[order].astype(np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = grouped_slots[1:] != grouped_slots[:-1]
    segment = np.cumsum(boundary) - 1
    longest = int(np.bincount(segment).max())
    step = 1
    while step < longest:
        merged = _COMPOSE[acc[step:], acc[:-step]]
        acc[step:] = np.where(segment[step:] == segment[:-step],
                              merged, acc[step:])
        step <<= 1
    init = table[grouped_slots]  # per-event init state of its slot
    states = init.copy()  # the first event of a slot sees the init directly
    inner = np.flatnonzero(~boundary)
    states[inner] = (acc[inner - 1] >> (2 * init[inner])) & 3
    segment_starts = np.flatnonzero(boundary)
    segment_ends = np.append(segment_starts[1:], n) - 1
    table[grouped_slots[segment_starts]] = (
        (acc[segment_ends] >> (2 * init[segment_ends])) & 3
    )
    out = np.empty(n, dtype=np.int64)
    out[order] = states
    return out


def _global_history(taken: np.ndarray, bits: int) -> np.ndarray:
    """Pre-branch global history (bit ``j`` = outcome of branch ``i-1-j``)."""
    n = int(taken.size)
    history = np.zeros(n, dtype=np.int64)
    outcomes = taken.astype(np.int64)
    for j in range(1, bits + 1):
        history[j:] |= outcomes[:-j] << (j - 1)
    return history


def _local_histories(pcs: np.ndarray, taken: np.ndarray, history_bits: int,
                     history_entries: int) -> np.ndarray:
    """Pre-branch per-PC local history (the local predictor's first level)."""
    n = int(pcs.size)
    slots = (pcs >> 2) & (history_entries - 1)
    order = _stable_argsort_ints(slots)
    grouped_slots = slots[order]
    grouped_taken = taken[order].astype(np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = grouped_slots[1:] != grouped_slots[:-1]
    start_positions = np.flatnonzero(boundary)
    segment_start = start_positions[np.cumsum(boundary) - 1]
    positions = np.arange(n, dtype=np.int64)
    history = np.zeros(n, dtype=np.int64)
    for j in range(1, history_bits + 1):
        source = positions - j
        ok = source >= segment_start
        history[ok] |= grouped_taken[source[ok]] << (j - 1)
    out = np.empty(n, dtype=np.int64)
    out[order] = history
    return out


def _predict_bimodal(pcs, taken, entries=2048):
    return _counter_predictions((pcs >> 2) & (entries - 1), taken)


def _predict_gshare(pcs, taken, history_bits=12):
    entries = 1 << history_bits
    index = (pcs >> 2) ^ _global_history(taken, history_bits)
    return _counter_predictions(index & (entries - 1), taken)


def _predict_local(pcs, taken, history_bits=10, history_entries=1024):
    histories = _local_histories(pcs, taken, history_bits, history_entries)
    # The shared second-level table is indexed by the history value itself.
    return _counter_predictions(histories & ((1 << history_bits) - 1), taken)


def _predict_hybrid(pcs, taken, chooser_entries=1024):
    local = _predict_local(pcs, taken, history_bits=10, history_entries=1024)
    global_ = _predict_gshare(pcs, taken, history_bits=12)
    # The chooser trains only on disagreements (toward whichever component
    # was right) and is consulted before any update.
    maps = np.where(
        local == global_,
        np.uint8(_MAP_IDENTITY),
        np.where(global_ == taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC)),
    )
    choose_global = _counter_states((pcs >> 2) & (chooser_entries - 1),
                                    maps) >= 2
    return np.where(choose_global, global_, local)


#: spec -> (prediction kernel, BranchPredictor.name of the built instance).
_PREDICTOR_KERNELS = {
    "global_1kb": (_predict_gshare, "gshare"),
    "hybrid_3.5kb": (_predict_hybrid, "hybrid"),
    "bimodal": (_predict_bimodal, "bimodal"),
    "always_taken": (lambda pcs, taken: np.ones(taken.size, dtype=bool),
                     "always_taken"),
    "always_not_taken": (lambda pcs, taken: np.zeros(taken.size, dtype=bool),
                         "always_not_taken"),
}


# ----------------------------------------------------------------------
# Chunk-resumable predictor states.
#
# Each class carries a predictor's architectural state (counter tables,
# global/local histories, chooser) across chunk boundaries; one
# ``predict(pcs, taken)`` call per chunk returns the predictions the
# offline kernel would have produced for that slice of the full replay.
# ----------------------------------------------------------------------
class _BimodalState:
    def __init__(self, entries: int = 2048):
        self._entries = entries
        self._table = np.full(entries, 2, dtype=np.int64)

    def predict(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        maps = np.where(taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC))
        return _counter_states_resumable(
            (pcs >> 2) & (self._entries - 1), maps, self._table
        ) >= 2


class _GShareState:
    def __init__(self, history_bits: int = 12):
        self._bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._table = np.full(1 << history_bits, 2, dtype=np.int64)
        self._history = 0  # carried global history register

    def predict(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        n = int(taken.size)
        history = _global_history(taken, self._bits)
        if n and self._history:
            # Branch i's history bits >= i predate the chunk: bit j of the
            # carried register is the outcome of branch -1-(j-i), so the
            # whole register lands shifted left by i (older bits fall off
            # the mask).
            width = min(n, self._bits)
            history[:width] |= (
                np.int64(self._history) << np.arange(width, dtype=np.int64)
            ) & self._mask
        maps = np.where(taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC))
        index = ((pcs >> 2) ^ history) & self._mask
        predictions = _counter_states_resumable(index, maps, self._table) >= 2
        if n:
            width = min(n, self._bits)
            recent = taken[n - width:].astype(np.int64)[::-1]  # newest first
            packed = int((recent << np.arange(width, dtype=np.int64)).sum())
            self._history = ((self._history << width) | packed) & self._mask
        return predictions


class _LocalState:
    def __init__(self, history_bits: int = 10, history_entries: int = 1024):
        self._bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._entries = history_entries
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self._table = np.full(1 << history_bits, 2, dtype=np.int64)

    def predict(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        n = int(pcs.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        bits = self._bits
        slots = (pcs >> 2) & (self._entries - 1)
        order = _stable_argsort_ints(slots)
        grouped_slots = slots[order]
        grouped_taken = taken[order].astype(np.int64)
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = grouped_slots[1:] != grouped_slots[:-1]
        start_positions = np.flatnonzero(boundary)
        segment_start = start_positions[np.cumsum(boundary) - 1]
        positions = np.arange(n, dtype=np.int64)
        history = np.zeros(n, dtype=np.int64)
        for j in range(1, bits + 1):
            source = positions - j
            ok = source >= segment_start
            history[ok] |= grouped_taken[source[ok]] << (j - 1)
        # An event at within-slot rank r has only r in-chunk predecessors;
        # the carried per-slot history supplies the rest, shifted past them.
        rank = positions - segment_start
        carried = self._histories[grouped_slots]
        shallow = rank < bits
        history[shallow] |= (carried[shallow] << rank[shallow]) & self._mask
        out_history = np.empty(n, dtype=np.int64)
        out_history[order] = history
        # Advance each touched slot's history by its segment's outcomes.
        segment_ends = np.append(start_positions[1:], n) - 1
        counts = segment_ends - start_positions + 1
        packed = np.zeros(start_positions.size, dtype=np.int64)
        for j in range(bits):
            deep = counts > j
            packed[deep] |= grouped_taken[segment_ends[deep] - j] << j
        shift = np.minimum(counts, bits)
        slot_ids = grouped_slots[start_positions]
        self._histories[slot_ids] = (
            (self._histories[slot_ids] << shift) | packed
        ) & self._mask
        maps = np.where(taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC))
        # The shared second-level table is indexed by the history value.
        return _counter_states_resumable(out_history, maps, self._table) >= 2


class _HybridState:
    def __init__(self, chooser_entries: int = 1024):
        self._local = _LocalState(history_bits=10, history_entries=1024)
        self._gshare = _GShareState(history_bits=12)
        self._entries = chooser_entries
        self._chooser = np.full(chooser_entries, 2, dtype=np.int64)

    def predict(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        local = self._local.predict(pcs, taken)
        global_ = self._gshare.predict(pcs, taken)
        maps = np.where(
            local == global_,
            np.uint8(_MAP_IDENTITY),
            np.where(global_ == taken, np.uint8(_MAP_INC), np.uint8(_MAP_DEC)),
        )
        choose_global = _counter_states_resumable(
            (pcs >> 2) & (self._entries - 1), maps, self._chooser
        ) >= 2
        return np.where(choose_global, global_, local)


class _ConstantState:
    def __init__(self, value: bool):
        self._value = value

    def predict(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        return np.full(taken.size, self._value, dtype=bool)


#: spec -> (carried-state factory, BranchPredictor.name of the built instance).
_PREDICTOR_STREAM_STATES = {
    "global_1kb": (lambda: _GShareState(history_bits=12), "gshare"),
    "hybrid_3.5kb": (_HybridState, "hybrid"),
    "bimodal": (_BimodalState, "bimodal"),
    "always_taken": (lambda: _ConstantState(True), "always_taken"),
    "always_not_taken": (lambda: _ConstantState(False), "always_not_taken"),
}


class _NpBranchStream:
    """Chunk-resumable vectorized branch replay for one predictor."""

    def __init__(self, state, predictor_name: str):
        self._state = state
        self._profile = BranchProfile(predictor_name=predictor_name)

    def update(self, controls: ControlStream) -> None:
        taken = _as_i8(controls.taken) == 1
        conditional = _as_i8(controls.conditional) == 1
        pcs = _as_i64(controls.pcs)[conditional]
        outcomes = taken[conditional]
        jumps = int((~conditional).sum())
        predictions = self._state.predict(pcs, outcomes)
        correct = predictions == outcomes
        profile = self._profile
        profile.conditional_branches += int(outcomes.size)
        profile.unconditional_jumps += jumps
        profile.taken_branches += int(outcomes.sum()) + jumps
        profile.mispredictions += int((~correct).sum())
        profile.predicted_taken_correct += int((correct & outcomes).sum())

    def finish(self) -> BranchProfile:
        return self._profile


# ----------------------------------------------------------------------
# The backend.
# ----------------------------------------------------------------------
class NumpyKernels(Kernels):
    """Vectorized kernels over the packed trace columns."""

    name = "numpy"

    #: Bound on the per-machine penalty memo: a long-lived server answering
    #: arbitrary override combinations must not grow it without limit.
    _FACTOR_MEMO_LIMIT = 4096

    def __init__(self):
        #: Per-machine penalty scalars (pure functions of the config) reused
        #: across every batch the backend answers.
        self._machine_factors: dict = {}

    def base_pass(self, trace: Trace, geometry: BaseGeometry) -> BasePass:
        line = geometry.line_size
        pcs = _as_i64(trace.pcs)
        op_classes = _as_i8(trace.op_classes)
        seqs = _as_i64(trace.seqs)

        l1i, i_distances = _profile_structure(
            pcs, geometry.l1i_size // (geometry.l1i_associativity * line), line
        )
        itlb, _ = _profile_structure(pcs, 1, geometry.page_size)

        memory_indices = np.flatnonzero(
            (op_classes == _LOAD_ID) | (op_classes == _STORE_ID)
        )
        data_addrs = _as_i64(trace.mem_addrs)[memory_indices]
        l1d, d_distances = _profile_structure(
            data_addrs, geometry.l1d_size // (geometry.l1d_associativity * line),
            line,
        )
        dtlb, _ = _profile_structure(data_addrs, 1, geometry.page_size)

        addrs, sides, stream_seqs = _interleave_l2_stream(
            pcs, seqs, memory_indices, data_addrs, i_distances, d_distances,
            geometry.l1i_associativity, geometry.l1d_associativity,
        )

        return BasePass(
            l1i=l1i, l1d=l1d, itlb=itlb, dtlb=dtlb,
            l2_addrs=_to_q(addrs), l2_sides=_to_b(sides),
            l2_seqs=_to_q(stream_seqs),
        )

    def l2_pass(self, base: BasePass, sets: int, line_size: int) -> L2Pass:
        _validate_geometry(sets, line_size)
        addrs = _as_i64(base.l2_addrs)
        sides = _as_i8(base.l2_sides)
        seqs = _as_i64(base.l2_seqs)
        lines = addrs >> (line_size.bit_length() - 1)
        if sets == 1:
            distances = _stack_distances(lines, lines, single_set=True)
        else:
            distances = _stack_distances(lines, lines & (sets - 1))
        data_side = sides == DATA_SIDE
        instruction_distances = distances[~data_side]
        data_distances = distances[data_side]
        return L2Pass(
            instruction_cold=int((instruction_distances < 0).sum()),
            data_cold=int((data_distances < 0).sum()),
            instruction_histogram=_histogram(instruction_distances),
            data_histogram=_histogram(data_distances),
            data_seqs=_to_q(seqs[data_side]),
            data_distances=_to_q(data_distances),
        )

    def control_stream(self, trace: Trace) -> ControlStream:
        op_classes = _as_i8(trace.op_classes)
        control = np.flatnonzero(
            (op_classes == _BRANCH_ID) | (op_classes == _JUMP_ID)
        )
        taken = _as_i8(trace.taken)[control] == 1
        conditional = op_classes[control] == _BRANCH_ID
        return ControlStream(
            _to_q(_as_i64(trace.pcs)[control]),
            _to_b(taken.astype(np.int8)),
            _to_b(conditional.astype(np.int8)),
        )

    def branch_profile(self, controls: ControlStream,
                       predictor_spec: str) -> BranchProfile | None:
        try:
            canonical = PREDICTORS.canonical(predictor_spec.lower())
        except KeyError:
            return None
        kernel = _PREDICTOR_KERNELS.get(canonical)
        if kernel is None:
            # Third-party predictor registration: no vectorized replay.
            return None
        predict, predictor_name = kernel

        taken = _as_i8(controls.taken) == 1
        conditional = _as_i8(controls.conditional) == 1
        pcs = _as_i64(controls.pcs)[conditional]
        outcomes = taken[conditional]
        jumps = int((~conditional).sum())
        predictions = predict(pcs, outcomes)
        correct = predictions == outcomes
        return BranchProfile(
            predictor_name=predictor_name,
            conditional_branches=int(outcomes.size),
            unconditional_jumps=jumps,
            taken_branches=int(outcomes.sum()) + jumps,
            mispredictions=int((~correct).sum()),
            predicted_taken_correct=int((correct & outcomes).sum()),
        )

    def count_runs(self, seqs, distances, associativity: int,
                   mlp_window: int) -> int:
        distance_values = _as_i64(distances)
        miss = (distance_values < 0) | (distance_values >= associativity)
        miss_seqs = _as_i64(seqs)[miss]
        if miss_seqs.size == 0:
            return 0
        return 1 + int((np.diff(miss_seqs) > mlp_window).sum())

    def predict_batch(self, program, profiles, machines):
        """Vectorized mechanistic-model evaluation (bit-identical).

        Per-machine penalty scalars and dependency totals are computed with
        the exact scalar code (:mod:`repro.core.penalties`) — Python floats
        — and only the per-configuration products and the ordered component
        sum are vectorized.  Every float operation happens in the same
        order, on the same IEEE-754 doubles, as a scalar
        :meth:`~repro.core.model.InOrderMechanisticModel.predict` call, so
        cycles and CPI stacks match bit for bit (excluded components
        contribute an exact ``+0.0``, which is an identity on the positive
        partial sums).
        """
        from repro.core import penalties
        from repro.core.cpi_stack import CPIComponent

        count = len(machines)
        if count == 0:
            return []
        dependencies = program.dependencies
        dependency_totals = {
            width: (
                penalties.unit_dependency_total(dependencies.unit, width),
                penalties.long_dependency_total(dependencies.long, width),
                penalties.load_dependency_total(dependencies.load, width),
            )
            for width in {machine.width for machine in machines}
        }

        data_accesses = program.loads + program.stores
        factor_memo = self._machine_factors
        if len(factor_memo) > self._FACTOR_MEMO_LIMIT:
            factor_memo.clear()  # recomputing a row is cheap; leaking is not
        base = []
        rows = []
        dep_unit, dep_long, dep_load = [], [], []
        for machine in machines:
            base.append(program.instructions / machine.width)
            row = factor_memo.get(machine)
            if row is None:
                correction = penalties.slot_correction(machine.width)

                def miss(latency, correction=correction):
                    return max(0.0, latency - correction)

                def long_latency(latency, correction=correction):
                    return max(0.0, (latency - 1.0) - correction)

                memory = miss(machine.memory_cycles)
                row = (
                    long_latency(machine.mul_latency),
                    long_latency(machine.div_latency),
                    long_latency(machine.l1_hit_cycles)
                    if machine.l1_hit_cycles > 1 else 0.0,
                    long_latency(machine.l1_hit_cycles
                                 + machine.l2_hit_cycles),
                    miss(machine.l2_hit_cycles),
                    memory,
                    memory,
                    miss(machine.tlb_miss_cycles),
                    machine.frontend_depth + correction,
                )
                factor_memo[machine] = row
            rows.append(row)
            unit, long_, load = dependency_totals[machine.width]
            dep_unit.append(unit)
            dep_long.append(long_)
            dep_load.append(load)

        count_rows = np.array([
            _MISS_FIELDS(profile) for profile in profiles
        ], dtype=np.int64)
        count_columns = dict(zip(
            ("l1d_misses", "l1i_misses", "il2_misses", "dl2_misses",
             "itlb_misses", "dtlb_misses", "mispredictions",
             "taken_bubbles"),
            count_rows.T,
        ))

        def counts(field):
            return count_columns[field]

        factor_table = np.array(rows)
        factors = {
            key: factor_table[:, column]
            for column, key in enumerate(
                ("mul", "div", "l1_extra", "dl1", "il1", "il2", "dl2",
                 "tlb", "bpred")
            )
        }
        taken_penalty = penalties.taken_branch_penalty()
        columns = [
            (CPIComponent.BASE, np.array(base)),
            (CPIComponent.MUL, program.multiplies * factors["mul"]),
            (CPIComponent.DIV, program.divides * factors["div"]),
            (CPIComponent.L1_HIT_EXTRA, data_accesses * factors["l1_extra"]),
            (CPIComponent.DL1_MISS, counts("l1d_misses") * factors["dl1"]),
            (CPIComponent.IL1_MISS, counts("l1i_misses") * factors["il1"]),
            (CPIComponent.IL2_MISS, counts("il2_misses") * factors["il2"]),
            (CPIComponent.DL2_MISS, counts("dl2_misses") * factors["dl2"]),
            (CPIComponent.ITLB_MISS, counts("itlb_misses") * factors["tlb"]),
            (CPIComponent.DTLB_MISS, counts("dtlb_misses") * factors["tlb"]),
            (CPIComponent.BPRED_MISS, counts("mispredictions") * factors["bpred"]),
            (CPIComponent.BPRED_TAKEN,
             counts("taken_bubbles") * taken_penalty),
            (CPIComponent.DEP_UNIT, np.array(dep_unit)),
            (CPIComponent.DEP_LONG, np.array(dep_long)),
            (CPIComponent.DEP_LOAD, np.array(dep_load)),
        ]
        total = np.zeros(count, dtype=np.float64)
        for _, values in columns:
            total = total + np.where(values > 0.0, values, 0.0)

        names = [component.value for component, _ in columns]
        value_lists = [values.tolist() for _, values in columns]
        cycle_list = total.tolist()
        results = []
        for index in range(count):
            stack = {}
            for name, values in zip(names, value_lists):
                value = values[index]
                if value > 0:
                    stack[name] = value
            results.append((cycle_list[index], stack))
        return results

    def instruction_mix(self, trace: Trace):
        from repro.profiler.instruction_mix import InstructionMix
        from repro.trace.trace import OP_CLASS_BY_ID

        op_classes = _as_i8(trace.op_classes)
        if op_classes.size == 0:
            return InstructionMix(total=0, counts={})
        counts = np.bincount(op_classes)
        present, first_at = np.unique(op_classes, return_index=True)
        # Counter() insertion order is first-encounter order; mirror it.
        ordered = present[np.argsort(first_at, kind="stable")]
        return InstructionMix(
            total=int(op_classes.size),
            counts={OP_CLASS_BY_ID[class_id]: int(counts[class_id])
                    for class_id in ordered},
        )

    def dependency_profile(self, trace: Trace,
                           max_distance: int) -> DependencyProfile | None:
        # The offline pass is the one-chunk case of the resumable stream.
        if len(trace) == 0:
            return DependencyProfile()
        table = _dependency_static_table(trace.statics)
        if table is None:
            return None  # outside the two-operand ISA: reference walk
        stream = _NpDependencyStream(max_distance, trace.statics, table)
        stream.update(trace)
        return stream.finish()

    def base_stream(self, geometry: BaseGeometry):
        return _NpBaseStream(geometry)

    def l2_stream(self, sets: int, line_size: int, run_keys=()):
        return _NpL2Stream(sets, line_size, run_keys)

    def branch_stream(self, predictor_spec: str):
        try:
            canonical = PREDICTORS.canonical(predictor_spec.lower())
        except KeyError:
            return None
        entry = _PREDICTOR_STREAM_STATES.get(canonical)
        if entry is None:
            # Third-party predictor registration: no vectorized replay.
            return None
        factory, predictor_name = entry
        return _NpBranchStream(factory(), predictor_name)

    def dependency_stream(self, statics, max_distance: int):
        table = _dependency_static_table(statics)
        if table is None:
            # Outside the two-operand ISA: the reference stream handles it.
            return super().dependency_stream(statics, max_distance)
        return _NpDependencyStream(max_distance, statics, table)


#: Memo for :func:`_dependency_static_table`, keyed by the identity of the
#: statics tuple.  A chunked trace shares one immutable statics tuple across
#: every chunk, so per-chunk dependency streams (the sampling path builds
#: one per profiled interval) would otherwise rebuild the same operand
#: arrays over and over.  Entries hold a strong reference to their statics
#: tuple, which keeps the id stable for as long as the entry lives; the
#: ``is`` check guards the (now impossible) collision anyway.
_DEP_TABLE_CACHE: dict = {}
_DEP_TABLE_CACHE_MAX = 8


def _dependency_static_table(statics):
    """Per-static operand arrays for the vectorized dependency pass.

    One pass over the (small) static program resolves operands and producer
    kinds; everything after reads only packed columns.  Returns ``None``
    when a static instruction has more than two sources (outside the
    two-operand ISA) — those traces take the reference walk.
    """
    entry = _DEP_TABLE_CACHE.get(id(statics))
    if entry is not None and entry[0] is statics:
        return entry[1]
    table = _build_dependency_static_table(statics)
    if len(_DEP_TABLE_CACHE) >= _DEP_TABLE_CACHE_MAX:
        _DEP_TABLE_CACHE.pop(next(iter(_DEP_TABLE_CACHE)))
    _DEP_TABLE_CACHE[id(statics)] = (statics, table)
    return table


def _build_dependency_static_table(statics):
    first_sources, second_sources, destinations, producer_kinds = \
        [], [], [], []
    for static in statics:
        sources = static.src_regs()
        if len(sources) > 2:
            return None
        first_sources.append(sources[0] if sources else -1)
        second_sources.append(sources[1] if len(sources) > 1 else -1)
        dest_regs = static.dest_regs()
        destinations.append(dest_regs[0] if dest_regs else -1)
        op_class = static.op_class
        producer_kinds.append(
            2 if op_class is OpClass.LOAD
            else 1 if op_class in (OpClass.INT_MUL, OpClass.INT_DIV)
            else 0
        )
    return (
        np.array(first_sources, dtype=np.int64),
        np.array(second_sources, dtype=np.int64),
        np.array(destinations, dtype=np.int64),
        np.array(producer_kinds, dtype=np.int64),
    )


class _NpDependencyStream:
    """Chunk-resumable vectorized dependency profiling.

    The carried state is the reference walk's ``last_writer`` table — per
    register, the sequence number and producer kind of the latest write in
    any earlier chunk.  Within a chunk the offline composite-key fold runs
    unchanged; a read with no in-chunk producer (which the offline fold
    leaves unresolved) falls back to the carried writer of its register,
    and an in-chunk producer is by construction more recent than any
    carried one, so the merged result matches the uninterrupted walk
    exactly.  Sequence numbers are global, so cross-chunk distances are
    too.
    """

    def __init__(self, max_distance: int, statics, table):
        self._max_distance = max_distance
        self._profile = DependencyProfile()
        self._table = table
        self._num_statics = len(statics)
        self._writer_seq = np.full(NUM_INT_REGS, -1, dtype=np.int64)
        self._writer_kind = np.zeros(NUM_INT_REGS, dtype=np.int64)
        self._has_writer = np.zeros(NUM_INT_REGS, dtype=bool)

    def update(self, trace: Trace) -> None:
        statics = trace.statics
        if len(statics) != self._num_statics:
            # The static table of one trace is append-only across chunks.
            table = _dependency_static_table(statics)
            if table is None:
                raise ValueError(
                    "a static instruction with more than two sources "
                    "appeared mid-stream; profile this trace with the "
                    "python backend"
                )
            self._table = table
            self._num_statics = len(statics)
        n = len(trace)
        if n == 0:
            return
        first_sources, second_sources, destinations, producer_kinds = \
            self._table
        static_index = _as_i64(trace.static_index)
        seqs = _as_i64(trace.seqs)
        dest = destinations[static_index]
        kinds = producer_kinds[static_index]
        source_slots = (
            first_sources[static_index],
            second_sources[static_index],
        )

        # Reads and writes fold into composite keys ``(register * (n + 1)
        # + position) * 2 (+ 1 for writes)`` — within a register the key
        # order is program order, reads at a position sort before that
        # position's write, and a larger register's keys dominate a
        # smaller's.  Group both sides by register (stable radix sorts keep
        # positions ascending), drop each write at its insertion point in
        # the read sequence, and a running maximum forward-fills "largest
        # visible write key" per read: that is automatically the latest
        # earlier write of the read's own register when one exists, and
        # decodes to a negative position ("no producer") otherwise.
        # ``searchsorted`` runs writes-into-reads — the cheap direction,
        # since reads outnumber writes.
        stride = np.int64(n + 1)
        write_at = np.flatnonzero(dest >= 0)
        write_order = np.argsort(dest[write_at].astype(np.int8),
                                 kind="stable")
        write_positions = write_at[write_order]
        write_keys = (dest[write_positions] * stride + write_positions) * 2 + 1

        none = np.int64(np.iinfo(np.int64).max)
        best_distance = np.full(n, none, dtype=np.int64)
        best_kind = np.full(n, -1, dtype=np.int64)
        # The paper's convention: shortest distance wins; on ties, the
        # first source operand — so scatter slot 0 first and let slot 1
        # only replace strictly closer producers.
        for slot, sources in enumerate(source_slots):
            reads_at = np.flatnonzero(sources >= 0)
            read_regs = sources[reads_at]
            read_order = np.argsort(read_regs.astype(np.int8), kind="stable")
            consumers = reads_at[read_order]
            read_regs = read_regs[read_order]
            if write_positions.size:
                read_keys = (read_regs * stride + consumers) * 2
                drop_at = np.searchsorted(read_keys, write_keys, side="left")
                visible = np.full(consumers.size + 1, -1, dtype=np.int64)
                # Ascending write keys: the last write dropped at a slot is
                # the largest, and the running maximum carries it forward.
                visible[drop_at] = write_keys
                producers = ((np.maximum.accumulate(visible[:-1]) >> 1)
                             - read_regs * stride)
                valid = producers >= 0
            else:
                producers = np.zeros(consumers.size, dtype=np.int64)
                valid = np.zeros(consumers.size, dtype=bool)
            # An in-chunk producer is always the register's latest writer;
            # only unresolved reads consult the carried writer table.
            carried = ~valid & self._has_writer[read_regs]
            resolved = valid | carried
            distance = np.empty(consumers.size, dtype=np.int64)
            kind = np.empty(consumers.size, dtype=np.int64)
            distance[valid] = seqs[consumers[valid]] - seqs[producers[valid]]
            kind[valid] = kinds[producers[valid]]
            distance[carried] = (seqs[consumers[carried]]
                                 - self._writer_seq[read_regs[carried]])
            kind[carried] = self._writer_kind[read_regs[carried]]
            consumers = consumers[resolved]
            distance = distance[resolved]
            kind = kind[resolved]
            if slot == 0:
                best_distance[consumers] = distance
                best_kind[consumers] = kind
            else:
                closer = distance < best_distance[consumers]
                best_distance[consumers[closer]] = distance[closer]
                best_kind[consumers[closer]] = kind[closer]

        recorded = (best_kind >= 0) & (best_distance <= self._max_distance)
        profile = self._profile
        profile.consumers += int(recorded.sum())
        for kind_id, kind_name in enumerate((KIND_UNIT, KIND_LONG, KIND_LOAD)):
            values = best_distance[recorded & (best_kind == kind_id)]
            if values.size == 0:
                continue
            counts = np.bincount(values)
            histogram = profile.histogram(kind_name)
            for distance_value in np.flatnonzero(counts):
                histogram[int(distance_value)] = (
                    histogram.get(int(distance_value), 0)
                    + int(counts[distance_value])
                )

        # Carry each register's latest in-chunk write out of this chunk.
        if write_positions.size:
            # ``write_positions`` is register-grouped with ascending
            # positions inside each group: the last entry per group is the
            # register's latest write.
            write_regs = dest[write_positions]
            last_in_group = np.empty(write_regs.size, dtype=bool)
            last_in_group[-1] = True
            last_in_group[:-1] = write_regs[1:] != write_regs[:-1]
            picks = write_positions[last_in_group]
            picked_regs = write_regs[last_in_group]
            self._writer_seq[picked_regs] = seqs[picks]
            self._writer_kind[picked_regs] = kinds[picks]
            self._has_writer[picked_regs] = True

    def finish(self) -> DependencyProfile:
        return self._profile
