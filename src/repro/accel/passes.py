"""Cached profiling passes shared by every kernel backend.

These are the payloads the single-pass engine memoizes (and persists
through the artifact cache): one :class:`BasePass` per L1/TLB front-end
geometry and one :class:`L2Pass` per (sets, line size) L2 geometry.  Both
kernel backends produce bit-identical instances, so a pass computed by the
NumPy kernels answers exactly like one computed by the pure-Python
kernels — including after a pickle round trip through the cache.

Miss-count queries are O(1): the per-distance histograms are folded once
into cumulative (suffix-sum) arrays where entry ``a`` holds the number of
accesses with stack distance ``>= a``, so ``misses(associativity)`` is a
single lookup instead of a histogram scan.  Miss-run counts are memoized
per ``(associativity, mlp_window)`` pair.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.memory.single_pass import SinglePassResult, suffix_counts


def count_miss_runs(seqs, distances, associativity: int, mlp_window: int) -> int:
    """Number of miss runs in a (sequence, stack distance) miss stream.

    A run starts at a miss whose distance from the previous miss exceeds
    ``mlp_window`` dynamic instructions; ``distance < 0`` is a cold miss.
    """
    runs = 0
    last_seq = None
    for seq, distance in zip(seqs, distances):
        if distance < 0 or distance >= associativity:
            if last_seq is None or seq - last_seq > mlp_window:
                runs += 1
            last_seq = seq
    return runs


@dataclass(frozen=True)
class BasePass:
    """One walk of the trace for a fixed L1/TLB front-end geometry."""

    l1i: SinglePassResult
    l1d: SinglePassResult
    itlb: SinglePassResult
    dtlb: SinglePassResult
    #: The unified L2's access stream (byte addresses, trace order).
    l2_addrs: array
    #: 0 = instruction fetch, 1 = load/store, per ``l2_addrs`` entry.
    l2_sides: array
    #: Dynamic sequence number of the instruction that caused each access.
    l2_seqs: array


@dataclass(frozen=True)
class L2Pass:
    """Stack distances of the shared L2 stream for one (sets, line) geometry."""

    instruction_cold: int
    data_cold: int
    instruction_histogram: dict[int, int]
    data_histogram: dict[int, int]
    #: Data-side accesses only: (sequence, stack distance) with -1 = cold.
    data_seqs: array
    data_distances: array
    #: Memoized miss-run counts per (associativity, mlp_window).
    _runs: dict = field(default_factory=dict, compare=False, repr=False)

    def _suffix(self, attr: str, histogram: dict[int, int]) -> array:
        # Lazily built so instances unpickled from older cache entries (or
        # constructed directly in tests) stay valid; the arrays are pure
        # functions of the frozen histograms, so they can never go stale.
        cached = self.__dict__.get(attr)
        if cached is None:
            cached = suffix_counts(histogram)
            object.__setattr__(self, attr, cached)
        return cached

    def instruction_misses(self, associativity: int) -> int:
        suffix = self._suffix("_instruction_suffix", self.instruction_histogram)
        conflict = suffix[associativity] if associativity < len(suffix) else 0
        return self.instruction_cold + conflict

    def data_misses(self, associativity: int) -> int:
        suffix = self._suffix("_data_suffix", self.data_histogram)
        conflict = suffix[associativity] if associativity < len(suffix) else 0
        return self.data_cold + conflict

    def data_miss_runs(self, associativity: int, mlp_window: int,
                       counter=count_miss_runs) -> int:
        """Number of DL2 "miss runs" (see :class:`MissProfile`), memoized."""
        key = (associativity, mlp_window)
        cached = self._runs.get(key)
        if cached is None:
            cached = counter(self.data_seqs, self.data_distances,
                             associativity, mlp_window)
            self._runs[key] = cached
        return cached
