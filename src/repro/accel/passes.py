"""Cached profiling passes shared by every kernel backend.

These are the payloads the single-pass engine memoizes (and persists
through the artifact cache): one :class:`BasePass` per L1/TLB front-end
geometry and one :class:`L2Pass` per (sets, line size) L2 geometry.  Both
kernel backends produce bit-identical instances, so a pass computed by the
NumPy kernels answers exactly like one computed by the pure-Python
kernels — including after a pickle round trip through the cache.

Miss-count queries are O(1): the per-distance histograms are folded once
into cumulative (suffix-sum) arrays where entry ``a`` holds the number of
accesses with stack distance ``>= a``, so ``misses(associativity)`` is a
single lookup instead of a histogram scan.  Miss-run counts are memoized
per ``(associativity, mlp_window)`` pair.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.memory.single_pass import SinglePassResult, suffix_counts


def count_miss_runs(seqs, distances, associativity: int, mlp_window: int) -> int:
    """Number of miss runs in a (sequence, stack distance) miss stream.

    A run starts at a miss whose distance from the previous miss exceeds
    ``mlp_window`` dynamic instructions; ``distance < 0`` is a cold miss.
    """
    runs, _ = resume_miss_runs(seqs, distances, associativity, mlp_window, None)
    return runs


def resume_miss_runs(seqs, distances, associativity: int, mlp_window: int,
                     last_seq: int | None) -> tuple[int, int | None]:
    """One chunk of miss-run counting: ``(new runs, last miss sequence)``.

    The carried ``last_seq`` is the sequence number of the last miss seen in
    earlier chunks (``None`` before the first miss), so feeding a stream
    chunk by chunk counts exactly the runs :func:`count_miss_runs` counts
    over the concatenation.
    """
    runs = 0
    for seq, distance in zip(seqs, distances):
        if distance < 0 or distance >= associativity:
            if last_seq is None or seq - last_seq > mlp_window:
                runs += 1
            last_seq = seq
    return runs, last_seq


@dataclass(frozen=True)
class BasePass:
    """One walk of the trace for a fixed L1/TLB front-end geometry."""

    l1i: SinglePassResult
    l1d: SinglePassResult
    itlb: SinglePassResult
    dtlb: SinglePassResult
    #: The unified L2's access stream (byte addresses, trace order).
    l2_addrs: array
    #: 0 = instruction fetch, 1 = load/store, per ``l2_addrs`` entry.
    l2_sides: array
    #: Dynamic sequence number of the instruction that caused each access.
    l2_seqs: array


@dataclass(frozen=True)
class L2Pass:
    """Stack distances of the shared L2 stream for one (sets, line) geometry."""

    instruction_cold: int
    data_cold: int
    instruction_histogram: dict[int, int]
    data_histogram: dict[int, int]
    #: Data-side accesses only: (sequence, stack distance) with -1 = cold.
    data_seqs: array
    data_distances: array
    #: Memoized miss-run counts per (associativity, mlp_window).
    _runs: dict = field(default_factory=dict, compare=False, repr=False)

    def _suffix(self, attr: str, histogram: dict[int, int]) -> array:
        # Lazily built so instances unpickled from older cache entries (or
        # constructed directly in tests) stay valid; the arrays are pure
        # functions of the frozen histograms, so they can never go stale.
        cached = self.__dict__.get(attr)
        if cached is None:
            cached = suffix_counts(histogram)
            object.__setattr__(self, attr, cached)
        return cached

    def instruction_misses(self, associativity: int) -> int:
        suffix = self._suffix("_instruction_suffix", self.instruction_histogram)
        conflict = suffix[associativity] if associativity < len(suffix) else 0
        return self.instruction_cold + conflict

    def data_misses(self, associativity: int) -> int:
        suffix = self._suffix("_data_suffix", self.data_histogram)
        conflict = suffix[associativity] if associativity < len(suffix) else 0
        return self.data_cold + conflict

    def data_miss_runs(self, associativity: int, mlp_window: int,
                       counter=count_miss_runs) -> int:
        """Number of DL2 "miss runs" (see :class:`MissProfile`), memoized."""
        key = (associativity, mlp_window)
        cached = self._runs.get(key)
        if cached is None:
            cached = counter(self.data_seqs, self.data_distances,
                             associativity, mlp_window)
            self._runs[key] = cached
        return cached


@dataclass(frozen=True)
class StreamedL2Pass(L2Pass):
    """An :class:`L2Pass` assembled chunk by chunk from a trace stream.

    The per-access ``(seq, distance)`` miss stream is never materialized —
    that is the whole point of streaming — so run counts exist only for the
    ``(associativity, mlp_window)`` pairs that were registered before the
    walk and accumulated incrementally into ``_runs``.  Asking for any other
    pair is a programming error (the silent alternative would be a wrong
    count computed from the empty arrays), so it raises instead.
    """

    def data_miss_runs(self, associativity: int, mlp_window: int,
                       counter=count_miss_runs) -> int:
        key = (associativity, mlp_window)
        try:
            return self._runs[key]
        except KeyError:
            raise KeyError(
                f"streamed L2 pass has no miss-run count for associativity="
                f"{associativity}, mlp_window={mlp_window}; re-stream the "
                f"trace with this pair in run_keys"
            ) from None
