"""Kernel protocol and the pure-Python reference implementation.

A :class:`Kernels` instance computes the profiling passes of the single-pass
engine over a trace's packed columns:

* the **base pass** — per L1/TLB front-end geometry: stack-distance
  histograms for the L1I, the L1D and both TLBs, plus the interleaved
  L1-miss stream the unified L2 observes;
* the **L2 pass** — stack distances of that stream for one (sets, line
  size) geometry, split into instruction- and data-side histograms;
* **miss-run counting** — grouping DL2 misses into MLP runs;
* **branch replay** — branch statistics of the packed control stream for
  one predictor specification;
* **dependency profiling** — the machine-independent dependency-distance
  histograms of the program profile.

:class:`PythonKernels` is the stdlib-only reference: it is the exact code
the engine ran before the kernel layer existed, so its results define the
contract.  The NumPy backend (:mod:`repro.accel.np_kernels`) must be
bit-identical to it; the parity suite in ``tests/test_accel.py`` asserts
that across the full workload set and randomized traces.

A kernel hook may return ``None`` (``branch_profile``,
``dependency_profile``) to tell the caller "no accelerated path for this
input" — the caller then falls back to the interpreted loop, which keeps
third-party branch predictors and exotic traces fully supported.
"""

from __future__ import annotations

import abc
from array import array
from typing import NamedTuple

from repro.accel.passes import BasePass, L2Pass, count_miss_runs
from repro.branch.profiler import BranchProfile
from repro.isa.opcodes import OpClass
from repro.memory.single_pass import StackDistanceProfiler
from repro.trace.trace import OP_CLASS_IDS, Trace

_LOAD_ID = OP_CLASS_IDS[OpClass.LOAD]
_STORE_ID = OP_CLASS_IDS[OpClass.STORE]
_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]

#: Instruction-side / data-side tags in the recorded L2 access stream.
INSTRUCTION_SIDE = 0
DATA_SIDE = 1


class BaseGeometry(NamedTuple):
    """Front-end geometry one base pass is computed for."""

    l1i_size: int
    l1i_associativity: int
    l1d_size: int
    l1d_associativity: int
    line_size: int
    page_size: int


class ControlStream(NamedTuple):
    """Packed control-transfer columns extracted once per trace."""

    pcs: array
    taken: array
    conditional: array

    def __len__(self) -> int:
        return len(self.pcs)


class Kernels(abc.ABC):
    """Profiling kernels over packed trace columns (one backend instance)."""

    name: str = "kernels"

    @abc.abstractmethod
    def base_pass(self, trace: Trace, geometry: BaseGeometry) -> BasePass:
        """One walk of ``trace`` for a fixed L1/TLB front-end geometry."""

    @abc.abstractmethod
    def l2_pass(self, base: BasePass, sets: int, line_size: int) -> L2Pass:
        """Stack distances of ``base``'s L2 stream for one (sets, line)."""

    @abc.abstractmethod
    def control_stream(self, trace: Trace) -> ControlStream:
        """The packed (pc, taken, is conditional) control columns."""

    def branch_profile(self, controls: ControlStream,
                       predictor_spec: str) -> BranchProfile | None:
        """Branch statistics for one predictor, or ``None`` to fall back."""
        return None

    def count_runs(self, seqs, distances, associativity: int,
                   mlp_window: int) -> int:
        """Number of miss runs in a miss stream (see :class:`MissProfile`)."""
        return count_miss_runs(seqs, distances, associativity, mlp_window)

    def dependency_profile(self, trace: Trace, max_distance: int):
        """Dependency-distance histograms, or ``None`` to fall back."""
        return None

    def instruction_mix(self, trace: Trace):
        """Dynamic op-class histogram, or ``None`` to fall back."""
        return None

    def predict_batch(self, program, profiles, machines):
        """Batched mechanistic-model evaluation, or ``None`` to fall back.

        Given one program profile and parallel lists of miss profiles and
        machine configurations, returns ``[(cycles, cpi_stack), ...]``
        bit-identical to scalar
        :meth:`~repro.core.model.InOrderMechanisticModel.predict` calls —
        or ``None`` when the backend has no vectorized model path.
        """
        return None


class PythonKernels(Kernels):
    """The stdlib-only reference implementation (defines the contract)."""

    name = "python"

    def base_pass(self, trace: Trace, geometry: BaseGeometry) -> BasePass:
        line = geometry.line_size
        l1i = StackDistanceProfiler(
            geometry.l1i_size // (geometry.l1i_associativity * line), line
        )
        l1d = StackDistanceProfiler(
            geometry.l1d_size // (geometry.l1d_associativity * line), line
        )
        itlb = StackDistanceProfiler(1, geometry.page_size)
        dtlb = StackDistanceProfiler(1, geometry.page_size)
        i_access = l1i.access
        d_access = l1d.access
        itlb_access = itlb.access
        dtlb_access = dtlb.access
        i_ways = geometry.l1i_associativity
        d_ways = geometry.l1d_associativity

        l2_addrs = array("q")
        l2_sides = array("b")
        l2_seqs = array("q")
        addr_append = l2_addrs.append
        side_append = l2_sides.append
        seq_append = l2_seqs.append

        pcs = trace.pcs
        mem_addrs = trace.mem_addrs
        op_classes = trace.op_classes
        seqs = trace.seqs
        for index, class_id in enumerate(op_classes):
            pc = pcs[index]
            itlb_access(pc)
            distance = i_access(pc)
            if distance < 0 or distance >= i_ways:
                addr_append(pc)
                side_append(INSTRUCTION_SIDE)
                seq_append(seqs[index])
            if class_id == _LOAD_ID or class_id == _STORE_ID:
                # Memory rows always hold the address the memory system sees
                # (a raw -1 is a genuine address, not a sentinel).
                addr = mem_addrs[index]
                dtlb_access(addr)
                distance = d_access(addr)
                if distance < 0 or distance >= d_ways:
                    addr_append(addr)
                    side_append(DATA_SIDE)
                    seq_append(seqs[index])

        return BasePass(
            l1i=l1i.result(),
            l1d=l1d.result(),
            itlb=itlb.result(),
            dtlb=dtlb.result(),
            l2_addrs=l2_addrs,
            l2_sides=l2_sides,
            l2_seqs=l2_seqs,
        )

    def l2_pass(self, base: BasePass, sets: int, line_size: int) -> L2Pass:
        profiler = StackDistanceProfiler(sets, line_size)
        access = profiler.access
        instruction_cold = data_cold = 0
        instruction_histogram: dict[int, int] = {}
        data_histogram: dict[int, int] = {}
        data_seqs = array("q")
        data_distances = array("q")
        for addr, side, seq in zip(base.l2_addrs, base.l2_sides, base.l2_seqs):
            distance = access(addr)
            if side == INSTRUCTION_SIDE:
                if distance < 0:
                    instruction_cold += 1
                else:
                    instruction_histogram[distance] = (
                        instruction_histogram.get(distance, 0) + 1
                    )
            else:
                if distance < 0:
                    data_cold += 1
                else:
                    data_histogram[distance] = data_histogram.get(distance, 0) + 1
                data_seqs.append(seq)
                data_distances.append(distance)

        return L2Pass(
            instruction_cold=instruction_cold,
            data_cold=data_cold,
            instruction_histogram=instruction_histogram,
            data_histogram=data_histogram,
            data_seqs=data_seqs,
            data_distances=data_distances,
        )

    def control_stream(self, trace: Trace) -> ControlStream:
        pcs = trace.pcs
        takens = trace.taken
        control_pcs = array("q")
        control_taken = array("b")
        control_conditional = array("b")
        for index, class_id in enumerate(trace.op_classes):
            if class_id == _BRANCH_ID or class_id == _JUMP_ID:
                control_pcs.append(pcs[index])
                control_taken.append(1 if takens[index] == 1 else 0)
                control_conditional.append(1 if class_id == _BRANCH_ID else 0)
        return ControlStream(control_pcs, control_taken, control_conditional)
