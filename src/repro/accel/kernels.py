"""Kernel protocol and the pure-Python reference implementation.

A :class:`Kernels` instance computes the profiling passes of the single-pass
engine over a trace's packed columns:

* the **base pass** — per L1/TLB front-end geometry: stack-distance
  histograms for the L1I, the L1D and both TLBs, plus the interleaved
  L1-miss stream the unified L2 observes;
* the **L2 pass** — stack distances of that stream for one (sets, line
  size) geometry, split into instruction- and data-side histograms;
* **miss-run counting** — grouping DL2 misses into MLP runs;
* **branch replay** — branch statistics of the packed control stream for
  one predictor specification;
* **dependency profiling** — the machine-independent dependency-distance
  histograms of the program profile.

:class:`PythonKernels` is the stdlib-only reference: it is the exact code
the engine ran before the kernel layer existed, so its results define the
contract.  The NumPy backend (:mod:`repro.accel.np_kernels`) must be
bit-identical to it; the parity suite in ``tests/test_accel.py`` asserts
that across the full workload set and randomized traces.

A kernel hook may return ``None`` (``branch_profile``,
``dependency_profile``) to tell the caller "no accelerated path for this
input" — the caller then falls back to the interpreted loop, which keeps
third-party branch predictors and exotic traces fully supported.
"""

from __future__ import annotations

import abc
import dataclasses
from array import array
from typing import NamedTuple

from repro.accel.passes import (
    BasePass,
    L2Pass,
    StreamedL2Pass,
    count_miss_runs,
    resume_miss_runs,
)
from repro.branch.profiler import BranchProfile, profile_control_stream
from repro.isa.opcodes import OpClass
from repro.memory.single_pass import StackDistanceProfiler
from repro.trace.trace import OP_CLASS_IDS, Trace

_LOAD_ID = OP_CLASS_IDS[OpClass.LOAD]
_STORE_ID = OP_CLASS_IDS[OpClass.STORE]
_BRANCH_ID = OP_CLASS_IDS[OpClass.BRANCH]
_JUMP_ID = OP_CLASS_IDS[OpClass.JUMP]

#: Instruction-side / data-side tags in the recorded L2 access stream.
INSTRUCTION_SIDE = 0
DATA_SIDE = 1


class BaseGeometry(NamedTuple):
    """Front-end geometry one base pass is computed for."""

    l1i_size: int
    l1i_associativity: int
    l1d_size: int
    l1d_associativity: int
    line_size: int
    page_size: int


class ControlStream(NamedTuple):
    """Packed control-transfer columns extracted once per trace."""

    pcs: array
    taken: array
    conditional: array

    def __len__(self) -> int:
        return len(self.pcs)


class Kernels(abc.ABC):
    """Profiling kernels over packed trace columns (one backend instance)."""

    name: str = "kernels"

    @abc.abstractmethod
    def base_pass(self, trace: Trace, geometry: BaseGeometry) -> BasePass:
        """One walk of ``trace`` for a fixed L1/TLB front-end geometry."""

    @abc.abstractmethod
    def l2_pass(self, base: BasePass, sets: int, line_size: int) -> L2Pass:
        """Stack distances of ``base``'s L2 stream for one (sets, line)."""

    @abc.abstractmethod
    def control_stream(self, trace: Trace) -> ControlStream:
        """The packed (pc, taken, is conditional) control columns."""

    def branch_profile(self, controls: ControlStream,
                       predictor_spec: str) -> BranchProfile | None:
        """Branch statistics for one predictor, or ``None`` to fall back."""
        return None

    def count_runs(self, seqs, distances, associativity: int,
                   mlp_window: int) -> int:
        """Number of miss runs in a miss stream (see :class:`MissProfile`)."""
        return count_miss_runs(seqs, distances, associativity, mlp_window)

    def dependency_profile(self, trace: Trace, max_distance: int):
        """Dependency-distance histograms, or ``None`` to fall back."""
        return None

    def instruction_mix(self, trace: Trace):
        """Dynamic op-class histogram, or ``None`` to fall back."""
        return None

    def predict_batch(self, program, profiles, machines):
        """Batched mechanistic-model evaluation, or ``None`` to fall back.

        Given one program profile and parallel lists of miss profiles and
        machine configurations, returns ``[(cycles, cpi_stack), ...]``
        bit-identical to scalar
        :meth:`~repro.core.model.InOrderMechanisticModel.predict` calls —
        or ``None`` when the backend has no vectorized model path.
        """
        return None

    # ------------------------------------------------------------------
    # Chunk-resumable streaming.  Each ``*_stream`` factory returns a
    # stateful object with ``update(chunk...)`` / ``finish()`` methods whose
    # accumulated result is bit-identical to the corresponding offline pass
    # over the concatenation of the chunks: all carried state (LRU stacks,
    # predictor tables and histories, miss-run cursors, register writers)
    # survives chunk boundaries exactly.  The defaults below are the
    # stdlib reference implementations, so any backend streams correctly;
    # backends override them with resumable accelerated passes.
    # ------------------------------------------------------------------

    def base_stream(self, geometry: BaseGeometry):
        """Resumable base pass: ``update(chunk) -> (addrs, sides, seqs)``.

        Each update returns the chunk's slice of the interleaved L2 access
        stream (to be fed to an L2 stream); ``finish()`` returns a
        :class:`BasePass` whose L2 stream columns are empty.
        """
        return _PyBaseStream(geometry)

    def l2_stream(self, sets: int, line_size: int, run_keys=()):
        """Resumable L2 pass over base-stream slices.

        ``run_keys`` is the set of ``(associativity, mlp_window)`` pairs
        whose miss-run counts are accumulated incrementally; ``finish()``
        returns a :class:`StreamedL2Pass` that answers exactly those.
        """
        return _PyL2Stream(sets, line_size, run_keys)

    def branch_stream(self, predictor_spec: str):
        """Resumable branch replay for one predictor, or ``None``.

        ``None`` tells the caller to fall back to
        :class:`PredictorBranchStream` around an interpreted predictor
        object, which supports any registered predictor.
        """
        return None

    def dependency_stream(self, statics, max_distance: int):
        """Resumable dependency-distance profiling (never ``None``).

        ``statics`` is the trace's static-instruction table, available up
        front so a backend can pick its fast path once per stream.
        """
        return _PyDependencyStream(max_distance)

    def mix_stream(self):
        """Resumable instruction-mix histogram (never ``None``)."""
        return MixStream(self)


class PythonKernels(Kernels):
    """The stdlib-only reference implementation (defines the contract)."""

    name = "python"

    def base_pass(self, trace: Trace, geometry: BaseGeometry) -> BasePass:
        # The offline pass is the one-chunk case of the resumable stream,
        # which keeps the two code paths structurally identical.
        stream = _PyBaseStream(geometry)
        l2_addrs, l2_sides, l2_seqs = stream.update(trace)
        return dataclasses.replace(
            stream.finish(),
            l2_addrs=l2_addrs,
            l2_sides=l2_sides,
            l2_seqs=l2_seqs,
        )

    def l2_pass(self, base: BasePass, sets: int, line_size: int) -> L2Pass:
        profiler = StackDistanceProfiler(sets, line_size)
        access = profiler.access
        instruction_cold = data_cold = 0
        instruction_histogram: dict[int, int] = {}
        data_histogram: dict[int, int] = {}
        data_seqs = array("q")
        data_distances = array("q")
        for addr, side, seq in zip(base.l2_addrs, base.l2_sides, base.l2_seqs):
            distance = access(addr)
            if side == INSTRUCTION_SIDE:
                if distance < 0:
                    instruction_cold += 1
                else:
                    instruction_histogram[distance] = (
                        instruction_histogram.get(distance, 0) + 1
                    )
            else:
                if distance < 0:
                    data_cold += 1
                else:
                    data_histogram[distance] = data_histogram.get(distance, 0) + 1
                data_seqs.append(seq)
                data_distances.append(distance)

        return L2Pass(
            instruction_cold=instruction_cold,
            data_cold=data_cold,
            instruction_histogram=instruction_histogram,
            data_histogram=data_histogram,
            data_seqs=data_seqs,
            data_distances=data_distances,
        )

    def control_stream(self, trace: Trace) -> ControlStream:
        pcs = trace.pcs
        takens = trace.taken
        control_pcs = array("q")
        control_taken = array("b")
        control_conditional = array("b")
        for index, class_id in enumerate(trace.op_classes):
            if class_id == _BRANCH_ID or class_id == _JUMP_ID:
                control_pcs.append(pcs[index])
                control_taken.append(1 if takens[index] == 1 else 0)
                control_conditional.append(1 if class_id == _BRANCH_ID else 0)
        return ControlStream(control_pcs, control_taken, control_conditional)


class _PyBaseStream:
    """Chunk-resumable reference base pass.

    The four stack-distance profilers are ordinary stateful
    :class:`StackDistanceProfiler` objects, so feeding chunks in trace
    order is *literally* the same computation as one offline walk.
    """

    def __init__(self, geometry: BaseGeometry):
        line = geometry.line_size
        self._l1i = StackDistanceProfiler(
            geometry.l1i_size // (geometry.l1i_associativity * line), line
        )
        self._l1d = StackDistanceProfiler(
            geometry.l1d_size // (geometry.l1d_associativity * line), line
        )
        self._itlb = StackDistanceProfiler(1, geometry.page_size)
        self._dtlb = StackDistanceProfiler(1, geometry.page_size)
        self._i_ways = geometry.l1i_associativity
        self._d_ways = geometry.l1d_associativity

    def update(self, trace: Trace) -> tuple[array, array, array]:
        i_access = self._l1i.access
        d_access = self._l1d.access
        itlb_access = self._itlb.access
        dtlb_access = self._dtlb.access
        i_ways = self._i_ways
        d_ways = self._d_ways

        l2_addrs = array("q")
        l2_sides = array("b")
        l2_seqs = array("q")
        addr_append = l2_addrs.append
        side_append = l2_sides.append
        seq_append = l2_seqs.append

        pcs = trace.pcs
        mem_addrs = trace.mem_addrs
        seqs = trace.seqs
        for index, class_id in enumerate(trace.op_classes):
            pc = pcs[index]
            itlb_access(pc)
            distance = i_access(pc)
            if distance < 0 or distance >= i_ways:
                addr_append(pc)
                side_append(INSTRUCTION_SIDE)
                seq_append(seqs[index])
            if class_id == _LOAD_ID or class_id == _STORE_ID:
                # Memory rows always hold the address the memory system sees
                # (a raw -1 is a genuine address, not a sentinel).
                addr = mem_addrs[index]
                dtlb_access(addr)
                distance = d_access(addr)
                if distance < 0 or distance >= d_ways:
                    addr_append(addr)
                    side_append(DATA_SIDE)
                    seq_append(seqs[index])
        return l2_addrs, l2_sides, l2_seqs

    def finish(self) -> BasePass:
        return BasePass(
            l1i=self._l1i.result(),
            l1d=self._l1d.result(),
            itlb=self._itlb.result(),
            dtlb=self._dtlb.result(),
            l2_addrs=array("q"),
            l2_sides=array("b"),
            l2_seqs=array("q"),
        )


class _PyL2Stream:
    """Chunk-resumable reference L2 pass over base-stream slices."""

    def __init__(self, sets: int, line_size: int, run_keys=()):
        self._profiler = StackDistanceProfiler(sets, line_size)
        self._instruction_cold = 0
        self._data_cold = 0
        self._instruction_histogram: dict[int, int] = {}
        self._data_histogram: dict[int, int] = {}
        self._runs = {(int(a), int(w)): 0 for a, w in run_keys}
        self._last_seq: dict[tuple[int, int], int | None] = {
            key: None for key in self._runs
        }

    def update(self, addrs, sides, seqs) -> None:
        access = self._profiler.access
        instruction_histogram = self._instruction_histogram
        data_histogram = self._data_histogram
        chunk_seqs = array("q")
        chunk_distances = array("q")
        for addr, side, seq in zip(addrs, sides, seqs):
            distance = access(addr)
            if side == INSTRUCTION_SIDE:
                if distance < 0:
                    self._instruction_cold += 1
                else:
                    instruction_histogram[distance] = (
                        instruction_histogram.get(distance, 0) + 1
                    )
            else:
                if distance < 0:
                    self._data_cold += 1
                else:
                    data_histogram[distance] = data_histogram.get(distance, 0) + 1
                chunk_seqs.append(seq)
                chunk_distances.append(distance)
        for (associativity, window), last in self._last_seq.items():
            runs, last = resume_miss_runs(
                chunk_seqs, chunk_distances, associativity, window, last
            )
            self._runs[(associativity, window)] += runs
            self._last_seq[(associativity, window)] = last

    def finish(self) -> StreamedL2Pass:
        return StreamedL2Pass(
            instruction_cold=self._instruction_cold,
            data_cold=self._data_cold,
            instruction_histogram=self._instruction_histogram,
            data_histogram=self._data_histogram,
            data_seqs=array("q"),
            data_distances=array("q"),
            _runs=dict(self._runs),
        )


class PredictorBranchStream:
    """Chunk-resumable branch replay through one persistent predictor object.

    The universal fallback stream: it works for any registered predictor
    because the predictor's own tables *are* the carried state.
    """

    def __init__(self, predictor):
        self._predictor = predictor
        self._profile = BranchProfile(predictor_name=predictor.name)

    def update(self, controls: ControlStream) -> None:
        stream = (
            (pc, taken == 1, conditional == 1)
            for pc, taken, conditional in zip(
                controls.pcs, controls.taken, controls.conditional
            )
        )
        profile_control_stream(stream, self._predictor, self._profile)

    def finish(self) -> BranchProfile:
        return self._profile


class _PyDependencyStream:
    """Chunk-resumable reference dependency profiling.

    Carried state is the ``last_writer`` table of the offline walk —
    sequence numbers are global, so producer distances across chunk
    boundaries come out exactly as in the offline pass.
    """

    def __init__(self, max_distance: int):
        from repro.isa.registers import NUM_INT_REGS
        from repro.profiler.dependences import DependencyProfile

        self._max_distance = max_distance
        self._profile = DependencyProfile()
        self._last_writer: list[tuple[int, str] | None] = [None] * NUM_INT_REGS
        self._operands: list = []

    def update(self, trace: Trace) -> None:
        from repro.profiler.dependences import _producer_kind

        statics = trace.statics
        if len(statics) != len(self._operands):
            # The static table of one trace is append-only across chunks.
            self._operands = [
                (
                    instruction.src_regs(),
                    instruction.dest_regs(),
                    _producer_kind(instruction.op_class),
                )
                for instruction in statics
            ]
        operands = self._operands
        last_writer = self._last_writer
        profile = self._profile
        max_distance = self._max_distance
        seqs = trace.seqs
        for index, static_slot in enumerate(trace.static_index):
            sources, destinations, kind = operands[static_slot]
            seq = seqs[index]
            if sources:
                best: tuple[int, str] | None = None
                for source in sources:
                    producer = last_writer[source]
                    if producer is None:
                        continue
                    distance = seq - producer[0]
                    if best is None or distance < best[0]:
                        best = (distance, producer[1])
                if best is not None and best[0] <= max_distance:
                    profile.consumers += 1
                    profile._record(best[1], best[0])
            for dest in destinations:
                last_writer[dest] = (seq, kind)

    def finish(self):
        return self._profile


class MixStream:
    """Chunk-resumable instruction mix (shared by every backend).

    Per-chunk histograms come from the owning backend's offline
    ``instruction_mix`` kernel (or the trace's columnar histogram when the
    backend has none); merging them in chunk order preserves the global
    first-encounter key order of the offline histogram.
    """

    def __init__(self, kernels: Kernels):
        self._kernels = kernels
        self._total = 0
        self._counts: dict = {}

    def update(self, trace: Trace) -> None:
        mix = self._kernels.instruction_mix(trace)
        if mix is None:
            counts = trace.instruction_mix()
            self._total += len(trace)
        else:
            counts = mix.counts
            self._total += mix.total
        merged = self._counts
        for op_class, count in counts.items():
            merged[op_class] = merged.get(op_class, 0) + count

    def finish(self):
        from repro.profiler.instruction_mix import InstructionMix

        return InstructionMix(total=self._total, counts=self._counts)
