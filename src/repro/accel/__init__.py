"""``repro.accel`` — selectable profiling-kernel backends.

Two interchangeable implementations of the :class:`~repro.accel.kernels.Kernels`
protocol exist:

* ``python`` — the stdlib-only reference (always available);
* ``numpy``  — vectorized kernels over the packed trace columns, typically
  an order of magnitude faster on the profiling hot loops.

Both are guaranteed **bit-identical**: every pass, histogram, branch count
and dependency profile a backend produces equals the reference exactly, so
switching backends never changes a result — only how fast it arrives.

Selection (first match wins):

1. an explicit :func:`set_backend` call (the CLI's ``--accel`` flag);
2. the ``REPRO_ACCEL`` environment variable (``numpy`` | ``python`` |
   ``auto``); naming ``numpy`` explicitly raises if NumPy is missing;
3. ``auto`` — NumPy when importable, silent stdlib fallback otherwise.
"""

from __future__ import annotations

import os

from repro.accel.kernels import (
    BaseGeometry,
    ControlStream,
    Kernels,
    PythonKernels,
)
from repro.accel.passes import BasePass, L2Pass, count_miss_runs

__all__ = [
    "BaseGeometry",
    "BasePass",
    "ControlStream",
    "Kernels",
    "L2Pass",
    "PythonKernels",
    "active_backend",
    "available_backends",
    "count_miss_runs",
    "get_kernels",
    "set_backend",
]

#: Environment variable naming the kernel backend (``auto`` if unset).
ACCEL_ENV = "REPRO_ACCEL"

BACKEND_CHOICES = ("auto", "numpy", "python")

_ACTIVE: Kernels | None = None


def _numpy_kernels() -> Kernels:
    import numpy

    if not hasattr(numpy, "bitwise_count"):
        # The kernels need NumPy >= 2.0; a 1.x install must fall back to
        # the stdlib backend instead of crashing mid-profiling.
        raise ImportError(
            f"repro.accel needs numpy>=2.0 (np.bitwise_count); "
            f"found {numpy.__version__}"
        )
    from repro.accel.np_kernels import NumpyKernels

    return NumpyKernels()


def _resolve(choice: str) -> Kernels:
    choice = choice.strip().lower() or "auto"
    if choice not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown accel backend {choice!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    if choice == "python":
        return PythonKernels()
    if choice == "numpy":
        try:
            return _numpy_kernels()
        except ImportError as exc:
            raise ValueError(
                f"accel backend 'numpy' requested but unusable: {exc} "
                "(pip install 'repro-ispass2012-inorder-model[accel]')"
            ) from exc
    # auto: NumPy when present, silent stdlib fallback otherwise.
    try:
        return _numpy_kernels()
    except ImportError:
        return PythonKernels()


def set_backend(choice: str) -> Kernels:
    """Select the kernel backend (``auto`` | ``numpy`` | ``python``).

    Returns the activated :class:`Kernels` instance.  Engines capture the
    active backend when they are created, so switch before profiling work
    starts (the CLI applies ``--accel`` before anything else runs).
    """
    global _ACTIVE
    _ACTIVE = _resolve(choice)
    return _ACTIVE


def get_kernels() -> Kernels:
    """The active kernel backend (resolved from ``REPRO_ACCEL`` on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(os.environ.get(ACCEL_ENV, "auto"))
    return _ACTIVE


def active_backend() -> str:
    """Name of the active backend (``"numpy"`` or ``"python"``)."""
    return get_kernels().name


def available_backends() -> dict[str, bool]:
    """Availability of every known backend on this interpreter.

    ``numpy`` is available only when the installed NumPy is new enough
    for the kernels — the same check :func:`set_backend` applies.
    """
    try:
        import numpy

        has_numpy = hasattr(numpy, "bitwise_count")
    except ImportError:
        has_numpy = False
    return {"python": True, "numpy": has_numpy}
